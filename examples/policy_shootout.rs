//! Run the whole §IV policy family on one benchmark and print the Fig 6
//! trade-off as a table: runtime, dynamic atomics (wait efficiency),
//! resumes, and context switches.
//!
//! ```sh
//! cargo run --release --example policy_shootout [benchmark]
//! ```
//!
//! `benchmark` is a Table 2 abbreviation (default `SPM_G`).

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_workloads::BenchmarkKind;

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "SPM_G".into());
    let kind = BenchmarkKind::all()
        .into_iter()
        .find(|k| k.abbreviation() == want)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark '{want}'; use a Table 2 abbreviation like SPM_G");
            std::process::exit(2);
        });
    let scale = Scale::paper();

    println!("{} — {}\n", kind.abbreviation(), kind.description());
    println!(
        "{:<11} {:>12} {:>10} {:>9} {:>9} {:>10} {:>8}",
        "policy", "cycles", "atomics", "resumes", "unnecess.", "swaps out", "valid"
    );
    for policy in [
        PolicyKind::Baseline,
        PolicyKind::Sleep,
        PolicyKind::Timeout,
        PolicyKind::MonRsAll,
        PolicyKind::MonRAll,
        PolicyKind::MonNrAll,
        PolicyKind::MonNrOne,
        PolicyKind::Awg,
        PolicyKind::MinResume,
    ] {
        let r = run_experiment(kind, policy, &scale, ExperimentConfig::NonOversubscribed);
        let s = r.outcome.summary();
        println!(
            "{:<11} {:>12} {:>10} {:>9} {:>9} {:>10} {:>8}",
            policy.label(),
            r.cycles()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "DEADLOCK".into()),
            s.atomics,
            s.resumes,
            s.unnecessary_resumes,
            s.switches_out,
            if r.is_valid_completion() { "ok" } else { "-" },
        );
    }
    println!("\nMinResume is the Fig 9 oracle; its atomic count is the normalization floor.");
}
