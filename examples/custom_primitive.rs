//! Build your own synchronization primitive with waiting atomics.
//!
//! This example writes a producer/consumer *event flag* (single producer,
//! many consumers) directly against the kernel ISA, using the paper's
//! proposed `atomicCmpWait` compare-and-wait instruction, and runs it under
//! AWG. All consumers block in hardware — zero busy-wait atomics — until
//! the producer fires the event, and AWG's predictor resumes them together.
//!
//! ```sh
//! cargo run --release --example custom_primitive
//! ```

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{Gpu, GpuConfig, Kernel, RunOutcome, WgResources};
use awg_isa::{Cond, Operand, ProgramBuilder, Reg, Special};
use awg_mem::AddressSpace;

fn main() {
    let mut space = AddressSpace::new();
    let event = space.alloc_sync_var("event");
    let payload = space.alloc_sync_var("payload");
    let acks = space.alloc_sync_var("acks");

    // WG 0 produces: compute, publish payload, fire the event.
    // All other WGs consume: compare-and-wait on the event, read payload,
    // acknowledge.
    let mut b = ProgramBuilder::new("event_flag");
    b.special(Reg::R1, Special::WgId);
    let produce = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(0), produce);

    // --- consumer ---
    let wait = b.new_label();
    b.bind(wait);
    b.atom_cmp_wait(Reg::R2, event, 1i64); // waiting atomic: block until event == 1
    b.br(Cond::Ne, Reg::R2, Operand::Imm(1), wait); // Mesa: recheck on resume
    b.ld(Reg::R3, payload);
    b.atom_add(Reg::R0, acks, Reg::R3); // ack with the payload we saw
    b.jmp(done);

    // --- producer ---
    b.bind(produce);
    b.compute(20_000); // long setup: consumers must actually wait
    b.st(payload, 7i64);
    b.atom_exch(Reg::R0, event, 1i64); // fire
    b.bind(done);
    b.halt();

    let num_wgs = 32;
    let kernel = Kernel::new(
        b.build().expect("verifies"),
        num_wgs,
        WgResources::default(),
    );
    let mut gpu = Gpu::new(
        GpuConfig::isca2020_baseline(),
        kernel,
        build_policy(PolicyKind::Awg),
    );
    match gpu.run() {
        RunOutcome::Completed(summary) => {
            let acked = gpu.backing().load(acks);
            assert_eq!(
                acked,
                7 * (num_wgs as i64 - 1),
                "every consumer saw the payload"
            );
            println!(
                "event flag fired; {} consumers acknowledged payload 7",
                num_wgs - 1
            );
            println!(
                "cycles: {}   dynamic atomics: {}   resumes: {}   unnecessary resumes: {}",
                summary.cycles, summary.atomics, summary.resumes, summary.unnecessary_resumes
            );
            println!(
                "(compare with busy-waiting: 31 spinners would have issued ~{} polls)",
                20_000 / 132 * 31
            );
        }
        other => panic!("unexpected outcome: {other:?}"),
    }
}
