//! Print Fig 6-style ASCII Gantt timelines for every scheduling policy on
//! the same contended lock, side by side — the clearest view of how the
//! §IV architecture family differs.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use awg_core::policies::PolicyKind;
use awg_harness::{tracefig, Scale};

fn main() {
    let scale = Scale::paper();
    for policy in [
        PolicyKind::Baseline,
        PolicyKind::Sleep,
        PolicyKind::Timeout,
        PolicyKind::MonNrAll,
        PolicyKind::MonNrOne,
        PolicyKind::Awg,
    ] {
        println!("{}", tracefig::gantt_for(&scale, policy));
    }
    println!("Compare with the paper's Fig 6: busy-waiting runs hot (all R),");
    println!("Sleep/Timeout show fixed-interval z/s stripes, the monitors show");
    println!("event-driven stalls, and AWG wakes exactly when conditions are met.");
}
