//! The paper's §VI oversubscribed experiment, live: a tree-barrier kernel
//! loses one CU mid-run. The busy-waiting Baseline deadlocks — the machine
//! detects it — while AWG context switches the preempted WGs and finishes.
//!
//! ```sh
//! cargo run --release --example oversubscribed_barrier
//! ```

use awg_repro::prelude::*;
use awg_sim::cycles_to_us;

fn main() {
    let scale = Scale::paper();
    let kind = BenchmarkKind::TreeBarrier;
    println!(
        "benchmark: {kind} — one CU is removed at {:.0} µs into the run\n",
        cycles_to_us(scale.resource_loss_at)
    );

    for policy in [PolicyKind::Baseline, PolicyKind::Timeout, PolicyKind::Awg] {
        let result = run_experiment(kind, policy, &scale, ExperimentConfig::Oversubscribed);
        match &result.outcome {
            RunOutcome::Completed(summary) => {
                result.validated.as_ref().expect("barrier order must hold");
                println!(
                    "  {:<10} completed in {:>9} cycles ({:>6.1} µs), {} swaps out / {} in",
                    policy.label(),
                    summary.cycles,
                    cycles_to_us(summary.cycles),
                    summary.switches_out,
                    summary.switches_in,
                );
            }
            RunOutcome::Deadlocked { at, unfinished, .. } => {
                println!(
                    "  {:<10} DEADLOCK detected at cycle {at} with {unfinished} WGs stuck \
                     (no WG-level rescheduling: the preempted work-groups never return)",
                    policy.label(),
                );
            }
            RunOutcome::CycleLimit { .. } => {
                println!("  {:<10} hit the cycle cap", policy.label());
            }
            RunOutcome::Cancelled { cause, .. } => {
                println!("  {:<10} cancelled: {cause}", policy.label());
            }
        }
    }
    println!("\nThis is Fig 15's left-most bars: IFP requires WG-granularity scheduling support.");
}
