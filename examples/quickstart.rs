//! Quickstart: run one paper benchmark under the busy-waiting Baseline and
//! under AWG, and print the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use awg_repro::prelude::*;

fn main() {
    // The paper's Fig 14 setup: the Table 1 machine, a kernel that exactly
    // fills it, and the centralized ticket lock (one sync variable for the
    // whole grid — the case the paper headlines at 12x).
    let scale = Scale::paper();
    let kind = BenchmarkKind::FaMutexGlobal;

    println!("benchmark: {kind} ({})", kind.description());
    let mut cycles = Vec::new();
    for policy in [PolicyKind::Baseline, PolicyKind::Awg] {
        let result = run_experiment(kind, policy, &scale, ExperimentConfig::NonOversubscribed);
        let summary = result.outcome.summary();
        result
            .validated
            .as_ref()
            .expect("mutual exclusion must hold");
        println!(
            "  {:<10} {:>10} cycles  {:>8} dynamic atomics  {:>6} context switches",
            policy.label(),
            summary.cycles,
            summary.atomics,
            summary.switches_out,
        );
        cycles.push(summary.cycles as f64);
    }
    println!(
        "\nAWG speedup over busy-waiting: {:.1}x (paper: ~12x for single-sync-var kernels)",
        cycles[0] / cycles[1]
    );
}
