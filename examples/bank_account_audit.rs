//! Concurrency audit of the bank-account application: run the ordered
//! two-lock transfer workload under every policy and verify that money is
//! conserved (the mutual-exclusion post-condition) in each case — including
//! across a mid-run resource loss under AWG.
//!
//! ```sh
//! cargo run --release --example bank_account_audit
//! ```

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExperimentConfig, Scale};
use awg_workloads::apps::{INITIAL_BALANCE, NUM_ACCOUNTS};
use awg_workloads::BenchmarkKind;

fn main() {
    let scale = Scale::paper();
    let total = NUM_ACCOUNTS as i64 * INITIAL_BALANCE;
    println!(
        "bank: {NUM_ACCOUNTS} accounts x {INITIAL_BALANCE} = {total} total, \
         random ordered-two-lock transfers\n"
    );

    for policy in [
        PolicyKind::Baseline,
        PolicyKind::Timeout,
        PolicyKind::MonNrOne,
        PolicyKind::Awg,
    ] {
        let r = run_experiment(
            BenchmarkKind::BankAccount,
            policy,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        match r.validated {
            Ok(()) if r.outcome.is_completed() => println!(
                "  {:<10} steady machine: {} cycles, books balance",
                policy.label(),
                r.outcome.summary().cycles
            ),
            Ok(()) => println!("  {:<10} steady machine: did not complete", policy.label()),
            Err(e) => println!("  {:<10} AUDIT FAILURE: {e}", policy.label()),
        }
    }

    // The interesting case: transfers survive losing a CU mid-run.
    let r = run_experiment(
        BenchmarkKind::BankAccount,
        PolicyKind::Awg,
        &scale,
        ExperimentConfig::Oversubscribed,
    );
    assert!(r.outcome.is_completed(), "AWG must survive the CU loss");
    r.validated.expect("books must balance across preemption");
    let s = r.outcome.summary();
    println!(
        "\n  AWG with a CU lost mid-run: {} cycles, {} context switches out, books balance.",
        s.cycles, s.switches_out
    );
}
