; A centralized ticket lock with waiting atomics, runnable via:
;   cargo run --release -p awg-harness -- asm kernels/ticket_lock.s --policy awg --wgs 32
;
; Memory map:
;   0x1000  ticket tail
;   0x1040  now-serving
;   0x1080  protected counter (the mutual-exclusion witness)

    atom_add r5, [0x1000], 1          ; my ticket
retry:
    atom_ld.wait r2, [0x1040], 0, expect=r5
    bne r2, r5, retry                 ; Mesa: recheck after every resume
    ld r8, [0x1080]                   ; ---- critical section ----
    add r8, r8, 1
    st [0x1080], r8
    compute 200
    atom_add r0, [0x1040], 1          ; ---- release ----
    halt
