//! # awg-repro
//!
//! A full reproduction of **_Independent Forward Progress of Work-groups_**
//! (ISCA 2020) as a Rust workspace: the Autonomous Work-Groups (AWG)
//! hardware architecture, the GPU timing simulator it was evaluated on, the
//! HeteroSync-style benchmark suite, and the experiment harness that
//! regenerates every measured table and figure.
//!
//! This crate is the facade: it re-exports the workspace's public API and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! ## The 30-second tour
//!
//! ```
//! use awg_repro::prelude::*;
//!
//! // A paper benchmark, emitted for AWG's waiting atomics…
//! let params = WorkloadParams::smoke();
//! let policy = build_policy(PolicyKind::Awg);
//! let built = BenchmarkKind::FaMutexGlobal.build(&params, policy.style());
//!
//! // …run on the Table 1 machine…
//! let mut gpu = Gpu::new(GpuConfig::isca2020_baseline(), built.kernel(), policy);
//! let outcome = gpu.run();
//!
//! // …and validated: the ticket lock must have provided mutual exclusion.
//! assert!(outcome.is_completed());
//! built.validate(gpu.backing()).expect("post-conditions hold");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`awg_sim`] | discrete-event engine, stats, deterministic RNG |
//! | [`awg_mem`] | caches, banked L2 with atomics, DRAM |
//! | [`awg_isa`] | the kernel mini-ISA and functional machine |
//! | [`awg_gpu`] | CUs, dispatcher, WG interpreter, context switching |
//! | [`awg_core`] | **the paper's contribution**: SyncMon, CP, policies |
//! | [`awg_workloads`] | the Table 2 benchmark suite + applications |
//! | [`awg_harness`] | per-table/figure experiment harness + `awg-repro` CLI |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use awg_core as core;
pub use awg_gpu as gpu;
pub use awg_harness as harness;
pub use awg_isa as isa;
pub use awg_mem as mem;
pub use awg_sim as sim;
pub use awg_workloads as workloads;

/// Everything needed for the common "build a benchmark, pick a policy, run
/// it, validate it" flow.
pub mod prelude {
    pub use awg_core::policies::{build_policy, PolicyKind};
    pub use awg_gpu::{Gpu, GpuConfig, Kernel, RunOutcome, SchedPolicy, SyncStyle, WgResources};
    pub use awg_harness::{run_experiment, ExperimentConfig, Scale};
    pub use awg_isa::{ProgramBuilder, Reg};
    pub use awg_workloads::{BenchmarkKind, Scope, WorkloadParams};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_crates() {
        use crate::prelude::*;
        let p = build_policy(PolicyKind::Baseline);
        assert_eq!(p.name(), "Baseline");
        assert_eq!(WorkloadParams::smoke().num_wgs, 8);
    }
}
