/root/repo/target/release/deps/awg_sim-78f4f01598d83634.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libawg_sim-78f4f01598d83634.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libawg_sim-78f4f01598d83634.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/ewma.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
