/root/repo/target/release/deps/awg_repro-0d9480f02be646dd.d: src/lib.rs

/root/repo/target/release/deps/libawg_repro-0d9480f02be646dd.rlib: src/lib.rs

/root/repo/target/release/deps/libawg_repro-0d9480f02be646dd.rmeta: src/lib.rs

src/lib.rs:
