/root/repo/target/release/deps/chaos_matrix-d2e5535bf73340f0.d: tests/chaos_matrix.rs

/root/repo/target/release/deps/chaos_matrix-d2e5535bf73340f0: tests/chaos_matrix.rs

tests/chaos_matrix.rs:
