/root/repo/target/release/deps/awg_repro-96a3f08cf3a4160b.d: crates/harness/src/bin/awg_repro.rs

/root/repo/target/release/deps/awg_repro-96a3f08cf3a4160b: crates/harness/src/bin/awg_repro.rs

crates/harness/src/bin/awg_repro.rs:
