/root/repo/target/release/deps/machine-a589e8cefd080f55.d: crates/gpu/tests/machine.rs

/root/repo/target/release/deps/machine-a589e8cefd080f55: crates/gpu/tests/machine.rs

crates/gpu/tests/machine.rs:
