/root/repo/target/release/deps/awg_repro-18076f335efd9521.d: crates/harness/src/bin/awg_repro.rs

/root/repo/target/release/deps/awg_repro-18076f335efd9521: crates/harness/src/bin/awg_repro.rs

crates/harness/src/bin/awg_repro.rs:
