/root/repo/target/release/deps/machine_edges-44bc0096377f99a9.d: crates/gpu/tests/machine_edges.rs

/root/repo/target/release/deps/machine_edges-44bc0096377f99a9: crates/gpu/tests/machine_edges.rs

crates/gpu/tests/machine_edges.rs:
