/root/repo/target/release/deps/awg_gpu-b2d77e935c56e9cf.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/release/deps/libawg_gpu-b2d77e935c56e9cf.rlib: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/release/deps/libawg_gpu-b2d77e935c56e9cf.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/cu.rs:
crates/gpu/src/fault.rs:
crates/gpu/src/machine.rs:
crates/gpu/src/policy.rs:
crates/gpu/src/result.rs:
crates/gpu/src/trace.rs:
crates/gpu/src/wg.rs:
