/root/repo/target/release/deps/awg_isa-395d93774f3ce816.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libawg_isa-395d93774f3ce816.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/release/deps/libawg_isa-395d93774f3ce816.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/builder.rs:
crates/isa/src/functional.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
