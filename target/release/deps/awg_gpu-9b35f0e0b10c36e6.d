/root/repo/target/release/deps/awg_gpu-9b35f0e0b10c36e6.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/release/deps/awg_gpu-9b35f0e0b10c36e6: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/cu.rs:
crates/gpu/src/fault.rs:
crates/gpu/src/machine.rs:
crates/gpu/src/policy.rs:
crates/gpu/src/result.rs:
crates/gpu/src/trace.rs:
crates/gpu/src/wg.rs:
