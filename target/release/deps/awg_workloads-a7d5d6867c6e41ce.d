/root/repo/target/release/deps/awg_workloads-a7d5d6867c6e41ce.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

/root/repo/target/release/deps/libawg_workloads-a7d5d6867c6e41ce.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

/root/repo/target/release/deps/libawg_workloads-a7d5d6867c6e41ce.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/barrier.rs:
crates/workloads/src/bench.rs:
crates/workloads/src/characteristics.rs:
crates/workloads/src/checks.rs:
crates/workloads/src/context.rs:
crates/workloads/src/mutex.rs:
crates/workloads/src/params.rs:
crates/workloads/src/rw.rs:
crates/workloads/src/sync_emit.rs:
