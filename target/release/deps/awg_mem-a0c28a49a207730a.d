/root/repo/target/release/deps/awg_mem-a0c28a49a207730a.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/release/deps/libawg_mem-a0c28a49a207730a.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/release/deps/libawg_mem-a0c28a49a207730a.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/atomic.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
