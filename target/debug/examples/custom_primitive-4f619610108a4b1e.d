/root/repo/target/debug/examples/custom_primitive-4f619610108a4b1e.d: examples/custom_primitive.rs

/root/repo/target/debug/examples/custom_primitive-4f619610108a4b1e: examples/custom_primitive.rs

examples/custom_primitive.rs:
