/root/repo/target/debug/examples/oversubscribed_barrier-2a36afaa6974bee9.d: examples/oversubscribed_barrier.rs

/root/repo/target/debug/examples/oversubscribed_barrier-2a36afaa6974bee9: examples/oversubscribed_barrier.rs

examples/oversubscribed_barrier.rs:
