/root/repo/target/debug/examples/timeline-de7427c1ea7943d4.d: examples/timeline.rs

/root/repo/target/debug/examples/timeline-de7427c1ea7943d4: examples/timeline.rs

examples/timeline.rs:
