/root/repo/target/debug/examples/custom_primitive-313c47c878212deb.d: examples/custom_primitive.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_primitive-313c47c878212deb.rmeta: examples/custom_primitive.rs Cargo.toml

examples/custom_primitive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
