/root/repo/target/debug/examples/quickstart-310504f172a58d24.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-310504f172a58d24: examples/quickstart.rs

examples/quickstart.rs:
