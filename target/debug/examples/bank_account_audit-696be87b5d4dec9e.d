/root/repo/target/debug/examples/bank_account_audit-696be87b5d4dec9e.d: examples/bank_account_audit.rs

/root/repo/target/debug/examples/bank_account_audit-696be87b5d4dec9e: examples/bank_account_audit.rs

examples/bank_account_audit.rs:
