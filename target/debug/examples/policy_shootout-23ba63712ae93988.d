/root/repo/target/debug/examples/policy_shootout-23ba63712ae93988.d: examples/policy_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_shootout-23ba63712ae93988.rmeta: examples/policy_shootout.rs Cargo.toml

examples/policy_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
