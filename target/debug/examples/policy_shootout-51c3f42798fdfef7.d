/root/repo/target/debug/examples/policy_shootout-51c3f42798fdfef7.d: examples/policy_shootout.rs

/root/repo/target/debug/examples/policy_shootout-51c3f42798fdfef7: examples/policy_shootout.rs

examples/policy_shootout.rs:
