/root/repo/target/debug/examples/timeline-8d6483e7f6065500.d: examples/timeline.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline-8d6483e7f6065500.rmeta: examples/timeline.rs Cargo.toml

examples/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
