/root/repo/target/debug/examples/bank_account_audit-6338047fc94e5fde.d: examples/bank_account_audit.rs Cargo.toml

/root/repo/target/debug/examples/libbank_account_audit-6338047fc94e5fde.rmeta: examples/bank_account_audit.rs Cargo.toml

examples/bank_account_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
