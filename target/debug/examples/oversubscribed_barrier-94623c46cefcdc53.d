/root/repo/target/debug/examples/oversubscribed_barrier-94623c46cefcdc53.d: examples/oversubscribed_barrier.rs Cargo.toml

/root/repo/target/debug/examples/liboversubscribed_barrier-94623c46cefcdc53.rmeta: examples/oversubscribed_barrier.rs Cargo.toml

examples/oversubscribed_barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
