/root/repo/target/debug/deps/assembler_roundtrip-0047e3af9af74eba.d: tests/assembler_roundtrip.rs

/root/repo/target/debug/deps/assembler_roundtrip-0047e3af9af74eba: tests/assembler_roundtrip.rs

tests/assembler_roundtrip.rs:
