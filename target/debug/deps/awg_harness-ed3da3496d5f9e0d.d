/root/repo/target/debug/deps/awg_harness-ed3da3496d5f9e0d.d: crates/harness/src/lib.rs crates/harness/src/ablations.rs crates/harness/src/chaos.rs crates/harness/src/fairness.rs crates/harness/src/fig05.rs crates/harness/src/fig07.rs crates/harness/src/fig08.rs crates/harness/src/fig09.rs crates/harness/src/fig11.rs crates/harness/src/fig13.rs crates/harness/src/fig14.rs crates/harness/src/fig15.rs crates/harness/src/priority.rs crates/harness/src/report.rs crates/harness/src/run.rs crates/harness/src/scale.rs crates/harness/src/sweep.rs crates/harness/src/table1.rs crates/harness/src/table2.rs crates/harness/src/tracefig.rs

/root/repo/target/debug/deps/awg_harness-ed3da3496d5f9e0d: crates/harness/src/lib.rs crates/harness/src/ablations.rs crates/harness/src/chaos.rs crates/harness/src/fairness.rs crates/harness/src/fig05.rs crates/harness/src/fig07.rs crates/harness/src/fig08.rs crates/harness/src/fig09.rs crates/harness/src/fig11.rs crates/harness/src/fig13.rs crates/harness/src/fig14.rs crates/harness/src/fig15.rs crates/harness/src/priority.rs crates/harness/src/report.rs crates/harness/src/run.rs crates/harness/src/scale.rs crates/harness/src/sweep.rs crates/harness/src/table1.rs crates/harness/src/table2.rs crates/harness/src/tracefig.rs

crates/harness/src/lib.rs:
crates/harness/src/ablations.rs:
crates/harness/src/chaos.rs:
crates/harness/src/fairness.rs:
crates/harness/src/fig05.rs:
crates/harness/src/fig07.rs:
crates/harness/src/fig08.rs:
crates/harness/src/fig09.rs:
crates/harness/src/fig11.rs:
crates/harness/src/fig13.rs:
crates/harness/src/fig14.rs:
crates/harness/src/fig15.rs:
crates/harness/src/priority.rs:
crates/harness/src/report.rs:
crates/harness/src/run.rs:
crates/harness/src/scale.rs:
crates/harness/src/sweep.rs:
crates/harness/src/table1.rs:
crates/harness/src/table2.rs:
crates/harness/src/tracefig.rs:
