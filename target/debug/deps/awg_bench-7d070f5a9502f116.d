/root/repo/target/debug/deps/awg_bench-7d070f5a9502f116.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/awg_bench-7d070f5a9502f116: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
