/root/repo/target/debug/deps/awg_repro-86627d1da936458a.d: src/lib.rs

/root/repo/target/debug/deps/awg_repro-86627d1da936458a: src/lib.rs

src/lib.rs:
