/root/repo/target/debug/deps/paper_shapes-8712ee27c8fd10b9.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-8712ee27c8fd10b9: tests/paper_shapes.rs

tests/paper_shapes.rs:
