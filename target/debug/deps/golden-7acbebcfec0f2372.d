/root/repo/target/debug/deps/golden-7acbebcfec0f2372.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-7acbebcfec0f2372.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
