/root/repo/target/debug/deps/awg_repro-37e93f37dc29b047.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libawg_repro-37e93f37dc29b047.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
