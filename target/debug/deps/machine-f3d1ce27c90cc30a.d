/root/repo/target/debug/deps/machine-f3d1ce27c90cc30a.d: crates/gpu/tests/machine.rs Cargo.toml

/root/repo/target/debug/deps/libmachine-f3d1ce27c90cc30a.rmeta: crates/gpu/tests/machine.rs Cargo.toml

crates/gpu/tests/machine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
