/root/repo/target/debug/deps/awg_isa-d93aca0f67de4c90.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libawg_isa-d93aca0f67de4c90.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/libawg_isa-d93aca0f67de4c90.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/builder.rs:
crates/isa/src/functional.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
