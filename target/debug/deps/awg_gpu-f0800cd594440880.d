/root/repo/target/debug/deps/awg_gpu-f0800cd594440880.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs Cargo.toml

/root/repo/target/debug/deps/libawg_gpu-f0800cd594440880.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs Cargo.toml

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/cu.rs:
crates/gpu/src/fault.rs:
crates/gpu/src/machine.rs:
crates/gpu/src/policy.rs:
crates/gpu/src/result.rs:
crates/gpu/src/trace.rs:
crates/gpu/src/wg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
