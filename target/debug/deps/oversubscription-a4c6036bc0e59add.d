/root/repo/target/debug/deps/oversubscription-a4c6036bc0e59add.d: tests/oversubscription.rs Cargo.toml

/root/repo/target/debug/deps/liboversubscription-a4c6036bc0e59add.rmeta: tests/oversubscription.rs Cargo.toml

tests/oversubscription.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
