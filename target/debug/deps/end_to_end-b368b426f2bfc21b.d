/root/repo/target/debug/deps/end_to_end-b368b426f2bfc21b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b368b426f2bfc21b: tests/end_to_end.rs

tests/end_to_end.rs:
