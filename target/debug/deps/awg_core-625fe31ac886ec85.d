/root/repo/target/debug/deps/awg_core-625fe31ac886ec85.d: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/cp.rs crates/core/src/hash.rs crates/core/src/monitorlog.rs crates/core/src/policies/mod.rs crates/core/src/policies/awg.rs crates/core/src/policies/chaos.rs crates/core/src/policies/minresume.rs crates/core/src/policies/monitor.rs crates/core/src/policies/monnr.rs crates/core/src/policies/monr.rs crates/core/src/policies/monrs.rs crates/core/src/policies/sleep.rs crates/core/src/policies/timeout.rs crates/core/src/syncmon.rs Cargo.toml

/root/repo/target/debug/deps/libawg_core-625fe31ac886ec85.rmeta: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/cp.rs crates/core/src/hash.rs crates/core/src/monitorlog.rs crates/core/src/policies/mod.rs crates/core/src/policies/awg.rs crates/core/src/policies/chaos.rs crates/core/src/policies/minresume.rs crates/core/src/policies/monitor.rs crates/core/src/policies/monnr.rs crates/core/src/policies/monr.rs crates/core/src/policies/monrs.rs crates/core/src/policies/sleep.rs crates/core/src/policies/timeout.rs crates/core/src/syncmon.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bloom.rs:
crates/core/src/cp.rs:
crates/core/src/hash.rs:
crates/core/src/monitorlog.rs:
crates/core/src/policies/mod.rs:
crates/core/src/policies/awg.rs:
crates/core/src/policies/chaos.rs:
crates/core/src/policies/minresume.rs:
crates/core/src/policies/monitor.rs:
crates/core/src/policies/monnr.rs:
crates/core/src/policies/monr.rs:
crates/core/src/policies/monrs.rs:
crates/core/src/policies/sleep.rs:
crates/core/src/policies/timeout.rs:
crates/core/src/syncmon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
