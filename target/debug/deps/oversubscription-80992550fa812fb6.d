/root/repo/target/debug/deps/oversubscription-80992550fa812fb6.d: tests/oversubscription.rs

/root/repo/target/debug/deps/oversubscription-80992550fa812fb6: tests/oversubscription.rs

tests/oversubscription.rs:
