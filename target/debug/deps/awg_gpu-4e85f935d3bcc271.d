/root/repo/target/debug/deps/awg_gpu-4e85f935d3bcc271.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/debug/deps/awg_gpu-4e85f935d3bcc271: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/cu.rs:
crates/gpu/src/fault.rs:
crates/gpu/src/machine.rs:
crates/gpu/src/policy.rs:
crates/gpu/src/result.rs:
crates/gpu/src/trace.rs:
crates/gpu/src/wg.rs:
