/root/repo/target/debug/deps/awg_repro-ade6f25a303e1984.d: crates/harness/src/bin/awg_repro.rs

/root/repo/target/debug/deps/awg_repro-ade6f25a303e1984: crates/harness/src/bin/awg_repro.rs

crates/harness/src/bin/awg_repro.rs:
