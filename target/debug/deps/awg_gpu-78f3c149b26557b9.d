/root/repo/target/debug/deps/awg_gpu-78f3c149b26557b9.d: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/debug/deps/libawg_gpu-78f3c149b26557b9.rlib: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

/root/repo/target/debug/deps/libawg_gpu-78f3c149b26557b9.rmeta: crates/gpu/src/lib.rs crates/gpu/src/config.rs crates/gpu/src/cu.rs crates/gpu/src/fault.rs crates/gpu/src/machine.rs crates/gpu/src/policy.rs crates/gpu/src/result.rs crates/gpu/src/trace.rs crates/gpu/src/wg.rs

crates/gpu/src/lib.rs:
crates/gpu/src/config.rs:
crates/gpu/src/cu.rs:
crates/gpu/src/fault.rs:
crates/gpu/src/machine.rs:
crates/gpu/src/policy.rs:
crates/gpu/src/result.rs:
crates/gpu/src/trace.rs:
crates/gpu/src/wg.rs:
