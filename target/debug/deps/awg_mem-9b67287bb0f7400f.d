/root/repo/target/debug/deps/awg_mem-9b67287bb0f7400f.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/libawg_mem-9b67287bb0f7400f.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/libawg_mem-9b67287bb0f7400f.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/atomic.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
