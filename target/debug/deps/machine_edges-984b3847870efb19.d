/root/repo/target/debug/deps/machine_edges-984b3847870efb19.d: crates/gpu/tests/machine_edges.rs

/root/repo/target/debug/deps/machine_edges-984b3847870efb19: crates/gpu/tests/machine_edges.rs

crates/gpu/tests/machine_edges.rs:
