/root/repo/target/debug/deps/awg_repro-9bad1f269e07c15d.d: crates/harness/src/bin/awg_repro.rs Cargo.toml

/root/repo/target/debug/deps/libawg_repro-9bad1f269e07c15d.rmeta: crates/harness/src/bin/awg_repro.rs Cargo.toml

crates/harness/src/bin/awg_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
