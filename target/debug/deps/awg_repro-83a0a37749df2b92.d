/root/repo/target/debug/deps/awg_repro-83a0a37749df2b92.d: crates/harness/src/bin/awg_repro.rs Cargo.toml

/root/repo/target/debug/deps/libawg_repro-83a0a37749df2b92.rmeta: crates/harness/src/bin/awg_repro.rs Cargo.toml

crates/harness/src/bin/awg_repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
