/root/repo/target/debug/deps/determinism-a9c21600637f2a52.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-a9c21600637f2a52: tests/determinism.rs

tests/determinism.rs:
