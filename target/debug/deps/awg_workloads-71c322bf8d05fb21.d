/root/repo/target/debug/deps/awg_workloads-71c322bf8d05fb21.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

/root/repo/target/debug/deps/awg_workloads-71c322bf8d05fb21: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/barrier.rs:
crates/workloads/src/bench.rs:
crates/workloads/src/characteristics.rs:
crates/workloads/src/checks.rs:
crates/workloads/src/context.rs:
crates/workloads/src/mutex.rs:
crates/workloads/src/params.rs:
crates/workloads/src/rw.rs:
crates/workloads/src/sync_emit.rs:
