/root/repo/target/debug/deps/awg_sim-a02d970400131dbd.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libawg_sim-a02d970400131dbd.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/ewma.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
