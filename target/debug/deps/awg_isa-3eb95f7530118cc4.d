/root/repo/target/debug/deps/awg_isa-3eb95f7530118cc4.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

/root/repo/target/debug/deps/awg_isa-3eb95f7530118cc4: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/builder.rs:
crates/isa/src/functional.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
