/root/repo/target/debug/deps/awg_core-67bc6b5e4468ab19.d: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/cp.rs crates/core/src/hash.rs crates/core/src/monitorlog.rs crates/core/src/policies/mod.rs crates/core/src/policies/awg.rs crates/core/src/policies/chaos.rs crates/core/src/policies/minresume.rs crates/core/src/policies/monitor.rs crates/core/src/policies/monnr.rs crates/core/src/policies/monr.rs crates/core/src/policies/monrs.rs crates/core/src/policies/sleep.rs crates/core/src/policies/timeout.rs crates/core/src/syncmon.rs

/root/repo/target/debug/deps/awg_core-67bc6b5e4468ab19: crates/core/src/lib.rs crates/core/src/bloom.rs crates/core/src/cp.rs crates/core/src/hash.rs crates/core/src/monitorlog.rs crates/core/src/policies/mod.rs crates/core/src/policies/awg.rs crates/core/src/policies/chaos.rs crates/core/src/policies/minresume.rs crates/core/src/policies/monitor.rs crates/core/src/policies/monnr.rs crates/core/src/policies/monr.rs crates/core/src/policies/monrs.rs crates/core/src/policies/sleep.rs crates/core/src/policies/timeout.rs crates/core/src/syncmon.rs

crates/core/src/lib.rs:
crates/core/src/bloom.rs:
crates/core/src/cp.rs:
crates/core/src/hash.rs:
crates/core/src/monitorlog.rs:
crates/core/src/policies/mod.rs:
crates/core/src/policies/awg.rs:
crates/core/src/policies/chaos.rs:
crates/core/src/policies/minresume.rs:
crates/core/src/policies/monitor.rs:
crates/core/src/policies/monnr.rs:
crates/core/src/policies/monr.rs:
crates/core/src/policies/monrs.rs:
crates/core/src/policies/sleep.rs:
crates/core/src/policies/timeout.rs:
crates/core/src/syncmon.rs:
