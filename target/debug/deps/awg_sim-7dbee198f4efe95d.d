/root/repo/target/debug/deps/awg_sim-7dbee198f4efe95d.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libawg_sim-7dbee198f4efe95d.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libawg_sim-7dbee198f4efe95d.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/ewma.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
