/root/repo/target/debug/deps/assembler_roundtrip-289ca76a12acbfb2.d: tests/assembler_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libassembler_roundtrip-289ca76a12acbfb2.rmeta: tests/assembler_roundtrip.rs Cargo.toml

tests/assembler_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
