/root/repo/target/debug/deps/chaos_matrix-d085b8522f1abe32.d: tests/chaos_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_matrix-d085b8522f1abe32.rmeta: tests/chaos_matrix.rs Cargo.toml

tests/chaos_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
