/root/repo/target/debug/deps/awg_bench-26fa43e34cbae31d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libawg_bench-26fa43e34cbae31d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libawg_bench-26fa43e34cbae31d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
