/root/repo/target/debug/deps/chaos_matrix-53e2747956e26f14.d: tests/chaos_matrix.rs

/root/repo/target/debug/deps/chaos_matrix-53e2747956e26f14: tests/chaos_matrix.rs

tests/chaos_matrix.rs:
