/root/repo/target/debug/deps/awg_workloads-79043f3e1543cea4.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs Cargo.toml

/root/repo/target/debug/deps/libawg_workloads-79043f3e1543cea4.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/barrier.rs:
crates/workloads/src/bench.rs:
crates/workloads/src/characteristics.rs:
crates/workloads/src/checks.rs:
crates/workloads/src/context.rs:
crates/workloads/src/mutex.rs:
crates/workloads/src/params.rs:
crates/workloads/src/rw.rs:
crates/workloads/src/sync_emit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
