/root/repo/target/debug/deps/golden-99b150bcbb2d8a55.d: tests/golden.rs

/root/repo/target/debug/deps/golden-99b150bcbb2d8a55: tests/golden.rs

tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
