/root/repo/target/debug/deps/awg_mem-14f2a2a7ba9e9e72.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

/root/repo/target/debug/deps/awg_mem-14f2a2a7ba9e9e72: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/atomic.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
