/root/repo/target/debug/deps/awg_sim-cafcea619ce2ab7c.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/awg_sim-cafcea619ce2ab7c: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/ewma.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/ewma.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
