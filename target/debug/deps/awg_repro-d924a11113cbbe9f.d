/root/repo/target/debug/deps/awg_repro-d924a11113cbbe9f.d: src/lib.rs

/root/repo/target/debug/deps/libawg_repro-d924a11113cbbe9f.rlib: src/lib.rs

/root/repo/target/debug/deps/libawg_repro-d924a11113cbbe9f.rmeta: src/lib.rs

src/lib.rs:
