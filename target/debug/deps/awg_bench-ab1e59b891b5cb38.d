/root/repo/target/debug/deps/awg_bench-ab1e59b891b5cb38.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libawg_bench-ab1e59b891b5cb38.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
