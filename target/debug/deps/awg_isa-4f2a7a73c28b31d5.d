/root/repo/target/debug/deps/awg_isa-4f2a7a73c28b31d5.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

/root/repo/target/debug/deps/libawg_isa-4f2a7a73c28b31d5.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/builder.rs crates/isa/src/functional.rs crates/isa/src/inst.rs crates/isa/src/program.rs crates/isa/src/reg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/builder.rs:
crates/isa/src/functional.rs:
crates/isa/src/inst.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
