/root/repo/target/debug/deps/machine_edges-b915e38cf5a60bc8.d: crates/gpu/tests/machine_edges.rs Cargo.toml

/root/repo/target/debug/deps/libmachine_edges-b915e38cf5a60bc8.rmeta: crates/gpu/tests/machine_edges.rs Cargo.toml

crates/gpu/tests/machine_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
