/root/repo/target/debug/deps/fig07_sleep_backoff-e32828071253212f.d: crates/bench/benches/fig07_sleep_backoff.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_sleep_backoff-e32828071253212f.rmeta: crates/bench/benches/fig07_sleep_backoff.rs Cargo.toml

crates/bench/benches/fig07_sleep_backoff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
