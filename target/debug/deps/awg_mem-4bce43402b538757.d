/root/repo/target/debug/deps/awg_mem-4bce43402b538757.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs Cargo.toml

/root/repo/target/debug/deps/libawg_mem-4bce43402b538757.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/atomic.rs crates/mem/src/backing.rs crates/mem/src/cache.rs crates/mem/src/dram.rs crates/mem/src/l2.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/atomic.rs:
crates/mem/src/backing.rs:
crates/mem/src/cache.rs:
crates/mem/src/dram.rs:
crates/mem/src/l2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
