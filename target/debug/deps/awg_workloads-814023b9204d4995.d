/root/repo/target/debug/deps/awg_workloads-814023b9204d4995.d: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

/root/repo/target/debug/deps/libawg_workloads-814023b9204d4995.rlib: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

/root/repo/target/debug/deps/libawg_workloads-814023b9204d4995.rmeta: crates/workloads/src/lib.rs crates/workloads/src/apps.rs crates/workloads/src/barrier.rs crates/workloads/src/bench.rs crates/workloads/src/characteristics.rs crates/workloads/src/checks.rs crates/workloads/src/context.rs crates/workloads/src/mutex.rs crates/workloads/src/params.rs crates/workloads/src/rw.rs crates/workloads/src/sync_emit.rs

crates/workloads/src/lib.rs:
crates/workloads/src/apps.rs:
crates/workloads/src/barrier.rs:
crates/workloads/src/bench.rs:
crates/workloads/src/characteristics.rs:
crates/workloads/src/checks.rs:
crates/workloads/src/context.rs:
crates/workloads/src/mutex.rs:
crates/workloads/src/params.rs:
crates/workloads/src/rw.rs:
crates/workloads/src/sync_emit.rs:
