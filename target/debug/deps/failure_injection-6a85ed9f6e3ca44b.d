/root/repo/target/debug/deps/failure_injection-6a85ed9f6e3ca44b.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-6a85ed9f6e3ca44b: tests/failure_injection.rs

tests/failure_injection.rs:
