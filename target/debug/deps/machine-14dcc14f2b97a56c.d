/root/repo/target/debug/deps/machine-14dcc14f2b97a56c.d: crates/gpu/tests/machine.rs

/root/repo/target/debug/deps/machine-14dcc14f2b97a56c: crates/gpu/tests/machine.rs

crates/gpu/tests/machine.rs:
