/root/repo/target/debug/deps/awg_repro-56889e54b9f4c9df.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libawg_repro-56889e54b9f4c9df.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
