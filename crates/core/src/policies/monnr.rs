//! MonNR: waiting atomics close the window of vulnerability (§IV.D–E).
//!
//! The expected-value operand rides with the atomic, so the SyncMon
//! registers the waiter *atomically* with the failed comparison — "updates
//! will not be missed". Two resume flavours:
//!
//! * **MonNR-All** resumes every waiter of a met condition — great for
//!   barriers, wasteful for contended mutexes;
//! * **MonNR-One** resumes a single waiter and keeps monitoring — great for
//!   mutexes, but barrier waiters must fall back to timeouts ("the rest of
//!   the waiters are resumed when a different update to the monitored
//!   address meets the condition or after a fixed timeout interval").

use awg_gpu::{
    MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy, SyncCond, SyncFail,
    SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

use super::monitor::{MonitorCore, TrackOutcome};
use super::{DEFAULT_CP_TICK, DEFAULT_FALLBACK_TIMEOUT};

/// How many waiters a met condition resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResumeFlavor {
    All,
    One,
}

/// Shared implementation of both MonNR flavours.
#[derive(Debug)]
struct MonNr {
    core: MonitorCore,
    flavor: ResumeFlavor,
    fallback: Cycle,
    met_wakes: u64,
}

impl MonNr {
    fn new(flavor: ResumeFlavor, fallback: Cycle) -> Self {
        MonNr {
            core: MonitorCore::new(),
            flavor,
            fallback,
            met_wakes: 0,
        }
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        debug_assert!(
            !fail.via_wait_inst,
            "MonNR uses waiting atomics, not wait instructions"
        );
        match self.core.track(ctx, fail.cond, fail.wg) {
            TrackOutcome::MesaRetry => WaitDirective::Retry,
            _ => WaitDirective::Wait {
                release: ctx.oversubscribed(),
                timeout: Some(self.fallback),
            },
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        if !update.wrote || !update.monitored {
            return Vec::new();
        }
        let limit = match self.flavor {
            ResumeFlavor::All => usize::MAX,
            ResumeFlavor::One => 1,
        };
        let mut wakes = Vec::new();
        for cond in self.core.syncmon.conditions_met(update.addr, update.new) {
            wakes.extend(self.core.wake_cached(ctx, &cond, limit));
        }
        self.met_wakes += wakes.len() as u64;
        wakes
    }

    fn on_wait_timeout(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) -> TimeoutAction {
        self.core.untrack(ctx, wg);
        TimeoutAction::Wake
    }

    fn save(&self, enc: &mut Enc) {
        self.core.save(enc);
        enc.u64(self.met_wakes);
    }

    fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.core.load(dec)?;
        self.met_wakes = dec.u64()?;
        Ok(())
    }
}

/// Waiting atomics, resume-all (§IV.D).
#[derive(Debug)]
pub struct MonNrAllPolicy(MonNr);

impl MonNrAllPolicy {
    /// Creates the policy with the default fallback timeout.
    pub fn new() -> Self {
        Self::with_fallback(DEFAULT_FALLBACK_TIMEOUT)
    }

    /// Creates the policy with a custom fallback timeout.
    pub fn with_fallback(fallback: Cycle) -> Self {
        MonNrAllPolicy(MonNr::new(ResumeFlavor::All, fallback))
    }
}

impl Default for MonNrAllPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for MonNrAllPolicy {
    fn name(&self) -> &str {
        "MonNR-All"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        self.0.on_sync_fail(ctx, fail)
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        self.0.on_monitored_update(ctx, update)
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.0.on_wait_timeout(ctx, wg)
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.0.core.untrack(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(DEFAULT_CP_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        self.0.core.cp_tick(ctx)
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        self.0.core.inject_fault(ctx, fault)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.0.core.snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.0.core.registry()
    }

    fn report(&self, stats: &mut Stats) {
        self.0.core.report("monnr_all", stats);
        let c = stats.counter("monnr_all_met_wakes");
        stats.add(c, self.0.met_wakes);
    }

    fn save_state(&self, enc: &mut Enc) {
        self.0.save(enc);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.0.load(dec)
    }
}

/// Waiting atomics, resume-one (§IV.E).
#[derive(Debug)]
pub struct MonNrOnePolicy(MonNr);

impl MonNrOnePolicy {
    /// Creates the policy with the default fallback timeout.
    pub fn new() -> Self {
        Self::with_fallback(DEFAULT_FALLBACK_TIMEOUT)
    }

    /// Creates the policy with a custom fallback timeout.
    pub fn with_fallback(fallback: Cycle) -> Self {
        MonNrOnePolicy(MonNr::new(ResumeFlavor::One, fallback))
    }
}

impl Default for MonNrOnePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for MonNrOnePolicy {
    fn name(&self) -> &str {
        "MonNR-One"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        self.0.on_sync_fail(ctx, fail)
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        self.0.on_monitored_update(ctx, update)
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.0.on_wait_timeout(ctx, wg)
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.0.core.untrack(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(DEFAULT_CP_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        self.0.core.cp_tick(ctx)
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        self.0.core.inject_fault(ctx, fault)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.0.core.snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.0.core.registry()
    }

    fn report(&self, stats: &mut Stats) {
        self.0.core.report("monnr_one", stats);
        let c = stats.counter("monnr_one_met_wakes");
        stats.add(c, self.0.met_wakes);
    }

    fn save_state(&self, enc: &mut Enc) {
        self.0.save(enc);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.0.load(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: false,
        }
    }

    fn update(addr: u64, new: i64) -> MonitoredUpdate {
        MonitoredUpdate {
            addr,
            old: 0,
            new,
            wrote: true,
            monitored: true,
            by_wg: 99,
        }
    }

    macro_rules! with_ctx {
        ($ctx:ident, $body:block) => {{
            let mut l2 = L2::new(L2Config::isca2020());
            let mut stats = Stats::new();
            let mut $ctx = PolicyCtx {
                now: 0,
                l2: &mut l2,
                stats: &mut stats,
                pending_wgs: 0,
                ready_wgs: 0,
                swapped_waiting_wgs: 0,
                total_wgs: 8,
            };
            $body
        }};
    }

    #[test]
    fn all_flavor_wakes_every_waiter() {
        let mut p = MonNrAllPolicy::new();
        with_ctx!(ctx, {
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 1));
            }
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 1));
            assert_eq!(wakes.len(), 4);
            assert!(!ctx.l2.is_monitored(64));
        });
    }

    #[test]
    fn one_flavor_wakes_single_waiter_and_keeps_monitoring() {
        let mut p = MonNrOnePolicy::new();
        with_ctx!(ctx, {
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 1));
            }
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 1));
            assert_eq!(wakes.len(), 1);
            assert_eq!(wakes[0].wg, 0, "FIFO order");
            assert!(ctx.l2.is_monitored(64), "remaining waiters keep the bit");
            // A second met update wakes the next one.
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 1));
            assert_eq!(wakes[0].wg, 1);
        });
    }

    #[test]
    fn non_matching_update_wakes_nobody() {
        let mut p = MonNrAllPolicy::new();
        with_ctx!(ctx, {
            p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
            assert!(p.on_monitored_update(&mut ctx, &update(64, 7)).is_empty());
        });
    }

    #[test]
    fn leftover_waiters_time_out() {
        let mut p = MonNrOnePolicy::new();
        with_ctx!(ctx, {
            p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
            p.on_sync_fail(&mut ctx, &fail(1, 64, 1));
            p.on_monitored_update(&mut ctx, &update(64, 1)); // wakes 0
            let cond = SyncCond {
                addr: 64,
                expected: 1,
            };
            assert_eq!(p.on_wait_timeout(&mut ctx, 1, &cond), TimeoutAction::Wake);
            assert!(!ctx.l2.is_monitored(64));
        });
    }
}
