//! Shared plumbing for the monitor-based policies: SyncMon registration
//! with Monitor Log spill, CP draining, and monitored-bit lifetime.

use std::collections::HashMap;

use awg_gpu::{
    MonitorEntrySnapshot, PolicyCtx, PolicyFault, SyncCond, WaiterRecord, WaiterStructure, Wake,
    WgId,
};
use awg_sim::{CodecError, Dec, Enc, Stats};

use crate::cp::Cp;
use crate::monitorlog::{LogEntry, MonitorLog};
use crate::syncmon::{RegisterOutcome, SyncMon, SyncMonConfig};

/// Default Monitor Log capacity in entries.
pub const DEFAULT_LOG_CAPACITY: usize = 4096;

/// Entries the CP drains from the log per firmware tick.
pub const CP_DRAIN_PER_TICK: usize = 64;

/// How a registration ended up being tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackOutcome {
    /// Cached in the SyncMon (fast path).
    Cached,
    /// Spilled to the Monitor Log (CP slow path).
    Spilled,
    /// The Monitor Log was full: the WG must retry its atomic (Mesa).
    MesaRetry,
}

/// SyncMon + Monitor Log + CP, assembled the way every monitor policy uses
/// them (Fig 12).
#[derive(Debug)]
pub struct MonitorCore {
    /// The on-chip monitor.
    pub syncmon: SyncMon,
    /// The in-memory overflow log.
    pub log: MonitorLog,
    /// The CP firmware tables.
    pub cp: Cp,
    /// Where each waiting WG is tracked (for timeout/finish cleanup).
    tracked: HashMap<WgId, (SyncCond, TrackOutcome)>,
    mesa_retries: u64,
    wakes_issued: u64,
    chaos_evicted_waiters: u64,
    chaos_bloom_pollutions: u64,
}

impl MonitorCore {
    /// Creates the paper-sized monitor stack.
    pub fn new() -> Self {
        Self::with_config(SyncMonConfig::isca2020(), DEFAULT_LOG_CAPACITY)
    }

    /// Sets the CP's condition-check order (the §V.A fairness study).
    pub fn set_check_order(&mut self, order: crate::cp::CheckOrder) {
        self.cp.set_order(order);
    }

    /// Creates a custom-sized monitor stack (capacity ablations).
    pub fn with_config(config: SyncMonConfig, log_capacity: usize) -> Self {
        MonitorCore {
            syncmon: SyncMon::new(config),
            log: MonitorLog::new(log_capacity),
            cp: Cp::new(),
            tracked: HashMap::new(),
            mesa_retries: 0,
            wakes_issued: 0,
            chaos_evicted_waiters: 0,
            chaos_bloom_pollutions: 0,
        }
    }

    /// Registers `wg` waiting on `cond`, spilling as needed.
    pub fn track(&mut self, ctx: &mut PolicyCtx<'_>, cond: SyncCond, wg: WgId) -> TrackOutcome {
        match self.syncmon.register(cond, wg, ctx.now) {
            RegisterOutcome::Registered => {
                if ctx.l2.set_monitored(cond.addr) {
                    self.tracked.insert(wg, (cond, TrackOutcome::Cached));
                    TrackOutcome::Cached
                } else {
                    // The L2 set is fully pinned: the SyncMon cannot observe
                    // this address, so fall back to the CP path.
                    self.syncmon.remove_waiter(&cond, wg);
                    self.spill(ctx, cond, wg)
                }
            }
            RegisterOutcome::CacheFull | RegisterOutcome::WaitersFull => self.spill(ctx, cond, wg),
        }
    }

    fn spill(&mut self, ctx: &mut PolicyCtx<'_>, cond: SyncCond, wg: WgId) -> TrackOutcome {
        if self.log.push(ctx.l2, ctx.now, LogEntry { cond, wg }) {
            self.tracked.insert(wg, (cond, TrackOutcome::Spilled));
            TrackOutcome::Spilled
        } else {
            self.mesa_retries += 1;
            TrackOutcome::MesaRetry
        }
    }

    /// Pops up to `limit` cached waiters of `cond` as wakes, maintaining the
    /// monitored bit.
    pub fn wake_cached(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        cond: &SyncCond,
        limit: usize,
    ) -> Vec<Wake> {
        let wgs = self.syncmon.take_waiters(cond, limit);
        for &wg in &wgs {
            self.tracked.remove(&wg);
        }
        self.wakes_issued += wgs.len() as u64;
        if !wgs.is_empty() {
            let h = ctx.stats.hist("monitor_wake_batch_size");
            ctx.stats.observe(h, wgs.len() as u64);
        }
        if !self.syncmon.addr_has_conditions(cond.addr) {
            ctx.l2.clear_monitored(cond.addr);
        }
        wgs.into_iter().map(Wake::now).collect()
    }

    /// Removes `wg`'s registration wherever it lives (timeout wake, finish).
    pub fn untrack(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        if let Some((cond, outcome)) = self.tracked.remove(&wg) {
            match outcome {
                TrackOutcome::Cached => {
                    self.syncmon.remove_waiter(&cond, wg);
                    if !self.syncmon.addr_has_conditions(cond.addr) {
                        ctx.l2.clear_monitored(cond.addr);
                    }
                }
                TrackOutcome::Spilled => {
                    // May still sit in the log; the CP drops stale entries
                    // when it drains them (the WG is no longer tracked).
                    self.cp.remove_wg(wg);
                }
                TrackOutcome::MesaRetry => {}
            }
        }
    }

    /// Where `wg` is currently tracked.
    pub fn tracking_of(&self, wg: WgId) -> Option<(SyncCond, TrackOutcome)> {
        self.tracked.get(&wg).copied()
    }

    /// Every tracked waiter with the structure holding its registration,
    /// sorted by WG for the invariant oracle. `MesaRetry` outcomes never
    /// enter `tracked`, so everything here is Cached or Spilled.
    pub fn registry(&self) -> Vec<(WgId, WaiterRecord)> {
        let mut out: Vec<(WgId, WaiterRecord)> = self
            .tracked
            .iter()
            .map(|(&wg, &(cond, outcome))| {
                let structure = match outcome {
                    TrackOutcome::Cached => WaiterStructure::SyncMon,
                    TrackOutcome::Spilled | TrackOutcome::MesaRetry => WaiterStructure::MonitorLog,
                };
                (wg, WaiterRecord { cond, structure })
            })
            .collect();
        out.sort_unstable_by_key(|&(wg, _)| wg);
        out
    }

    /// The CP firmware tick: drain the log, check spilled conditions with
    /// timed reads, and wake the WGs whose conditions hold.
    pub fn cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        let entries = self.log.drain(ctx.l2, ctx.now, CP_DRAIN_PER_TICK);
        // Drop entries whose WG is no longer waiting (timeout already woke it).
        let live: Vec<LogEntry> = entries
            .into_iter()
            .filter(|e| {
                self.tracked
                    .get(&e.wg)
                    .is_some_and(|(c, o)| *c == e.cond && *o == TrackOutcome::Spilled)
            })
            .collect();
        self.cp.absorb(live);
        let met = self.cp.check_conditions(ctx.l2, ctx.now);
        let mut wakes = Vec::with_capacity(met.len());
        for (cond, wg) in met {
            if self.tracked.remove(&wg).is_some() {
                self.wakes_issued += 1;
                let _ = cond;
                wakes.push(Wake::now(wg));
            }
        }
        wakes
    }

    /// Applies a chaos-engine fault to the monitor hardware. Eviction cuts
    /// waiters loose from every structure — they hold no registration
    /// anywhere afterwards, so only their fallback timeouts can rescue
    /// them, which is exactly the liveness property under test. Bloom
    /// storms inflate unique-update counts to force false positives in
    /// AWG's resume predictor.
    pub fn inject_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        match *fault {
            PolicyFault::EvictConditions { count } => {
                for (cond, wgs) in self.syncmon.evict_conditions(count) {
                    for wg in wgs {
                        self.tracked.remove(&wg);
                        self.chaos_evicted_waiters += 1;
                    }
                    if !self.syncmon.addr_has_conditions(cond.addr) {
                        ctx.l2.clear_monitored(cond.addr);
                    }
                }
            }
            PolicyFault::BloomStorm { unique_values } => {
                self.chaos_bloom_pollutions += self.syncmon.pollute_blooms(unique_values) as u64;
            }
        }
        Vec::new()
    }

    /// Live SyncMon condition entries, for forensic hang reports.
    pub fn snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.syncmon
            .snapshot()
            .into_iter()
            .map(|(cond, waiters)| MonitorEntrySnapshot {
                addr: cond.addr,
                expected: cond.expected,
                waiters,
            })
            .collect()
    }

    /// Serializes the full monitor stack: SyncMon, Monitor Log, CP tables,
    /// and the per-WG tracking map (sorted by WG for a canonical encoding).
    pub fn save(&self, enc: &mut Enc) {
        self.syncmon.save(enc);
        self.log.save(enc);
        self.cp.save(enc);
        let mut tracked: Vec<(WgId, (SyncCond, TrackOutcome))> =
            self.tracked.iter().map(|(&wg, &t)| (wg, t)).collect();
        tracked.sort_unstable_by_key(|&(wg, _)| wg);
        enc.usize(tracked.len());
        for (wg, (cond, outcome)) in tracked {
            enc.u32(wg);
            enc.u64(cond.addr);
            enc.i64(cond.expected);
            enc.u8(match outcome {
                TrackOutcome::Cached => 0,
                TrackOutcome::Spilled => 1,
                TrackOutcome::MesaRetry => 2,
            });
        }
        enc.u64(self.mesa_retries);
        enc.u64(self.wakes_issued);
        enc.u64(self.chaos_evicted_waiters);
        enc.u64(self.chaos_bloom_pollutions);
    }

    /// Restores state saved by [`MonitorCore::save`] onto a stack with
    /// matching geometry.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.syncmon.load(dec)?;
        self.log.load(dec)?;
        self.cp.load(dec)?;
        let n = dec.count(21)?;
        let mut tracked = HashMap::with_capacity(n);
        for _ in 0..n {
            let wg = dec.u32()?;
            let cond = SyncCond {
                addr: dec.u64()?,
                expected: dec.i64()?,
            };
            let outcome = match dec.u8()? {
                0 => TrackOutcome::Cached,
                1 => TrackOutcome::Spilled,
                2 => TrackOutcome::MesaRetry,
                t => {
                    return Err(CodecError::Invalid(format!(
                        "unknown track outcome tag {t}"
                    )));
                }
            };
            if tracked.insert(wg, (cond, outcome)).is_some() {
                return Err(CodecError::Invalid(format!("WG {wg} tracked twice")));
            }
        }
        self.tracked = tracked;
        self.mesa_retries = dec.u64()?;
        self.wakes_issued = dec.u64()?;
        self.chaos_evicted_waiters = dec.u64()?;
        self.chaos_bloom_pollutions = dec.u64()?;
        Ok(())
    }

    /// Dumps monitor counters into the run statistics.
    pub fn report(&self, prefix: &str, stats: &mut Stats) {
        let (conds_hw, waiters_hw, addrs_hw) = self.syncmon.high_water();
        let (appends, rejects, log_hw) = self.log.stats();
        let (drained, checks) = self.cp.stats();
        let fp = self.cp.footprint();
        for (name, value) in [
            ("syncmon_max_conditions", conds_hw as u64),
            ("syncmon_max_waiters", waiters_hw as u64),
            ("syncmon_max_monitored_addrs", addrs_hw as u64),
            ("syncmon_spills", self.syncmon.spill_count()),
            ("monitor_log_appends", appends),
            ("monitor_log_rejects", rejects),
            ("monitor_log_high_water", log_hw as u64),
            ("cp_entries_drained", drained),
            ("cp_condition_checks", checks),
            ("cp_footprint_bytes", fp.total()),
            ("mesa_retries", self.mesa_retries),
            ("wakes_issued", self.wakes_issued),
            ("chaos_evicted_waiters", self.chaos_evicted_waiters),
            ("chaos_bloom_pollutions", self.chaos_bloom_pollutions),
        ] {
            let c = stats.counter(&format!("{prefix}_{name}"));
            stats.add(c, value);
        }
    }
}

impl Default for MonitorCore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn ctx<'a>(l2: &'a mut L2, stats: &'a mut Stats) -> PolicyCtx<'a> {
        PolicyCtx {
            now: 100,
            l2,
            stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        }
    }

    fn cond(addr: u64, expected: i64) -> SyncCond {
        SyncCond { addr, expected }
    }

    #[test]
    fn track_sets_monitored_bit() {
        let mut core = MonitorCore::new();
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        assert_eq!(core.track(&mut ctx, cond(64, 1), 0), TrackOutcome::Cached);
        assert!(ctx.l2.is_monitored(64));
        assert_eq!(
            core.tracking_of(0),
            Some((cond(64, 1), TrackOutcome::Cached))
        );
    }

    #[test]
    fn wake_cached_clears_bit_when_last() {
        let mut core = MonitorCore::new();
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        core.track(&mut ctx, cond(64, 1), 0);
        core.track(&mut ctx, cond(64, 1), 1);
        let wakes = core.wake_cached(&mut ctx, &cond(64, 1), 1);
        assert_eq!(wakes, vec![Wake::now(0)]);
        assert!(ctx.l2.is_monitored(64), "still one waiter");
        let wakes = core.wake_cached(&mut ctx, &cond(64, 1), 8);
        assert_eq!(wakes, vec![Wake::now(1)]);
        assert!(!ctx.l2.is_monitored(64), "last waiter clears the bit");
    }

    #[test]
    fn untrack_cached_waiter() {
        let mut core = MonitorCore::new();
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        core.track(&mut ctx, cond(64, 1), 0);
        core.untrack(&mut ctx, 0);
        assert!(core.tracking_of(0).is_none());
        assert!(!ctx.l2.is_monitored(64));
    }

    #[test]
    fn spill_path_flows_through_cp() {
        // Tiny SyncMon: one condition slot, so the second condition spills.
        let mut core = MonitorCore::with_config(
            SyncMonConfig {
                sets: 1,
                ways: 1,
                waiter_slots: 4,
                bloom_filters: 4,
            },
            16,
        );
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        assert_eq!(core.track(&mut ctx, cond(64, 1), 0), TrackOutcome::Cached);
        assert_eq!(core.track(&mut ctx, cond(128, 2), 1), TrackOutcome::Spilled);
        // CP tick with the condition unmet: no wakes.
        assert!(core.cp_tick(&mut ctx).is_empty());
        // Make it hold and tick again.
        ctx.l2.backing_mut().store(128, 2);
        let wakes = core.cp_tick(&mut ctx);
        assert_eq!(wakes, vec![Wake::now(1)]);
        assert!(core.tracking_of(1).is_none());
    }

    #[test]
    fn full_log_forces_mesa_retry() {
        let mut core = MonitorCore::with_config(
            SyncMonConfig {
                sets: 1,
                ways: 1,
                waiter_slots: 1,
                bloom_filters: 4,
            },
            1,
        );
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        assert_eq!(core.track(&mut ctx, cond(64, 1), 0), TrackOutcome::Cached);
        assert_eq!(core.track(&mut ctx, cond(128, 1), 1), TrackOutcome::Spilled);
        assert_eq!(
            core.track(&mut ctx, cond(192, 1), 2),
            TrackOutcome::MesaRetry
        );
    }

    #[test]
    fn stale_log_entries_dropped_after_untrack() {
        let mut core = MonitorCore::with_config(
            SyncMonConfig {
                sets: 1,
                ways: 1,
                waiter_slots: 1,
                bloom_filters: 4,
            },
            16,
        );
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = ctx(&mut l2, &mut stats);
        core.track(&mut ctx, cond(64, 1), 0);
        core.track(&mut ctx, cond(128, 2), 1); // spilled
        core.untrack(&mut ctx, 1); // timeout woke it first
        ctx.l2.backing_mut().store(128, 2);
        assert!(
            core.cp_tick(&mut ctx).is_empty(),
            "stale entry must not wake"
        );
    }

    #[test]
    fn report_writes_counters() {
        let core = MonitorCore::new();
        let mut stats = Stats::new();
        core.report("monr", &mut stats);
        assert_eq!(stats.get_by_name("monr_mesa_retries"), Some(0));
        assert!(stats.get_by_name("monr_cp_footprint_bytes").is_some());
    }
}
