//! MinResume: the oracular configuration Fig 9 normalizes against.
//!
//! "MinResume achieves this by spreading out when waiting WGs are resumed,
//! such that WGs will not contend when retrying to acquire sync variables."
//! It is allowed to peek at memory (it is an oracle, not hardware): a
//! waiter is released only while its condition actually holds, one waiter
//! per condition per release step, so nearly every retry succeeds and the
//! dynamic atomic count approaches the minimum.

use std::collections::{HashMap, VecDeque};

use awg_gpu::{
    MonitoredUpdate, PolicyCtx, SchedPolicy, SyncCond, SyncFail, SyncStyle, TimeoutAction,
    WaitDirective, WaiterRecord, WaiterStructure, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

/// Interval between the oracle's staggered release steps.
const STAGGER_TICK: Cycle = 500;

/// Generous fallback so oracle bookkeeping can never deadlock a run.
const ORACLE_FALLBACK: Cycle = 200_000;

/// The Fig 9 oracle policy.
#[derive(Debug, Default)]
pub struct MinResumePolicy {
    waiters: HashMap<SyncCond, VecDeque<WgId>>,
    wakes: u64,
}

impl MinResumePolicy {
    /// Creates the oracle.
    pub fn new() -> Self {
        Self::default()
    }

    fn remove_wg(&mut self, wg: WgId) {
        self.waiters.retain(|_, q| {
            q.retain(|&w| w != wg);
            !q.is_empty()
        });
    }

    fn release_satisfied(&mut self, ctx: &mut PolicyCtx<'_>, per_cond: usize) -> Vec<Wake> {
        let mut conds: Vec<SyncCond> = self.waiters.keys().copied().collect();
        conds.sort_by_key(|c| (c.addr, c.expected));
        let mut wakes = Vec::new();
        for cond in conds {
            if ctx.l2.peek(cond.addr) != cond.expected {
                continue;
            }
            let q = self.waiters.get_mut(&cond).expect("cond present");
            for _ in 0..per_cond {
                let Some(wg) = q.pop_front() else { break };
                wakes.push(Wake::now(wg));
                self.wakes += 1;
            }
            if q.is_empty() {
                self.waiters.remove(&cond);
                if !self.waiters.keys().any(|c| c.addr == cond.addr) {
                    ctx.l2.clear_monitored(cond.addr);
                }
            }
        }
        wakes
    }
}

impl SchedPolicy for MinResumePolicy {
    fn name(&self) -> &str {
        "MinResume"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        ctx.l2.set_monitored(fail.cond.addr);
        self.waiters
            .entry(fail.cond)
            .or_default()
            .push_back(fail.wg);
        WaitDirective::Wait {
            release: ctx.oversubscribed(),
            timeout: Some(ORACLE_FALLBACK),
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        if !update.wrote {
            return Vec::new();
        }
        // Release at most one waiter per now-satisfied condition; the
        // stagger tick trickles out the rest without contention.
        self.release_satisfied(ctx, 1)
    }

    fn on_wait_timeout(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.remove_wg(wg);
        TimeoutAction::Wake
    }

    fn on_wg_finished(&mut self, _ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.remove_wg(wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(STAGGER_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        self.release_satisfied(ctx, 1)
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        let mut out: Vec<(WgId, WaiterRecord)> = self
            .waiters
            .iter()
            .flat_map(|(&cond, q)| {
                q.iter().map(move |&wg| {
                    (
                        wg,
                        WaiterRecord {
                            cond,
                            structure: WaiterStructure::PolicyLocal,
                        },
                    )
                })
            })
            .collect();
        out.sort_unstable_by_key(|&(wg, _)| wg);
        out
    }

    fn report(&self, stats: &mut Stats) {
        let c = stats.counter("minresume_wakes");
        stats.add(c, self.wakes);
    }

    fn save_state(&self, enc: &mut Enc) {
        let mut conds: Vec<SyncCond> = self.waiters.keys().copied().collect();
        conds.sort_by_key(|c| (c.addr, c.expected));
        enc.usize(conds.len());
        for cond in conds {
            enc.u64(cond.addr);
            enc.i64(cond.expected);
            let q = &self.waiters[&cond];
            enc.usize(q.len());
            for &wg in q {
                enc.u32(wg);
            }
        }
        enc.u64(self.wakes);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let n = dec.count(24)?;
        let mut waiters: HashMap<SyncCond, VecDeque<WgId>> = HashMap::with_capacity(n);
        for _ in 0..n {
            let cond = SyncCond {
                addr: dec.u64()?,
                expected: dec.i64()?,
            };
            let m = dec.count(4)?;
            if m == 0 {
                return Err(CodecError::Invalid(format!(
                    "empty oracle waiter queue for {:#x}={}",
                    cond.addr, cond.expected
                )));
            }
            let mut q = VecDeque::with_capacity(m);
            for _ in 0..m {
                q.push_back(dec.u32()?);
            }
            if waiters.insert(cond, q).is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate oracle condition {:#x}={}",
                    cond.addr, cond.expected
                )));
            }
        }
        self.waiters = waiters;
        self.wakes = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: false,
        }
    }

    macro_rules! with_ctx {
        ($ctx:ident, $body:block) => {{
            let mut l2 = L2::new(L2Config::isca2020());
            let mut stats = Stats::new();
            let mut $ctx = PolicyCtx {
                now: 0,
                l2: &mut l2,
                stats: &mut stats,
                pending_wgs: 0,
                ready_wgs: 0,
                swapped_waiting_wgs: 0,
                total_wgs: 8,
            };
            $body
        }};
    }

    #[test]
    fn releases_only_while_condition_holds() {
        let mut p = MinResumePolicy::new();
        with_ctx!(ctx, {
            p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
            p.on_sync_fail(&mut ctx, &fail(1, 64, 1));
            // Condition does not hold yet: updates to other values wake none.
            ctx.l2.backing_mut().store(64, 5);
            let wakes = p.on_monitored_update(
                &mut ctx,
                &MonitoredUpdate {
                    addr: 64,
                    old: 0,
                    new: 5,
                    wrote: true,
                    monitored: true,
                    by_wg: 9,
                },
            );
            assert!(wakes.is_empty());
            // Now it holds: one waiter per release step.
            ctx.l2.backing_mut().store(64, 1);
            let wakes = p.on_monitored_update(
                &mut ctx,
                &MonitoredUpdate {
                    addr: 64,
                    old: 5,
                    new: 1,
                    wrote: true,
                    monitored: true,
                    by_wg: 9,
                },
            );
            assert_eq!(wakes.len(), 1);
            // The stagger tick trickles the next one.
            let wakes = p.on_cp_tick(&mut ctx);
            assert_eq!(wakes.len(), 1);
            assert!(p.on_cp_tick(&mut ctx).is_empty(), "queue drained");
        });
    }

    #[test]
    fn timeout_removes_registration() {
        let mut p = MinResumePolicy::new();
        with_ctx!(ctx, {
            let f = fail(0, 64, 1);
            p.on_sync_fail(&mut ctx, &f);
            assert_eq!(p.on_wait_timeout(&mut ctx, 0, &f.cond), TimeoutAction::Wake);
            ctx.l2.backing_mut().store(64, 1);
            assert!(p.on_cp_tick(&mut ctx).is_empty());
        });
    }
}
