//! Exponential backoff with `s_sleep` (§IV.C.i, Fig 7).
//!
//! "Sleep instructions have low hardware overhead … However, they support
//! limited timeout periods and do not wait for a specific event" — and
//! crucially they *do not release hardware resources*, so this policy
//! deadlocks in oversubscribed scenarios exactly like the Baseline.

use std::collections::HashMap;

use awg_gpu::{
    MonitoredUpdate, PolicyCtx, SchedPolicy, SyncCond, SyncFail, SyncStyle, WaitDirective, Wake,
    WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

/// Initial backoff interval in cycles (doubles per failed retry).
pub const BACKOFF_BASE: Cycle = 250;

/// Software exponential backoff: each failed check sleeps, doubling the
/// interval up to `max_interval` (the Fig 7 `Sleep-Xk` parameter).
#[derive(Debug, Clone)]
pub struct SleepBackoffPolicy {
    max_interval: Cycle,
    backoff: HashMap<WgId, (SyncCond, Cycle)>,
    sleeps: u64,
    slept_cycles: u64,
}

impl SleepBackoffPolicy {
    /// Creates the policy with the given maximum backoff interval.
    ///
    /// # Panics
    ///
    /// Panics if `max_interval == 0`.
    pub fn new(max_interval: Cycle) -> Self {
        assert!(max_interval > 0, "max interval must be positive");
        SleepBackoffPolicy {
            max_interval,
            backoff: HashMap::new(),
            sleeps: 0,
            slept_cycles: 0,
        }
    }

    /// The configured maximum interval.
    pub fn max_interval(&self) -> Cycle {
        self.max_interval
    }
}

impl SchedPolicy for SleepBackoffPolicy {
    fn name(&self) -> &str {
        "Sleep"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn supports_wg_rescheduling(&self) -> bool {
        // `s_sleep` never releases hardware resources; like the Baseline,
        // this architecture cannot bring preempted WGs back.
        false
    }

    fn on_sync_fail(&mut self, _ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        let entry = self.backoff.entry(fail.wg).or_insert((fail.cond, 0));
        if entry.0 != fail.cond {
            // New synchronization episode: restart the backoff ladder.
            *entry = (fail.cond, 0);
        }
        let interval = if entry.1 == 0 {
            BACKOFF_BASE
        } else {
            (entry.1 * 2).min(self.max_interval)
        };
        entry.1 = interval;
        self.sleeps += 1;
        self.slept_cycles += interval;
        WaitDirective::SleepFor(interval)
    }

    fn on_monitored_update(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        Vec::new()
    }

    fn on_wg_finished(&mut self, _ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.backoff.remove(&wg);
    }

    fn report(&self, stats: &mut Stats) {
        let c = stats.counter("sleep_backoff_sleeps");
        stats.add(c, self.sleeps);
        let c = stats.counter("sleep_backoff_slept_cycles");
        stats.add(c, self.slept_cycles);
    }

    fn save_state(&self, enc: &mut Enc) {
        let mut ladders: Vec<(WgId, (SyncCond, Cycle))> =
            self.backoff.iter().map(|(&wg, &v)| (wg, v)).collect();
        ladders.sort_unstable_by_key(|&(wg, _)| wg);
        enc.usize(ladders.len());
        for (wg, (cond, interval)) in ladders {
            enc.u32(wg);
            enc.u64(cond.addr);
            enc.i64(cond.expected);
            enc.u64(interval);
        }
        enc.u64(self.sleeps);
        enc.u64(self.slept_cycles);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let n = dec.count(28)?;
        let mut backoff = HashMap::with_capacity(n);
        for _ in 0..n {
            let wg = dec.u32()?;
            let cond = SyncCond {
                addr: dec.u64()?,
                expected: dec.i64()?,
            };
            let interval = dec.u64()?;
            if backoff.insert(wg, (cond, interval)).is_some() {
                return Err(CodecError::Invalid(format!(
                    "WG {wg} has two backoff ladders"
                )));
            }
        }
        self.backoff = backoff;
        self.sleeps = dec.u64()?;
        self.slept_cycles = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: false,
        }
    }

    fn with_ctx<R>(f: impl FnOnce(&mut PolicyCtx<'_>) -> R) -> R {
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 4,
        };
        f(&mut ctx)
    }

    #[test]
    fn backoff_doubles_to_cap() {
        let mut p = SleepBackoffPolicy::new(1000);
        with_ctx(|ctx| {
            let mut intervals = Vec::new();
            for _ in 0..6 {
                match p.on_sync_fail(ctx, &fail(0, 64, 1)) {
                    WaitDirective::SleepFor(n) => intervals.push(n),
                    other => panic!("{other:?}"),
                }
            }
            assert_eq!(intervals, vec![250, 500, 1000, 1000, 1000, 1000]);
        });
    }

    #[test]
    fn new_condition_resets_ladder() {
        let mut p = SleepBackoffPolicy::new(100_000);
        with_ctx(|ctx| {
            p.on_sync_fail(ctx, &fail(0, 64, 1));
            p.on_sync_fail(ctx, &fail(0, 64, 1));
            match p.on_sync_fail(ctx, &fail(0, 128, 1)) {
                WaitDirective::SleepFor(n) => assert_eq!(n, BACKOFF_BASE),
                other => panic!("{other:?}"),
            }
        });
    }

    #[test]
    fn per_wg_independent_ladders() {
        let mut p = SleepBackoffPolicy::new(100_000);
        with_ctx(|ctx| {
            p.on_sync_fail(ctx, &fail(0, 64, 1));
            p.on_sync_fail(ctx, &fail(0, 64, 1));
            match p.on_sync_fail(ctx, &fail(1, 64, 1)) {
                WaitDirective::SleepFor(n) => assert_eq!(n, BACKOFF_BASE),
                other => panic!("{other:?}"),
            }
        });
    }

    #[test]
    fn reports_counters() {
        let mut p = SleepBackoffPolicy::new(1000);
        with_ctx(|ctx| {
            p.on_sync_fail(ctx, &fail(0, 64, 1));
        });
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("sleep_backoff_sleeps"), Some(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        SleepBackoffPolicy::new(0);
    }
}
