//! Failure injection: a policy wrapper that perturbs resume notifications.
//!
//! AWG's liveness argument (§V.A) is that *every* waiting WG carries a
//! fallback timeout, so lost or misdirected SyncMon notifications degrade
//! performance, never forward progress. [`ChaosWrap`] makes that claim
//! testable: it deterministically perturbs every `n`-th wake the inner
//! policy issues — dropping, delaying, or duplicating it — emulating faulty
//! resume plumbing between the SyncMon, the dispatcher, and the CUs.
//! [`DropWakes`] is the historical drop-only alias.

use awg_gpu::{
    MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy, SyncCond, SyncFail,
    SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

/// What happens to each selected wake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// The wake is silently discarded (the lost-notification scenario).
    Drop,
    /// The wake is late by this many extra cycles.
    Delay(Cycle),
    /// The wake is delivered twice (the staleness tokens must absorb the
    /// duplicate).
    Duplicate,
}

impl ChaosMode {
    fn stat_name(&self) -> &'static str {
        match self {
            ChaosMode::Drop => "chaos_wakes_dropped",
            ChaosMode::Delay(_) => "chaos_wakes_delayed",
            ChaosMode::Duplicate => "chaos_wakes_duplicated",
        }
    }
}

/// Wraps a policy and perturbs every `n`-th wake it issues.
#[derive(Debug)]
pub struct ChaosWrap<P> {
    inner: P,
    every_nth: u64,
    mode: ChaosMode,
    seen: u64,
    perturbed: u64,
}

/// The drop-only wrapper, kept as a thin alias: `DropWakes::new(p, n)`
/// still drops every `n`-th wake.
pub type DropWakes<P> = ChaosWrap<P>;

impl<P: SchedPolicy> ChaosWrap<P> {
    /// Drops every `every_nth` wake (1 = drop all, 2 = drop half, …).
    ///
    /// # Panics
    ///
    /// Panics if `every_nth == 0`.
    pub fn new(inner: P, every_nth: u64) -> Self {
        Self::with_mode(inner, every_nth, ChaosMode::Drop)
    }

    /// Applies `mode` to every `every_nth` wake.
    ///
    /// # Panics
    ///
    /// Panics if `every_nth == 0`.
    pub fn with_mode(inner: P, every_nth: u64, mode: ChaosMode) -> Self {
        assert!(every_nth > 0, "perturbation period must be positive");
        ChaosWrap {
            inner,
            every_nth,
            mode,
            seen: 0,
            perturbed: 0,
        }
    }

    /// Number of wakes perturbed so far.
    pub fn perturbed(&self) -> u64 {
        self.perturbed
    }

    /// Number of wakes swallowed so far (the historical `DropWakes`
    /// accessor; counts perturbations of any mode).
    pub fn dropped(&self) -> u64 {
        self.perturbed
    }

    fn perturb(&mut self, wakes: Vec<Wake>) -> Vec<Wake> {
        let mut out = Vec::with_capacity(wakes.len());
        for w in wakes {
            self.seen += 1;
            if !self.seen.is_multiple_of(self.every_nth) {
                out.push(w);
                continue;
            }
            self.perturbed += 1;
            match self.mode {
                ChaosMode::Drop => {}
                ChaosMode::Delay(extra) => out.push(Wake::after(w.wg, w.delay + extra)),
                ChaosMode::Duplicate => {
                    out.push(w);
                    out.push(Wake::after(w.wg, w.delay + 13));
                }
            }
        }
        out
    }
}

impl<P: SchedPolicy> SchedPolicy for ChaosWrap<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn style(&self) -> SyncStyle {
        self.inner.style()
    }

    fn supports_wg_rescheduling(&self) -> bool {
        self.inner.supports_wg_rescheduling()
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        let directive = self.inner.on_sync_fail(ctx, fail);
        // Safety net stays intact: never forward an unbounded wait.
        match directive {
            WaitDirective::Wait {
                release,
                timeout: None,
            } => WaitDirective::Wait {
                release,
                timeout: Some(200_000),
            },
            other => other,
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        let wakes = self.inner.on_monitored_update(ctx, update);
        self.perturb(wakes)
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        cond: &SyncCond,
    ) -> TimeoutAction {
        // Timeouts are the liveness backstop: never perturbed.
        self.inner.on_wait_timeout(ctx, wg, cond)
    }

    fn on_wake_delivered(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId, cond: &SyncCond) {
        self.inner.on_wake_delivered(ctx, wg, cond);
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.inner.on_wg_finished(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        self.inner.cp_tick_period()
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        let wakes = self.inner.on_cp_tick(ctx);
        self.perturb(wakes)
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        // Faults target the inner policy's monitor hardware; the wakes it
        // issues in response travel the same faulty plumbing.
        let wakes = self.inner.on_fault(ctx, fault);
        self.perturb(wakes)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.inner.monitor_snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.inner.waiter_registry()
    }

    fn report(&self, stats: &mut Stats) {
        self.inner.report(stats);
        let c = stats.counter(self.mode.stat_name());
        stats.add(c, self.perturbed);
    }

    fn save_state(&self, enc: &mut Enc) {
        self.inner.save_state(enc);
        enc.u64(self.seen);
        enc.u64(self.perturbed);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.inner.load_state(dec)?;
        self.seen = dec.u64()?;
        self.perturbed = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::MonNrAllPolicy;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond {
                addr: 64,
                expected: 1,
            },
            observed: 0,
            via_wait_inst: false,
        }
    }

    fn update() -> MonitoredUpdate {
        MonitoredUpdate {
            addr: 64,
            old: 0,
            new: 1,
            wrote: true,
            monitored: true,
            by_wg: 9,
        }
    }

    fn four_waiters(p: &mut dyn SchedPolicy, l2: &mut L2, stats: &mut Stats) -> Vec<Wake> {
        let mut ctx = PolicyCtx {
            now: 0,
            l2,
            stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        for wg in 0..4 {
            p.on_sync_fail(&mut ctx, &fail(wg));
        }
        p.on_monitored_update(&mut ctx, &update())
    }

    #[test]
    fn drops_every_nth_wake() {
        let mut p = DropWakes::new(MonNrAllPolicy::new(), 2);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let wakes = four_waiters(&mut p, &mut l2, &mut stats);
        assert_eq!(wakes.len(), 2, "half of four wakes dropped");
        assert_eq!(p.dropped(), 2);
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("chaos_wakes_dropped"), Some(2));
    }

    #[test]
    fn delay_mode_keeps_every_wake_but_late() {
        let mut p = ChaosWrap::with_mode(MonNrAllPolicy::new(), 2, ChaosMode::Delay(1_000));
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let wakes = four_waiters(&mut p, &mut l2, &mut stats);
        assert_eq!(wakes.len(), 4, "delay must not lose wakes");
        assert_eq!(wakes.iter().filter(|w| w.delay >= 1_000).count(), 2);
        assert_eq!(p.perturbed(), 2);
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("chaos_wakes_delayed"), Some(2));
    }

    #[test]
    fn duplicate_mode_adds_copies() {
        let mut p = ChaosWrap::with_mode(MonNrAllPolicy::new(), 2, ChaosMode::Duplicate);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let wakes = four_waiters(&mut p, &mut l2, &mut stats);
        assert_eq!(wakes.len(), 6, "two of four wakes doubled");
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("chaos_wakes_duplicated"), Some(2));
    }

    #[test]
    fn unbounded_waits_get_a_safety_timeout() {
        // A hypothetical inner policy issuing Wait{timeout: None} must not
        // reach the machine without a backstop once wakes can be dropped.
        #[derive(Debug)]
        struct NoTimeout;
        impl SchedPolicy for NoTimeout {
            fn name(&self) -> &str {
                "NoTimeout"
            }
            fn style(&self) -> SyncStyle {
                SyncStyle::WaitingAtomic
            }
            fn on_sync_fail(&mut self, _: &mut PolicyCtx<'_>, _: &SyncFail) -> WaitDirective {
                WaitDirective::Wait {
                    release: false,
                    timeout: None,
                }
            }
            fn on_monitored_update(
                &mut self,
                _: &mut PolicyCtx<'_>,
                _: &MonitoredUpdate,
            ) -> Vec<Wake> {
                Vec::new()
            }
        }
        let mut p = DropWakes::new(NoTimeout, 1);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        match p.on_sync_fail(&mut ctx, &fail(0)) {
            WaitDirective::Wait { timeout, .. } => assert!(timeout.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forwards_faults_and_snapshots_to_inner() {
        let mut p = ChaosWrap::with_mode(MonNrAllPolicy::new(), 2, ChaosMode::Drop);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        for wg in 0..2 {
            p.on_sync_fail(&mut ctx, &fail(wg));
        }
        assert_eq!(p.monitor_snapshot().len(), 1, "inner entry visible");
        p.on_fault(&mut ctx, &PolicyFault::EvictConditions { count: 8 });
        assert!(p.monitor_snapshot().is_empty(), "eviction reached inner");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        DropWakes::new(MonNrAllPolicy::new(), 0);
    }
}
