//! Failure injection: a policy wrapper that drops resume notifications.
//!
//! AWG's liveness argument (§V.A) is that *every* waiting WG carries a
//! fallback timeout, so lost or misdirected SyncMon notifications degrade
//! performance, never forward progress. This wrapper makes that claim
//! testable: it deterministically swallows every `n`-th wake the inner
//! policy issues, emulating dropped resume messages between the SyncMon,
//! the dispatcher, and the CUs.

use awg_gpu::{
    MonitoredUpdate, PolicyCtx, SchedPolicy, SyncCond, SyncFail, SyncStyle, TimeoutAction,
    WaitDirective, Wake, WgId,
};
use awg_sim::{Cycle, Stats};

/// Wraps a policy and drops every `n`-th wake it issues.
#[derive(Debug)]
pub struct DropWakes<P> {
    inner: P,
    every_nth: u64,
    seen: u64,
    dropped: u64,
}

impl<P: SchedPolicy> DropWakes<P> {
    /// Drops every `every_nth` wake (1 = drop all, 2 = drop half, …).
    ///
    /// # Panics
    ///
    /// Panics if `every_nth == 0`.
    pub fn new(inner: P, every_nth: u64) -> Self {
        assert!(every_nth > 0, "drop period must be positive");
        DropWakes {
            inner,
            every_nth,
            seen: 0,
            dropped: 0,
        }
    }

    /// Number of wakes swallowed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn filter(&mut self, wakes: Vec<Wake>) -> Vec<Wake> {
        wakes
            .into_iter()
            .filter(|_| {
                self.seen += 1;
                if self.seen.is_multiple_of(self.every_nth) {
                    self.dropped += 1;
                    false
                } else {
                    true
                }
            })
            .collect()
    }
}

impl<P: SchedPolicy> SchedPolicy for DropWakes<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn style(&self) -> SyncStyle {
        self.inner.style()
    }

    fn supports_wg_rescheduling(&self) -> bool {
        self.inner.supports_wg_rescheduling()
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        let directive = self.inner.on_sync_fail(ctx, fail);
        // Safety net stays intact: never forward an unbounded wait.
        match directive {
            WaitDirective::Wait {
                release,
                timeout: None,
            } => WaitDirective::Wait {
                release,
                timeout: Some(200_000),
            },
            other => other,
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        let wakes = self.inner.on_monitored_update(ctx, update);
        self.filter(wakes)
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        cond: &SyncCond,
    ) -> TimeoutAction {
        // Timeouts are the liveness backstop: never dropped.
        self.inner.on_wait_timeout(ctx, wg, cond)
    }

    fn on_wake_delivered(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId, cond: &SyncCond) {
        self.inner.on_wake_delivered(ctx, wg, cond);
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.inner.on_wg_finished(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        self.inner.cp_tick_period()
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        let wakes = self.inner.on_cp_tick(ctx);
        self.filter(wakes)
    }

    fn report(&self, stats: &mut Stats) {
        self.inner.report(stats);
        let c = stats.counter("chaos_wakes_dropped");
        stats.add(c, self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::MonNrAllPolicy;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond {
                addr: 64,
                expected: 1,
            },
            observed: 0,
            via_wait_inst: false,
        }
    }

    #[test]
    fn drops_every_nth_wake() {
        let mut p = DropWakes::new(MonNrAllPolicy::new(), 2);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        for wg in 0..4 {
            p.on_sync_fail(&mut ctx, &fail(wg));
        }
        let wakes = p.on_monitored_update(
            &mut ctx,
            &MonitoredUpdate {
                addr: 64,
                old: 0,
                new: 1,
                wrote: true,
                monitored: true,
                by_wg: 9,
            },
        );
        assert_eq!(wakes.len(), 2, "half of four wakes dropped");
        assert_eq!(p.dropped(), 2);
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("chaos_wakes_dropped"), Some(2));
    }

    #[test]
    fn unbounded_waits_get_a_safety_timeout() {
        // A hypothetical inner policy issuing Wait{timeout: None} must not
        // reach the machine without a backstop once wakes can be dropped.
        #[derive(Debug)]
        struct NoTimeout;
        impl SchedPolicy for NoTimeout {
            fn name(&self) -> &str {
                "NoTimeout"
            }
            fn style(&self) -> SyncStyle {
                SyncStyle::WaitingAtomic
            }
            fn on_sync_fail(&mut self, _: &mut PolicyCtx<'_>, _: &SyncFail) -> WaitDirective {
                WaitDirective::Wait {
                    release: false,
                    timeout: None,
                }
            }
            fn on_monitored_update(
                &mut self,
                _: &mut PolicyCtx<'_>,
                _: &MonitoredUpdate,
            ) -> Vec<Wake> {
                Vec::new()
            }
        }
        let mut p = DropWakes::new(NoTimeout, 1);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        match p.on_sync_fail(&mut ctx, &fail(0)) {
            WaitDirective::Wait { timeout, .. } => assert!(timeout.is_some()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        DropWakes::new(MonNrAllPolicy::new(), 0);
    }
}
