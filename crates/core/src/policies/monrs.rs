//! MonRS-All: relaxed hardware support with *sporadic* notifications
//! (§IV.C.iii).
//!
//! The WG arms the SyncMon with a separate `wait` instruction; the
//! "simplistic SyncMon observes memory accesses and if a monitored address
//! is accessed it will notify corresponding waiting WGs to resume, without
//! checking their waiting condition". Every poll of a hot sync variable
//! therefore wakes every waiter — the source of the up-to-100× extra
//! dynamic atomics in Fig 9. The `wait` arming races with updates (Fig 10),
//! so waiting carries a fallback timeout.

use awg_gpu::{
    MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy, SyncCond, SyncFail,
    SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

use super::monitor::{MonitorCore, TrackOutcome};
use super::{DEFAULT_CP_TICK, DEFAULT_FALLBACK_TIMEOUT};

/// Sporadic-notification monitor, resume-all.
#[derive(Debug)]
pub struct MonRsAllPolicy {
    core: MonitorCore,
    fallback: Cycle,
    sporadic_wakes: u64,
}

impl MonRsAllPolicy {
    /// Creates the policy with the default fallback timeout.
    pub fn new() -> Self {
        Self::with_fallback(DEFAULT_FALLBACK_TIMEOUT)
    }

    /// Creates the policy with a custom fallback timeout.
    pub fn with_fallback(fallback: Cycle) -> Self {
        MonRsAllPolicy {
            core: MonitorCore::new(),
            fallback,
            sporadic_wakes: 0,
        }
    }
}

impl Default for MonRsAllPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for MonRsAllPolicy {
    fn name(&self) -> &str {
        "MonRS-All"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitInst
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        debug_assert!(fail.via_wait_inst, "MonRS expects wait-instruction arming");
        match self.core.track(ctx, fail.cond, fail.wg) {
            TrackOutcome::MesaRetry => WaitDirective::Retry,
            _ => WaitDirective::Wait {
                release: ctx.oversubscribed(),
                timeout: Some(self.fallback),
            },
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        // Sporadic: any access to a *monitored* address wakes every waiter
        // on it, values unchecked.
        if !update.monitored {
            return Vec::new();
        }
        let mut wakes = Vec::new();
        for cond in self.core.syncmon.conditions_on_addr(update.addr) {
            wakes.extend(self.core.wake_cached(ctx, &cond, usize::MAX));
        }
        self.sporadic_wakes += wakes.len() as u64;
        wakes
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.core.untrack(ctx, wg);
        TimeoutAction::Wake
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.core.untrack(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(DEFAULT_CP_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        self.core.cp_tick(ctx)
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        self.core.inject_fault(ctx, fault)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.core.snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.core.registry()
    }

    fn report(&self, stats: &mut Stats) {
        self.core.report("monrs", stats);
        let c = stats.counter("monrs_sporadic_wakes");
        stats.add(c, self.sporadic_wakes);
    }

    fn save_state(&self, enc: &mut Enc) {
        self.core.save(enc);
        enc.u64(self.sporadic_wakes);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.core.load(dec)?;
        self.sporadic_wakes = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn setup() -> (L2, Stats) {
        (L2::new(L2Config::isca2020()), Stats::new())
    }

    macro_rules! ctx {
        ($l2:expr, $stats:expr) => {
            PolicyCtx {
                now: 0,
                l2: &mut $l2,
                stats: &mut $stats,
                pending_wgs: 0,
                ready_wgs: 0,
                swapped_waiting_wgs: 0,
                total_wgs: 8,
            }
        };
    }

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: true,
        }
    }

    #[test]
    fn any_access_wakes_all_waiters() {
        let mut p = MonRsAllPolicy::new();
        let (mut l2, mut stats) = setup();
        let mut ctx = ctx!(l2, stats);
        p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
        p.on_sync_fail(&mut ctx, &fail(1, 64, 2));
        // A read-only access (wrote=false, value unchanged) still wakes both.
        let wakes = p.on_monitored_update(
            &mut ctx,
            &MonitoredUpdate {
                addr: 64,
                old: 0,
                new: 0,
                wrote: false,
                monitored: true,
                by_wg: 5,
            },
        );
        let mut wgs: Vec<WgId> = wakes.iter().map(|w| w.wg).collect();
        wgs.sort_unstable();
        assert_eq!(wgs, vec![0, 1]);
        assert!(!ctx.l2.is_monitored(64), "no waiters left");
    }

    #[test]
    fn waits_with_fallback_timeout() {
        let mut p = MonRsAllPolicy::with_fallback(7777);
        let (mut l2, mut stats) = setup();
        let mut ctx = ctx!(l2, stats);
        match p.on_sync_fail(&mut ctx, &fail(0, 64, 1)) {
            WaitDirective::Wait { release, timeout } => {
                assert!(!release);
                assert_eq!(timeout, Some(7777));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn timeout_untracks_and_wakes() {
        let mut p = MonRsAllPolicy::new();
        let (mut l2, mut stats) = setup();
        let mut ctx = ctx!(l2, stats);
        let f = fail(0, 64, 1);
        p.on_sync_fail(&mut ctx, &f);
        assert_eq!(p.on_wait_timeout(&mut ctx, 0, &f.cond), TimeoutAction::Wake);
        // After untracking, updates wake nobody.
        let wakes = p.on_monitored_update(
            &mut ctx,
            &MonitoredUpdate {
                addr: 64,
                old: 0,
                new: 1,
                wrote: true,
                monitored: true,
                by_wg: 5,
            },
        );
        assert!(wakes.is_empty());
    }
}
