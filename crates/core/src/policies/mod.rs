//! The paper's cooperative WG-scheduling policy family (§IV, Fig 6).
//!
//! | Policy | Instructions | Notification | Resume | Race-free? |
//! |---|---|---|---|---|
//! | Baseline (`awg_gpu::BusyWaitPolicy`) | plain atomics | — | — | n/a (deadlocks oversubscribed) |
//! | [`SleepBackoffPolicy`] | waiting atomics → `s_sleep` | — | timer | n/a (deadlocks oversubscribed) |
//! | [`TimeoutPolicy`] | waiting atomics | — | fixed timer | yes (timer) |
//! | [`MonRsAllPolicy`] | `wait` instruction | sporadic (any access) | all | **no** (Fig 10) |
//! | [`MonRAllPolicy`] | `wait` instruction | condition check on write | all | **no** (Fig 10) |
//! | [`MonNrAllPolicy`] | waiting atomics | condition check on write | all | yes |
//! | [`MonNrOnePolicy`] | waiting atomics | condition check on write | one | yes |
//! | [`AwgPolicy`] | waiting atomics | condition check on write | predicted | yes |
//! | [`MinResumePolicy`] | waiting atomics | oracle (peeks memory) | minimal | oracle |

mod awg;
pub mod chaos;
mod minresume;
mod monitor;
mod monnr;
mod monr;
mod monrs;
mod sleep;
mod timeout;

pub use awg::AwgPolicy;
pub use chaos::{ChaosMode, ChaosWrap, DropWakes};
pub use minresume::MinResumePolicy;
pub use monitor::MonitorCore;
pub use monnr::{MonNrAllPolicy, MonNrOnePolicy};
pub use monr::MonRAllPolicy;
pub use monrs::MonRsAllPolicy;
pub use sleep::SleepBackoffPolicy;
pub use timeout::TimeoutPolicy;

use awg_gpu::SchedPolicy;

/// Fallback timeout used by the monitor policies when a notification may
/// never arrive (racy `wait` instructions; MonNR-One leftover waiters).
pub const DEFAULT_FALLBACK_TIMEOUT: u64 = 50_000;

/// Default CP firmware tick period (Monitor Log draining, spilled-condition
/// checks).
pub const DEFAULT_CP_TICK: u64 = 10_000;

/// The progress guarantee a policy *claims*, in the vocabulary of
/// Sorensen et al., "Specifying and Testing GPU Workgroup Progress Models"
/// (arXiv 2109.06132).
///
/// This is the policy's contract surface: what its design promises, which
/// the conformance lab then tests against the observed behaviour under an
/// adversarial scheduler. The ladder is `Fair ⊐ LOBE ⊐ OBE`: fair progress
/// implies linear occupancy-bound execution, which implies plain
/// occupancy-bound execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProgressClaim {
    /// HSA occupancy-bound execution only: WGs that become resident keep
    /// making progress, but nothing forces a blocked resident WG to yield —
    /// oversubscribed cross-WG waits may deadlock.
    OccupancyBound,
    /// Linear occupancy-bound execution: additionally, WG `i` may rely on
    /// every WG `j < i` making progress (dispatch order is id-linear).
    LinearOccupancyBound,
    /// Fair: every WG eventually makes progress regardless of residency —
    /// the paper's independent-forward-progress guarantee.
    Fair,
}

impl ProgressClaim {
    /// Short display name used in the conformance matrix.
    pub fn label(&self) -> &'static str {
        match self {
            ProgressClaim::OccupancyBound => "OBE",
            ProgressClaim::LinearOccupancyBound => "LOBE",
            ProgressClaim::Fair => "Fair",
        }
    }
}

/// The members of the policy family, for harness sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Software busy-waiting (deadlocks when oversubscribed).
    Baseline,
    /// Exponential backoff with `s_sleep` (§IV.C.i), default 16k max.
    Sleep,
    /// Exponential backoff with a specific maximum interval (Fig 7 sweep).
    SleepMax(u64),
    /// Fixed-interval stall / context switch (§IV.C.ii), default 20k.
    Timeout,
    /// Fixed-interval with a specific interval (Fig 8 sweep).
    TimeoutInterval(u64),
    /// Sporadic monitor, resume all (§IV.C.iii).
    MonRsAll,
    /// Condition-checking monitor armed by `wait`, resume all (§IV.C.iv).
    MonRAll,
    /// Waiting atomics, resume all (§IV.D).
    MonNrAll,
    /// Waiting atomics, resume one (§IV.E).
    MonNrOne,
    /// The final design with prediction (§V).
    Awg,
    /// The Fig 9 oracle.
    MinResume,
}

impl PolicyKind {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Baseline => "Baseline".into(),
            PolicyKind::Sleep => "Sleep".into(),
            PolicyKind::SleepMax(m) => format!("Sleep-{}k", m / 1000),
            PolicyKind::Timeout => "Timeout".into(),
            PolicyKind::TimeoutInterval(i) => format!("Timeout-{}k", i / 1000),
            PolicyKind::MonRsAll => "MonRS-All".into(),
            PolicyKind::MonRAll => "MonR-All".into(),
            PolicyKind::MonNrAll => "MonNR-All".into(),
            PolicyKind::MonNrOne => "MonNR-One".into(),
            PolicyKind::Awg => "AWG".into(),
            PolicyKind::MinResume => "MinResume".into(),
        }
    }

    /// The progress model this policy's design claims to satisfy.
    ///
    /// Busy-waiting and sleep-backoff never yield a blocked WG's slot, so
    /// they claim only occupancy-bound execution; every design with
    /// WG-granularity rescheduling (a fallback timer guarantees eventual
    /// eviction even when notifications race or drop) claims fairness.
    pub fn progress_claim(&self) -> ProgressClaim {
        match self {
            PolicyKind::Baseline | PolicyKind::Sleep | PolicyKind::SleepMax(_) => {
                ProgressClaim::OccupancyBound
            }
            PolicyKind::Timeout
            | PolicyKind::TimeoutInterval(_)
            | PolicyKind::MonRsAll
            | PolicyKind::MonRAll
            | PolicyKind::MonNrAll
            | PolicyKind::MonNrOne
            | PolicyKind::Awg
            | PolicyKind::MinResume => ProgressClaim::Fair,
        }
    }
}

/// Builds a fresh policy instance.
pub fn build_policy(kind: PolicyKind) -> Box<dyn SchedPolicy> {
    match kind {
        PolicyKind::Baseline => Box::new(awg_gpu::BusyWaitPolicy::new()),
        PolicyKind::Sleep => Box::new(SleepBackoffPolicy::new(16_000)),
        PolicyKind::SleepMax(m) => Box::new(SleepBackoffPolicy::new(m)),
        PolicyKind::Timeout => Box::new(TimeoutPolicy::new(20_000)),
        PolicyKind::TimeoutInterval(i) => Box::new(TimeoutPolicy::new(i)),
        PolicyKind::MonRsAll => Box::new(MonRsAllPolicy::new()),
        PolicyKind::MonRAll => Box::new(MonRAllPolicy::new()),
        PolicyKind::MonNrAll => Box::new(MonNrAllPolicy::new()),
        PolicyKind::MonNrOne => Box::new(MonNrOnePolicy::new()),
        PolicyKind::Awg => Box::new(AwgPolicy::new()),
        PolicyKind::MinResume => Box::new(MinResumePolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_gpu::SyncStyle;

    #[test]
    fn labels_match_paper() {
        assert_eq!(PolicyKind::SleepMax(16_000).label(), "Sleep-16k");
        assert_eq!(PolicyKind::TimeoutInterval(50_000).label(), "Timeout-50k");
        assert_eq!(PolicyKind::Awg.label(), "AWG");
        assert_eq!(PolicyKind::MonRsAll.label(), "MonRS-All");
    }

    #[test]
    fn claims_follow_the_rescheduling_divide() {
        assert_eq!(
            PolicyKind::Baseline.progress_claim(),
            ProgressClaim::OccupancyBound
        );
        assert_eq!(
            PolicyKind::SleepMax(4_000).progress_claim(),
            ProgressClaim::OccupancyBound
        );
        for kind in [
            PolicyKind::Timeout,
            PolicyKind::MonRsAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
            PolicyKind::MinResume,
        ] {
            assert_eq!(kind.progress_claim(), ProgressClaim::Fair, "{kind:?}");
        }
        // The ladder is ordered: Fair ⊐ LOBE ⊐ OBE.
        assert!(ProgressClaim::Fair > ProgressClaim::LinearOccupancyBound);
        assert!(ProgressClaim::LinearOccupancyBound > ProgressClaim::OccupancyBound);
    }

    #[test]
    fn build_produces_expected_names_and_styles() {
        let cases = [
            (PolicyKind::Baseline, "Baseline", SyncStyle::Busy),
            (PolicyKind::Sleep, "Sleep", SyncStyle::WaitingAtomic),
            (PolicyKind::Timeout, "Timeout", SyncStyle::WaitingAtomic),
            (PolicyKind::MonRsAll, "MonRS-All", SyncStyle::WaitInst),
            (PolicyKind::MonRAll, "MonR-All", SyncStyle::WaitInst),
            (PolicyKind::MonNrAll, "MonNR-All", SyncStyle::WaitingAtomic),
            (PolicyKind::MonNrOne, "MonNR-One", SyncStyle::WaitingAtomic),
            (PolicyKind::Awg, "AWG", SyncStyle::WaitingAtomic),
            (PolicyKind::MinResume, "MinResume", SyncStyle::WaitingAtomic),
        ];
        for (kind, name, style) in cases {
            let p = build_policy(kind);
            assert_eq!(p.name(), name);
            assert_eq!(p.style(), style, "{name}");
        }
    }
}
