//! MonR-All: enhanced hardware support — the SyncMon checks waiting
//! conditions as sync variables are updated, resuming all waiters of a met
//! condition (§IV.C.iv).
//!
//! Arming still happens via the separate `wait` instruction, so the Fig 10
//! window of vulnerability remains: an update that lands between the
//! program's condition check and the arming is missed, and only the
//! fallback timeout preserves forward progress.

use awg_gpu::{
    MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy, SyncCond, SyncFail,
    SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

use super::monitor::{MonitorCore, TrackOutcome};
use super::{DEFAULT_CP_TICK, DEFAULT_FALLBACK_TIMEOUT};

/// Condition-checking monitor armed by `wait`, resume-all.
#[derive(Debug)]
pub struct MonRAllPolicy {
    core: MonitorCore,
    fallback: Cycle,
    met_wakes: u64,
}

impl MonRAllPolicy {
    /// Creates the policy with the default fallback timeout.
    pub fn new() -> Self {
        Self::with_fallback(DEFAULT_FALLBACK_TIMEOUT)
    }

    /// Creates the policy with a custom fallback timeout.
    pub fn with_fallback(fallback: Cycle) -> Self {
        MonRAllPolicy {
            core: MonitorCore::new(),
            fallback,
            met_wakes: 0,
        }
    }
}

impl Default for MonRAllPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for MonRAllPolicy {
    fn name(&self) -> &str {
        "MonR-All"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitInst
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        debug_assert!(fail.via_wait_inst, "MonR expects wait-instruction arming");
        match self.core.track(ctx, fail.cond, fail.wg) {
            TrackOutcome::MesaRetry => WaitDirective::Retry,
            _ => WaitDirective::Wait {
                release: ctx.oversubscribed(),
                timeout: Some(self.fallback),
            },
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        if !update.wrote || !update.monitored {
            return Vec::new();
        }
        let mut wakes = Vec::new();
        for cond in self.core.syncmon.conditions_met(update.addr, update.new) {
            wakes.extend(self.core.wake_cached(ctx, &cond, usize::MAX));
        }
        self.met_wakes += wakes.len() as u64;
        wakes
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.core.untrack(ctx, wg);
        TimeoutAction::Wake
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.core.untrack(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(DEFAULT_CP_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        self.core.cp_tick(ctx)
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        self.core.inject_fault(ctx, fault)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.core.snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.core.registry()
    }

    fn report(&self, stats: &mut Stats) {
        self.core.report("monr", stats);
        let c = stats.counter("monr_met_wakes");
        stats.add(c, self.met_wakes);
    }

    fn save_state(&self, enc: &mut Enc) {
        self.core.save(enc);
        enc.u64(self.met_wakes);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.core.load(dec)?;
        self.met_wakes = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: true,
        }
    }

    #[test]
    fn only_met_conditions_wake() {
        let mut p = MonRAllPolicy::new();
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
        p.on_sync_fail(&mut ctx, &fail(1, 64, 2));
        p.on_sync_fail(&mut ctx, &fail(2, 64, 2));

        // Read access: no wakes (unlike MonRS).
        let wakes = p.on_monitored_update(
            &mut ctx,
            &MonitoredUpdate {
                addr: 64,
                old: 0,
                new: 0,
                wrote: false,
                monitored: true,
                by_wg: 5,
            },
        );
        assert!(wakes.is_empty());

        // Write of 2 wakes exactly the two waiters expecting 2.
        let wakes = p.on_monitored_update(
            &mut ctx,
            &MonitoredUpdate {
                addr: 64,
                old: 0,
                new: 2,
                wrote: true,
                monitored: true,
                by_wg: 5,
            },
        );
        let mut wgs: Vec<WgId> = wakes.iter().map(|w| w.wg).collect();
        wgs.sort_unstable();
        assert_eq!(wgs, vec![1, 2]);
        assert!(ctx.l2.is_monitored(64), "waiter on value 1 remains");
    }
}
