//! AWG — Autonomous Work-Groups, the paper's final design (§IV.E, §V).
//!
//! AWG is MonNR plus two predictors:
//!
//! * **Resume-count prediction** (§V.A): per-address counting Bloom filters
//!   count unique updates. A met condition with multiple waiters resumes
//!   *all* of them when the address has seen more than two unique updates
//!   (global-barrier signature), and *one at a time* when it has seen at
//!   most two (mutex signature). Mispredictions are repaired by the stalled
//!   WGs' timeouts.
//! * **Stall-time prediction** (§IV.B): before context switching a waiting
//!   WG out, AWG stalls it for the predicted time to condition-met (an EWMA
//!   of observed met latencies per address) and only switches if the
//!   prediction expires unmet.

use std::collections::HashMap;

use awg_gpu::{
    MonitorEntrySnapshot, MonitoredUpdate, PolicyCtx, PolicyFault, SchedPolicy, SyncCond, SyncFail,
    SyncStyle, TimeoutAction, WaitDirective, WaiterRecord, Wake, WgId,
};
use awg_mem::Addr;
use awg_sim::{CodecError, Cycle, Dec, Enc, Ewma, Stats};

use super::monitor::{MonitorCore, TrackOutcome};
use super::{DEFAULT_CP_TICK, DEFAULT_FALLBACK_TIMEOUT};

/// Minimum predicted stall (floor for the EWMA-driven stall period).
const MIN_PREDICTED_STALL: Cycle = 500;

/// Default prediction before any condition-met sample exists.
const DEFAULT_PREDICTION: Cycle = 4_000;

fn save_ewma(enc: &mut Enc, ewma: &Ewma) {
    let (shift, value, samples) = ewma.raw();
    enc.u32(shift);
    enc.opt_u64(value);
    enc.u64(samples);
}

fn load_ewma(dec: &mut Dec<'_>) -> Result<Ewma, CodecError> {
    let shift = dec.u32()?;
    if shift > 32 {
        return Err(CodecError::Invalid(format!("EWMA shift {shift} too large")));
    }
    let value = dec.opt_u64()?;
    let samples = dec.u64()?;
    Ok(Ewma::from_raw(shift, value, samples))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Stalling for the predicted period; expiry escalates to a context
    /// switch.
    PredictStall,
    /// Final waiting phase; expiry wakes the WG (Mesa retry).
    Fallback,
}

/// The AWG policy.
#[derive(Debug)]
pub struct AwgPolicy {
    core: MonitorCore,
    fallback: Cycle,
    phases: HashMap<WgId, Phase>,
    met_latency: HashMap<Addr, Ewma>,
    global_latency: Ewma,
    resume_all_events: u64,
    resume_one_events: u64,
    escalations: u64,
    predict_enabled: bool,
    stall_predict_enabled: bool,
}

impl AwgPolicy {
    /// Creates AWG with the paper's configuration.
    pub fn new() -> Self {
        AwgPolicy {
            core: MonitorCore::new(),
            fallback: DEFAULT_FALLBACK_TIMEOUT,
            phases: HashMap::new(),
            met_latency: HashMap::new(),
            global_latency: Ewma::new(2),
            resume_all_events: 0,
            resume_one_events: 0,
            escalations: 0,
            predict_enabled: true,
            stall_predict_enabled: true,
        }
    }

    /// Ablation: disable the Bloom resume-count predictor (always resume
    /// all, i.e. degrade toward MonNR-All).
    pub fn without_resume_prediction(mut self) -> Self {
        self.predict_enabled = false;
        self
    }

    /// Ablation: disable stall-time prediction (context switch immediately
    /// when oversubscribed).
    pub fn without_stall_prediction(mut self) -> Self {
        self.stall_predict_enabled = false;
        self
    }

    /// Custom fallback timeout.
    pub fn with_fallback(mut self, fallback: Cycle) -> Self {
        assert!(fallback > 0, "fallback must be positive");
        self.fallback = fallback;
        self
    }

    /// CP condition-check order (the §V.A fairness study).
    pub fn with_check_order(mut self, order: crate::cp::CheckOrder) -> Self {
        self.core.set_check_order(order);
        self
    }

    /// Custom SyncMon geometry and Monitor Log capacity (virtualization
    /// studies: a tiny SyncMon forces registrations through the Monitor
    /// Log and the CP's slow path; a tiny log forces Mesa retries).
    pub fn with_monitor_config(
        mut self,
        config: crate::syncmon::SyncMonConfig,
        log_capacity: usize,
    ) -> Self {
        self.core = MonitorCore::with_config(config, log_capacity);
        self
    }

    fn predicted_stall(&self, addr: Addr) -> Cycle {
        let raw = self
            .met_latency
            .get(&addr)
            .and_then(|e| e.value())
            .or_else(|| self.global_latency.value())
            .unwrap_or(DEFAULT_PREDICTION);
        raw.clamp(MIN_PREDICTED_STALL, self.fallback)
    }

    fn record_met_latency(&mut self, addr: Addr, latency: Cycle) {
        self.met_latency.entry(addr).or_insert_with(|| Ewma::new(2));
        self.met_latency
            .get_mut(&addr)
            .expect("just inserted")
            .record(latency);
        self.global_latency.record(latency);
    }
}

impl Default for AwgPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedPolicy for AwgPolicy {
    fn name(&self) -> &str {
        "AWG"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective {
        debug_assert!(!fail.via_wait_inst, "AWG uses waiting atomics");
        match self.core.track(ctx, fail.cond, fail.wg) {
            TrackOutcome::MesaRetry => WaitDirective::Retry,
            _ => {
                if ctx.oversubscribed() {
                    if self.stall_predict_enabled {
                        // Stall for the predicted met latency first; the
                        // timeout escalates to a context switch (§IV.B).
                        self.phases.insert(fail.wg, Phase::PredictStall);
                        let predicted = self.predicted_stall(fail.cond.addr);
                        let d = ctx.stats.dist("awg_predicted_stall_cycles");
                        ctx.stats.sample(d, predicted);
                        WaitDirective::Wait {
                            release: false,
                            timeout: Some(predicted),
                        }
                    } else {
                        self.phases.insert(fail.wg, Phase::Fallback);
                        WaitDirective::Wait {
                            release: true,
                            timeout: Some(self.fallback),
                        }
                    }
                } else {
                    self.phases.insert(fail.wg, Phase::Fallback);
                    WaitDirective::Wait {
                        release: false,
                        timeout: Some(self.fallback),
                    }
                }
            }
        }
    }

    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        if !update.wrote {
            return Vec::new();
        }
        // The SyncMon sees every bank access, so the Bloom filters record
        // update values whether or not the line is currently monitored —
        // synchronized arrival bursts (barriers) would otherwise commit
        // before the first waiter registers and starve the predictor.
        let unique = self.core.syncmon.record_update(update.addr, update.new);
        let mut wakes = Vec::new();
        for cond in self.core.syncmon.conditions_met(update.addr, update.new) {
            if let Some(registered_at) = self.core.syncmon.registered_at(&cond) {
                let latency = ctx.now.saturating_sub(registered_at);
                self.record_met_latency(update.addr, latency);
                let h = ctx.stats.hist("awg_met_latency_cycles");
                ctx.stats.observe(h, latency);
            }
            let waiters = self.core.syncmon.waiter_count(&cond);
            let resume_all = !self.predict_enabled || waiters <= 1 || unique > 2;
            let limit = if resume_all { usize::MAX } else { 1 };
            if waiters > 1 {
                if resume_all {
                    self.resume_all_events += 1;
                } else {
                    self.resume_one_events += 1;
                }
            }
            let woken = self.core.wake_cached(ctx, &cond, limit);
            for w in &woken {
                self.phases.remove(&w.wg);
            }
            wakes.extend(woken);
        }
        wakes
    }

    fn on_wait_timeout(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        match self.phases.get(&wg) {
            Some(Phase::PredictStall) => {
                self.phases.insert(wg, Phase::Fallback);
                self.escalations += 1;
                TimeoutAction::Escalate {
                    release: ctx.oversubscribed(),
                    timeout: Some(self.fallback),
                }
            }
            _ => {
                self.phases.remove(&wg);
                self.core.untrack(ctx, wg);
                TimeoutAction::Wake
            }
        }
    }

    fn on_wake_delivered(&mut self, _ctx: &mut PolicyCtx<'_>, wg: WgId, _cond: &SyncCond) {
        self.phases.remove(&wg);
    }

    fn on_wg_finished(&mut self, ctx: &mut PolicyCtx<'_>, wg: WgId) {
        self.phases.remove(&wg);
        self.core.untrack(ctx, wg);
    }

    fn cp_tick_period(&self) -> Option<Cycle> {
        Some(DEFAULT_CP_TICK)
    }

    fn on_cp_tick(&mut self, ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        let wakes = self.core.cp_tick(ctx);
        for w in &wakes {
            self.phases.remove(&w.wg);
        }
        wakes
    }

    fn on_fault(&mut self, ctx: &mut PolicyCtx<'_>, fault: &PolicyFault) -> Vec<Wake> {
        self.core.inject_fault(ctx, fault)
    }

    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        self.core.snapshot()
    }

    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        self.core.registry()
    }

    fn save_state(&self, enc: &mut Enc) {
        self.core.save(enc);
        let mut phases: Vec<(WgId, Phase)> = self.phases.iter().map(|(&wg, &p)| (wg, p)).collect();
        phases.sort_unstable_by_key(|&(wg, _)| wg);
        enc.usize(phases.len());
        for (wg, phase) in phases {
            enc.u32(wg);
            enc.u8(match phase {
                Phase::PredictStall => 0,
                Phase::Fallback => 1,
            });
        }
        let mut latencies: Vec<Addr> = self.met_latency.keys().copied().collect();
        latencies.sort_unstable();
        enc.usize(latencies.len());
        for addr in latencies {
            enc.u64(addr);
            save_ewma(enc, &self.met_latency[&addr]);
        }
        save_ewma(enc, &self.global_latency);
        enc.u64(self.resume_all_events);
        enc.u64(self.resume_one_events);
        enc.u64(self.escalations);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.core.load(dec)?;
        let n = dec.count(5)?;
        let mut phases = HashMap::with_capacity(n);
        for _ in 0..n {
            let wg = dec.u32()?;
            let phase = match dec.u8()? {
                0 => Phase::PredictStall,
                1 => Phase::Fallback,
                t => return Err(CodecError::Invalid(format!("unknown AWG phase tag {t}"))),
            };
            if phases.insert(wg, phase).is_some() {
                return Err(CodecError::Invalid(format!("WG {wg} has two AWG phases")));
            }
        }
        self.phases = phases;
        let n = dec.count(21)?;
        let mut met_latency = HashMap::with_capacity(n);
        for _ in 0..n {
            let addr = dec.u64()?;
            if met_latency.insert(addr, load_ewma(dec)?).is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate latency predictor for {addr:#x}"
                )));
            }
        }
        self.met_latency = met_latency;
        self.global_latency = load_ewma(dec)?;
        self.resume_all_events = dec.u64()?;
        self.resume_one_events = dec.u64()?;
        self.escalations = dec.u64()?;
        Ok(())
    }

    fn report(&self, stats: &mut Stats) {
        self.core.report("awg", stats);
        for (name, value) in [
            ("awg_resume_all_events", self.resume_all_events),
            ("awg_resume_one_events", self.resume_one_events),
            ("awg_escalations", self.escalations),
            (
                "awg_predicted_stall_cycles",
                self.global_latency.value_or(DEFAULT_PREDICTION),
            ),
        ] {
            let c = stats.counter(name);
            stats.add(c, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId, addr: u64, expected: i64) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond { addr, expected },
            observed: 0,
            via_wait_inst: false,
        }
    }

    fn update(addr: u64, new: i64) -> MonitoredUpdate {
        MonitoredUpdate {
            addr,
            old: 0,
            new,
            wrote: true,
            monitored: true,
            by_wg: 99,
        }
    }

    macro_rules! with_ctx {
        ($ctx:ident, oversub = $over:expr, $body:block) => {{
            let mut l2 = L2::new(L2Config::isca2020());
            let mut stats = Stats::new();
            let mut $ctx = PolicyCtx {
                now: 0,
                l2: &mut l2,
                stats: &mut stats,
                pending_wgs: if $over { 4 } else { 0 },
                ready_wgs: 0,
                swapped_waiting_wgs: 0,
                total_wgs: 8,
            };
            $body
        }};
    }

    #[test]
    fn barrier_signature_resumes_all() {
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = false, {
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 4));
            }
            // Barrier arrivals: many unique counter values.
            for v in 1..=3 {
                assert!(p.on_monitored_update(&mut ctx, &update(64, v)).is_empty());
            }
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 4));
            assert_eq!(wakes.len(), 4, "barrier: resume all at once");
        });
    }

    #[test]
    fn mutex_signature_resumes_one() {
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = false, {
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 0));
            }
            // Mutex: at most two unique values (locked/unlocked).
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 0));
            assert_eq!(wakes.len(), 1, "mutex: resume one");
            assert_eq!(wakes[0].wg, 0);
        });
    }

    #[test]
    fn resume_prediction_ablation_always_resumes_all() {
        let mut p = AwgPolicy::new().without_resume_prediction();
        with_ctx!(ctx, oversub = false, {
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 0));
            }
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 0));
            assert_eq!(wakes.len(), 4);
        });
    }

    #[test]
    fn oversubscribed_stalls_then_escalates() {
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = true, {
            let d = p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
            match d {
                WaitDirective::Wait { release, timeout } => {
                    assert!(!release, "predicted stall keeps residency first");
                    assert!(timeout.is_some());
                }
                other => panic!("{other:?}"),
            }
            let cond = SyncCond {
                addr: 64,
                expected: 1,
            };
            match p.on_wait_timeout(&mut ctx, 0, &cond) {
                TimeoutAction::Escalate { release, timeout } => {
                    assert!(release, "escalation context switches");
                    assert!(timeout.is_some());
                }
                other => panic!("{other:?}"),
            }
            // Second expiry wakes (Mesa retry).
            assert_eq!(p.on_wait_timeout(&mut ctx, 0, &cond), TimeoutAction::Wake);
        });
    }

    #[test]
    fn stall_prediction_ablation_switches_immediately() {
        let mut p = AwgPolicy::new().without_stall_prediction();
        with_ctx!(ctx, oversub = true, {
            match p.on_sync_fail(&mut ctx, &fail(0, 64, 1)) {
                WaitDirective::Wait { release, .. } => assert!(release),
                other => panic!("{other:?}"),
            }
        });
    }

    #[test]
    fn met_latency_feeds_prediction() {
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = false, {
            p.on_sync_fail(&mut ctx, &fail(0, 64, 1));
            ctx.now = 9_000;
            p.on_monitored_update(&mut ctx, &update(64, 1));
        });
        assert_eq!(p.predicted_stall(64), 9_000.clamp(500, p.fallback));
        // Unknown addresses inherit the global EWMA.
        assert_eq!(p.predicted_stall(999_936), 9_000);
    }

    #[test]
    fn bloom_signature_persists_across_episodes() {
        // The predictor keeps an address's update signature between waiting
        // episodes: barrier waiters re-register in bursts that commit after
        // the arrivals, so a per-episode reset would starve the resume-all
        // prediction (observed as fallback-timeout stalls).
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = false, {
            p.on_sync_fail(&mut ctx, &fail(0, 64, 3));
            for v in 1..=3 {
                p.on_monitored_update(&mut ctx, &update(64, v));
            }
            assert_eq!(p.core.syncmon.unique_updates(64), 3, "signature kept");
            // Next episode: the burst re-registers and immediately benefits.
            for wg in 0..4 {
                p.on_sync_fail(&mut ctx, &fail(wg, 64, 4));
            }
            let wakes = p.on_monitored_update(&mut ctx, &update(64, 4));
            assert_eq!(wakes.len(), 4, "resume-all from persistent signature");
        });
    }

    #[test]
    fn unmonitored_updates_still_feed_the_bloom() {
        let mut p = AwgPolicy::new();
        with_ctx!(ctx, oversub = false, {
            // No waiter registered yet: the update is unmonitored but the
            // SyncMon (sitting at the L2 banks) records it anyway.
            let u = MonitoredUpdate {
                monitored: false,
                ..update(64, 7)
            };
            p.on_monitored_update(&mut ctx, &u);
            assert_eq!(p.core.syncmon.unique_updates(64), 1);
        });
    }
}
