//! The Timeout architecture (§IV.C.ii, Fig 8).
//!
//! "In the non-oversubscribed case, Timeout stalls a WG for a fixed
//! interval of time. … In the over-subscribed case, Timeout yields its
//! resources by context switching out for a fixed timeout interval." Simple
//! hardware, but "there is no single best static timeout interval".

use awg_gpu::{
    MonitoredUpdate, PolicyCtx, SchedPolicy, SyncCond, SyncFail, SyncStyle, TimeoutAction,
    WaitDirective, Wake, WgId,
};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

/// Fixed-interval waiting, context switching when oversubscribed.
#[derive(Debug, Clone)]
pub struct TimeoutPolicy {
    interval: Cycle,
    stalls: u64,
    switches: u64,
    timeouts: u64,
}

impl TimeoutPolicy {
    /// Creates the policy with the given interval (the Fig 8 `Timeout-Xk`
    /// parameter).
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: Cycle) -> Self {
        assert!(interval > 0, "interval must be positive");
        TimeoutPolicy {
            interval,
            stalls: 0,
            switches: 0,
            timeouts: 0,
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> Cycle {
        self.interval
    }
}

impl SchedPolicy for TimeoutPolicy {
    fn name(&self) -> &str {
        "Timeout"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::WaitingAtomic
    }

    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, _fail: &SyncFail) -> WaitDirective {
        let release = ctx.oversubscribed();
        if release {
            self.switches += 1;
        } else {
            self.stalls += 1;
        }
        WaitDirective::Wait {
            release,
            timeout: Some(self.interval),
        }
    }

    fn on_monitored_update(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        Vec::new()
    }

    fn on_wait_timeout(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        self.timeouts += 1;
        TimeoutAction::Wake
    }

    fn report(&self, stats: &mut Stats) {
        for (name, value) in [
            ("timeout_stalls", self.stalls),
            ("timeout_switches", self.switches),
            ("timeout_fires", self.timeouts),
        ] {
            let c = stats.counter(name);
            stats.add(c, value);
        }
    }

    fn save_state(&self, enc: &mut Enc) {
        enc.u64(self.stalls);
        enc.u64(self.switches);
        enc.u64(self.timeouts);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.stalls = dec.u64()?;
        self.switches = dec.u64()?;
        self.timeouts = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::{L2Config, L2};

    fn fail(wg: WgId) -> SyncFail {
        SyncFail {
            wg,
            cond: SyncCond {
                addr: 64,
                expected: 1,
            },
            observed: 0,
            via_wait_inst: false,
        }
    }

    #[test]
    fn stalls_when_not_oversubscribed() {
        let mut p = TimeoutPolicy::new(20_000);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 4,
        };
        assert_eq!(
            p.on_sync_fail(&mut ctx, &fail(0)),
            WaitDirective::Wait {
                release: false,
                timeout: Some(20_000)
            }
        );
    }

    #[test]
    fn switches_when_oversubscribed() {
        let mut p = TimeoutPolicy::new(10_000);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 3,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        assert_eq!(
            p.on_sync_fail(&mut ctx, &fail(0)),
            WaitDirective::Wait {
                release: true,
                timeout: Some(10_000)
            }
        );
    }

    #[test]
    fn timeout_always_wakes() {
        let mut p = TimeoutPolicy::new(10_000);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 4,
        };
        let cond = SyncCond {
            addr: 64,
            expected: 1,
        };
        assert_eq!(p.on_wait_timeout(&mut ctx, 0, &cond), TimeoutAction::Wake);
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("timeout_fires"), Some(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        TimeoutPolicy::new(0);
    }
}
