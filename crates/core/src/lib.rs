//! Autonomous Work-Groups (AWG) — the primary contribution of
//! *Independent Forward Progress of Work-groups* (ISCA 2020).
//!
//! This crate implements the paper's hardware and firmware:
//!
//! * [`SyncMon`] — the synchronization monitor added to the L2 (§V.A):
//!   a 4-way × 256-set condition cache (1024 waiting conditions), a
//!   512-entry waiting-WG list, and per-address counting Bloom filters
//!   (512 × 24 bits × 6 hashes) that predict how many waiters to resume,
//! * [`MonitorLog`] — the circular in-memory buffer that virtualizes the
//!   SyncMon beyond its hardware capacity, with Mesa-semantics overflow,
//! * [`Cp`] — the Command Processor firmware model that drains the Monitor
//!   Log, tracks context-switched WGs, and periodically checks spilled
//!   conditions (Fig 12's red "slow path"),
//! * the full **policy family** of §IV (Fig 6), each implementing
//!   [`awg_gpu::SchedPolicy`]:
//!   [`policies::SleepBackoffPolicy`] (exponential backoff with `s_sleep`),
//!   [`policies::TimeoutPolicy`] (fixed-interval stall/context-switch),
//!   [`policies::MonRsAllPolicy`] (sporadic notifications, resume-all),
//!   [`policies::MonRAllPolicy`] (condition-checking monitor, resume-all —
//!   still racy, Fig 10),
//!   [`policies::MonNrAllPolicy`] and [`policies::MonNrOnePolicy`]
//!   (waiting atomics, no race),
//!   [`policies::AwgPolicy`] (the final design: prediction-based resume
//!   count and stall-then-switch), and
//!   [`policies::MinResumePolicy`] (the Fig 9 oracle).
//!
//! # Example
//!
//! ```
//! use awg_core::policies::{PolicyKind, build_policy};
//!
//! let awg = build_policy(PolicyKind::Awg);
//! assert_eq!(awg.name(), "AWG");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod cp;
pub mod hash;
pub mod monitorlog;
pub mod policies;
pub mod syncmon;

pub use bloom::CountingBloom;
pub use cp::{CheckOrder, Cp, CpFootprint};
pub use monitorlog::{LogEntry, MonitorLog};
pub use syncmon::{RegisterOutcome, SyncMon, SyncMonConfig};
