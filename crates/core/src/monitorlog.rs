//! The Monitor Log: AWG's virtualization interface (§V.A).
//!
//! "The Monitor Log is a circular buffer residing in global memory that
//! stores entries composed of the monitored address, the waiting value, and
//! the waiting WG ID." The SyncMon appends entries when its on-chip
//! structures overflow; the CP drains them periodically. When the log
//! itself is full, the waiting atomic simply fails without entering the
//! waiting state and the WG retries (Mesa semantics) "until the CP
//! processes the Monitor Log and frees some entries".
//!
//! Functionally the entries are mirrored in host memory; every append and
//! drain is charged as real global-memory traffic against the simulated L2,
//! so the virtualization path has a timing cost.

use awg_gpu::{SyncCond, WgId};
use awg_mem::{Addr, L2};
use awg_sim::{CodecError, Cycle, Dec, Enc};

/// Base address of the Monitor Log's backing storage, above the context
/// save area.
pub const MONITOR_LOG_BASE: Addr = 1 << 41;

/// Bytes per log entry: monitored address (8) + waiting value (8) + WG id
/// with flags (8).
pub const LOG_ENTRY_BYTES: u64 = 24;

/// One spilled registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// The spilled waiting condition.
    pub cond: SyncCond,
    /// The waiting WG.
    pub wg: WgId,
}

/// The circular buffer plus its head/tail bookkeeping.
#[derive(Debug)]
pub struct MonitorLog {
    capacity: usize,
    entries: std::collections::VecDeque<LogEntry>,
    next_slot: u64,
    appends: u64,
    rejects: u64,
    high_water: usize,
}

impl MonitorLog {
    /// Creates an empty log holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "log capacity must be positive");
        MonitorLog {
            capacity,
            entries: std::collections::VecDeque::new(),
            next_slot: 0,
            appends: 0,
            rejects: 0,
            high_water: 0,
        }
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the log is at capacity (appends will be rejected).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Appends an entry at the tail, charging the write to global memory.
    /// Returns `false` (Mesa overflow) when the log is full.
    pub fn push(&mut self, l2: &mut L2, now: Cycle, entry: LogEntry) -> bool {
        if self.is_full() {
            self.rejects += 1;
            return false;
        }
        let slot = self.next_slot % self.capacity as u64;
        self.next_slot += 1;
        let base = MONITOR_LOG_BASE + slot * LOG_ENTRY_BYTES;
        // Three words of write-through traffic.
        l2.write(now, base, entry.cond.addr as i64);
        l2.write(now, base + 8, entry.cond.expected);
        l2.write(now, base + 16, entry.wg as i64);
        self.entries.push_back(entry);
        self.high_water = self.high_water.max(self.entries.len());
        self.appends += 1;
        true
    }

    /// Removes up to `max` entries from the head, charging the reads.
    pub fn drain(&mut self, l2: &mut L2, now: Cycle, max: usize) -> Vec<LogEntry> {
        let n = max.min(self.entries.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let e = self.entries.pop_front().expect("len checked");
            let slot = (self.next_slot - self.entries.len() as u64 - 1) % self.capacity as u64;
            let base = MONITOR_LOG_BASE + slot * LOG_ENTRY_BYTES;
            l2.read(now, base);
            out.push(e);
        }
        out
    }

    /// `(appends, Mesa rejections, high-water entries)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (self.appends, self.rejects, self.high_water)
    }

    /// Serializes the pending entries and bookkeeping (capacity is
    /// configuration).
    pub fn save(&self, enc: &mut Enc) {
        enc.usize(self.entries.len());
        for e in &self.entries {
            enc.u64(e.cond.addr);
            enc.i64(e.cond.expected);
            enc.u32(e.wg);
        }
        enc.u64(self.next_slot);
        enc.u64(self.appends);
        enc.u64(self.rejects);
        enc.usize(self.high_water);
    }

    /// Restores state saved by [`MonitorLog::save`] onto a log with matching
    /// capacity.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let n = dec.count(20)?;
        if n > self.capacity {
            return Err(CodecError::Invalid(format!(
                "{n} log entries exceed capacity {}",
                self.capacity
            )));
        }
        let mut entries = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            entries.push_back(LogEntry {
                cond: SyncCond {
                    addr: dec.u64()?,
                    expected: dec.i64()?,
                },
                wg: dec.u32()?,
            });
        }
        self.entries = entries;
        self.next_slot = dec.u64()?;
        self.appends = dec.u64()?;
        self.rejects = dec.u64()?;
        self.high_water = dec.usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::L2Config;

    fn l2() -> L2 {
        L2::new(L2Config::isca2020())
    }

    fn entry(wg: WgId) -> LogEntry {
        LogEntry {
            cond: SyncCond {
                addr: 64,
                expected: 1,
            },
            wg,
        }
    }

    #[test]
    fn push_drain_fifo() {
        let mut log = MonitorLog::new(4);
        let mut l2 = l2();
        assert!(log.push(&mut l2, 0, entry(0)));
        assert!(log.push(&mut l2, 0, entry(1)));
        assert_eq!(log.len(), 2);
        let drained = log.drain(&mut l2, 10, 10);
        assert_eq!(drained.iter().map(|e| e.wg).collect::<Vec<_>>(), vec![0, 1]);
        assert!(log.is_empty());
    }

    #[test]
    fn full_log_rejects_mesa_style() {
        let mut log = MonitorLog::new(2);
        let mut l2 = l2();
        assert!(log.push(&mut l2, 0, entry(0)));
        assert!(log.push(&mut l2, 0, entry(1)));
        assert!(log.is_full());
        assert!(!log.push(&mut l2, 0, entry(2)));
        let (appends, rejects, high) = log.stats();
        assert_eq!((appends, rejects, high), (2, 1, 2));
        // Draining frees capacity again.
        log.drain(&mut l2, 5, 1);
        assert!(log.push(&mut l2, 5, entry(2)));
    }

    #[test]
    fn traffic_is_charged() {
        let mut log = MonitorLog::new(8);
        let mut l2 = l2();
        let (_, _, writes_before) = l2.op_counts();
        log.push(&mut l2, 0, entry(0));
        let (_, _, writes_after) = l2.op_counts();
        assert_eq!(writes_after - writes_before, 3);
        let (_, reads_before, _) = l2.op_counts();
        log.drain(&mut l2, 1, 1);
        let (_, reads_after, _) = l2.op_counts();
        assert_eq!(reads_after - reads_before, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        MonitorLog::new(0);
    }
}

#[cfg(test)]
mod wraparound_tests {
    use super::*;
    use awg_mem::L2Config;

    #[test]
    fn circular_buffer_survives_many_wraps() {
        let mut log = MonitorLog::new(3);
        let mut l2 = L2::new(L2Config::isca2020());
        let mut next_wg = 0u32;
        let mut expected_head = 0u32;
        for round in 0..50 {
            // Fill to capacity, drain a varying amount, FIFO must hold.
            while !log.is_full() {
                log.push(
                    &mut l2,
                    round,
                    LogEntry {
                        cond: SyncCond {
                            addr: 64,
                            expected: 1,
                        },
                        wg: next_wg,
                    },
                );
                next_wg += 1;
            }
            let take = 1 + (round as usize % 3);
            for e in log.drain(&mut l2, round, take) {
                assert_eq!(e.wg, expected_head, "round {round}");
                expected_head += 1;
            }
        }
        assert!(next_wg > 50, "the buffer cycled many times");
    }
}
