//! The Command Processor firmware model (§V.A–B).
//!
//! The CP is "not on the critical path": it handles the slow operations —
//! draining the Monitor Log into "a more look-up efficient data structure",
//! periodically checking the waiting conditions of spilled sync variables
//! with timed global-memory reads, and tracking context-switched WGs. Its
//! in-memory data structures are the quantities Fig 13 sizes.

use std::collections::HashMap;

use awg_gpu::{SyncCond, WgId};
use awg_mem::{Addr, L2};
use awg_sim::{CodecError, Cycle, Dec, Enc};

use crate::monitorlog::LogEntry;

/// The order the CP visits tracked addresses during its periodic condition
/// checks. The paper notes that "the Monitor Log may contain younger
/// waiting conditions than the SyncMon Cache. This can lead to fairness
/// issues that can be addressed with different replacement policies. We
/// leave this study for future work" (§V.A) — this knob is that study's
/// handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckOrder {
    /// Deterministic address order (cheapest firmware loop).
    #[default]
    AddressSorted,
    /// Oldest spilled registration first (age fairness).
    OldestFirst,
}

/// Bytes per CP waiting-condition record (address + value).
pub const COND_ENTRY_BYTES: u64 = 16;
/// Bytes per monitored-address record.
pub const ADDR_ENTRY_BYTES: u64 = 8;
/// Bytes per waiting-WG record (id + state).
pub const WG_ENTRY_BYTES: u64 = 8;
/// Bytes per monitor-table row (condition + waiter-list head).
pub const TABLE_ENTRY_BYTES: u64 = 24;

/// Sizes of the CP's scheduling data structures (Fig 13), in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpFootprint {
    /// Waiting-condition records.
    pub waiting_conditions: u64,
    /// Monitored-address records.
    pub monitored_addresses: u64,
    /// Waiting-WG records.
    pub waiting_wgs: u64,
    /// The look-up-efficient monitor table.
    pub monitor_table: u64,
}

impl CpFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.waiting_conditions + self.monitored_addresses + self.waiting_wgs + self.monitor_table
    }

    /// Total in KB.
    pub fn total_kb(&self) -> f64 {
        self.total() as f64 / 1024.0
    }
}

/// The CP's spilled-condition tracker.
#[derive(Debug, Default)]
pub struct Cp {
    /// Spilled waiters grouped by address: `addr -> [(expected, wg, seq)]`.
    waiting: HashMap<Addr, Vec<(i64, WgId, u64)>>,
    waiting_count: usize,
    next_seq: u64,
    order: CheckOrder,
    max_conditions: usize,
    max_addresses: usize,
    max_wgs: usize,
    drained: u64,
    checks: u64,
}

impl Cp {
    /// Creates an idle CP with the default (address-sorted) check order.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a CP with an explicit condition-check order.
    pub fn with_order(order: CheckOrder) -> Self {
        Cp {
            order,
            ..Self::default()
        }
    }

    /// Changes the condition-check order (takes effect on the next tick).
    pub fn set_order(&mut self, order: CheckOrder) {
        self.order = order;
    }

    /// Absorbs drained Monitor Log entries into the monitor table.
    pub fn absorb(&mut self, entries: Vec<LogEntry>) {
        for e in entries {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.waiting
                .entry(e.cond.addr)
                .or_default()
                .push((e.cond.expected, e.wg, seq));
            self.waiting_count += 1;
            self.drained += 1;
        }
        self.update_high_water();
    }

    fn update_high_water(&mut self) {
        self.max_addresses = self.max_addresses.max(self.waiting.len());
        self.max_wgs = self.max_wgs.max(self.waiting_count);
        let conds: usize = self
            .waiting
            .values()
            .map(|v| {
                let mut exp: Vec<i64> = v.iter().map(|(e, _, _)| *e).collect();
                exp.sort_unstable();
                exp.dedup();
                exp.len()
            })
            .sum();
        self.max_conditions = self.max_conditions.max(conds);
    }

    /// Number of spilled waiters currently tracked.
    pub fn tracked_waiters(&self) -> usize {
        self.waiting_count
    }

    /// Periodically checks spilled conditions: one timed read per tracked
    /// address, returning the WGs whose condition now holds (they are
    /// removed from the table). The visit order is deterministic and
    /// governed by [`CheckOrder`]; with `OldestFirst` the met waiters are
    /// additionally released in spill order, so the oldest spilled WG is
    /// never overtaken by a younger one on the same tick.
    pub fn check_conditions(&mut self, l2: &mut L2, now: Cycle) -> Vec<(SyncCond, WgId)> {
        let mut addrs: Vec<(Addr, u64)> = self
            .waiting
            .iter()
            .map(|(&a, v)| {
                let oldest = v.iter().map(|&(_, _, s)| s).min().unwrap_or(u64::MAX);
                (a, oldest)
            })
            .collect();
        match self.order {
            CheckOrder::AddressSorted => addrs.sort_unstable_by_key(|&(a, _)| a),
            CheckOrder::OldestFirst => addrs.sort_unstable_by_key(|&(a, s)| (s, a)),
        }
        let mut met = Vec::new();
        for (addr, _) in addrs {
            self.checks += 1;
            let (value, _) = l2.read(now, addr);
            let entry = self.waiting.get_mut(&addr).expect("address tracked");
            let mut i = 0;
            while i < entry.len() {
                if entry[i].0 == value {
                    let (expected, wg, seq) = entry.swap_remove(i);
                    self.waiting_count -= 1;
                    met.push((SyncCond { addr, expected }, wg, seq));
                } else {
                    i += 1;
                }
            }
            if entry.is_empty() {
                self.waiting.remove(&addr);
            }
        }
        if self.order == CheckOrder::OldestFirst {
            met.sort_unstable_by_key(|&(_, _, seq)| seq);
        }
        met.into_iter().map(|(c, wg, _)| (c, wg)).collect()
    }

    /// Removes every registration of `wg` (it finished or was woken by
    /// another path). Returns how many were removed.
    pub fn remove_wg(&mut self, wg: WgId) -> usize {
        let mut removed = 0;
        self.waiting.retain(|_, v| {
            let before = v.len();
            v.retain(|&(_, w, _)| w != wg);
            removed += before - v.len();
            !v.is_empty()
        });
        self.waiting_count -= removed;
        removed
    }

    /// High-water footprint of the CP's data structures (Fig 13).
    pub fn footprint(&self) -> CpFootprint {
        CpFootprint {
            waiting_conditions: self.max_conditions as u64 * COND_ENTRY_BYTES,
            monitored_addresses: self.max_addresses as u64 * ADDR_ENTRY_BYTES,
            waiting_wgs: self.max_wgs as u64 * WG_ENTRY_BYTES,
            monitor_table: self.max_conditions as u64 * TABLE_ENTRY_BYTES,
        }
    }

    /// `(entries drained from the log, condition checks performed)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.drained, self.checks)
    }

    /// Serializes the monitor table and counters. Addresses are written in
    /// sorted order for a canonical encoding; each address's waiter list is
    /// written verbatim (`check_conditions` uses `swap_remove`, so the
    /// in-list order is part of the machine state). The check order is
    /// configuration and is not written.
    pub fn save(&self, enc: &mut Enc) {
        let mut addrs: Vec<Addr> = self.waiting.keys().copied().collect();
        addrs.sort_unstable();
        enc.usize(addrs.len());
        for addr in addrs {
            enc.u64(addr);
            let list = &self.waiting[&addr];
            enc.usize(list.len());
            for &(expected, wg, seq) in list {
                enc.i64(expected);
                enc.u32(wg);
                enc.u64(seq);
            }
        }
        enc.u64(self.next_seq);
        enc.usize(self.max_conditions);
        enc.usize(self.max_addresses);
        enc.usize(self.max_wgs);
        enc.u64(self.drained);
        enc.u64(self.checks);
    }

    /// Restores state saved by [`Cp::save`].
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let n = dec.count(16)?;
        let mut waiting: HashMap<Addr, Vec<(i64, WgId, u64)>> = HashMap::with_capacity(n);
        let mut count = 0usize;
        for _ in 0..n {
            let addr = dec.u64()?;
            let m = dec.count(20)?;
            if m == 0 {
                return Err(CodecError::Invalid(format!(
                    "CP table entry for {addr:#x} is empty"
                )));
            }
            let mut list = Vec::with_capacity(m);
            for _ in 0..m {
                list.push((dec.i64()?, dec.u32()?, dec.u64()?));
            }
            count += m;
            if waiting.insert(addr, list).is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate CP table entry {addr:#x}"
                )));
            }
        }
        self.waiting = waiting;
        self.waiting_count = count;
        self.next_seq = dec.u64()?;
        self.max_conditions = dec.usize()?;
        self.max_addresses = dec.usize()?;
        self.max_wgs = dec.usize()?;
        self.drained = dec.u64()?;
        self.checks = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::L2Config;

    #[test]
    fn oldest_first_releases_in_spill_order() {
        let mut cp = Cp::with_order(CheckOrder::OldestFirst);
        let mut l2 = L2::new(L2Config::isca2020());
        // Spill order: wg 5 on a high address first, then wg 1 on a low one.
        cp.absorb(vec![entry(0x2000, 1, 5), entry(0x1000, 1, 1)]);
        l2.backing_mut().store(0x1000, 1);
        l2.backing_mut().store(0x2000, 1);
        let met = cp.check_conditions(&mut l2, 0);
        let wgs: Vec<WgId> = met.iter().map(|m| m.1).collect();
        assert_eq!(wgs, vec![5, 1], "oldest spill first, not lowest address");

        // Address-sorted visits 0x1000 first.
        let mut cp = Cp::new();
        cp.absorb(vec![entry(0x2000, 1, 5), entry(0x1000, 1, 1)]);
        let met = cp.check_conditions(&mut l2, 0);
        let wgs: Vec<WgId> = met.iter().map(|m| m.1).collect();
        assert_eq!(wgs, vec![1, 5]);
    }

    fn entry(addr: Addr, expected: i64, wg: WgId) -> LogEntry {
        LogEntry {
            cond: SyncCond { addr, expected },
            wg,
        }
    }

    #[test]
    fn absorb_and_check() {
        let mut cp = Cp::new();
        let mut l2 = L2::new(L2Config::isca2020());
        cp.absorb(vec![entry(64, 1, 0), entry(64, 2, 1), entry(128, 1, 2)]);
        assert_eq!(cp.tracked_waiters(), 3);

        l2.backing_mut().store(64, 1);
        let met = cp.check_conditions(&mut l2, 1000);
        assert_eq!(met.len(), 1);
        assert_eq!(met[0].1, 0);
        assert_eq!(cp.tracked_waiters(), 2);

        l2.backing_mut().store(64, 2);
        l2.backing_mut().store(128, 1);
        let met = cp.check_conditions(&mut l2, 2000);
        let mut wgs: Vec<WgId> = met.iter().map(|m| m.1).collect();
        wgs.sort_unstable();
        assert_eq!(wgs, vec![1, 2]);
        assert_eq!(cp.tracked_waiters(), 0);
    }

    #[test]
    fn checks_cost_memory_reads() {
        let mut cp = Cp::new();
        let mut l2 = L2::new(L2Config::isca2020());
        cp.absorb(vec![entry(64, 1, 0), entry(128, 5, 1)]);
        let (_, reads_before, _) = l2.op_counts();
        cp.check_conditions(&mut l2, 0);
        let (_, reads_after, _) = l2.op_counts();
        assert_eq!(reads_after - reads_before, 2, "one read per address");
    }

    #[test]
    fn remove_wg_clears_registrations() {
        let mut cp = Cp::new();
        cp.absorb(vec![entry(64, 1, 7), entry(128, 2, 7), entry(128, 2, 8)]);
        assert_eq!(cp.remove_wg(7), 2);
        assert_eq!(cp.tracked_waiters(), 1);
        assert_eq!(cp.remove_wg(7), 0);
    }

    #[test]
    fn footprint_uses_high_water() {
        let mut cp = Cp::new();
        cp.absorb(vec![entry(64, 1, 0), entry(64, 1, 1), entry(128, 2, 2)]);
        let mut l2 = L2::new(L2Config::isca2020());
        l2.backing_mut().store(64, 1);
        l2.backing_mut().store(128, 2);
        cp.check_conditions(&mut l2, 0);
        assert_eq!(cp.tracked_waiters(), 0);
        let f = cp.footprint();
        // High-water: 2 conditions, 2 addresses, 3 WGs.
        assert_eq!(f.waiting_conditions, 2 * COND_ENTRY_BYTES);
        assert_eq!(f.monitored_addresses, 2 * ADDR_ENTRY_BYTES);
        assert_eq!(f.waiting_wgs, 3 * WG_ENTRY_BYTES);
        assert_eq!(f.monitor_table, 2 * TABLE_ENTRY_BYTES);
        assert!(f.total_kb() > 0.0);
    }
}
