//! Counting Bloom filters for AWG's resume-count prediction.
//!
//! "The prediction mechanism counts the number of waiting WGs and uses one
//! counting Bloom filter per monitored address to count the number \[of\]
//! unique updates to the associated address" (§V.A). Each filter stores
//! 24 bits and uses 6 hash functions (§V.C), giving a ≈2.1 % false-positive
//! probability at the occupancies the benchmarks produce.

use awg_sim::{CodecError, Dec, Enc};

use crate::hash::UniversalHash;

/// Default filter width in bits (§V.C).
pub const BLOOM_BITS: usize = 24;

/// Default number of hash functions (§V.C).
pub const BLOOM_HASHES: usize = 6;

/// A small Bloom filter that counts *unique* values inserted into it.
///
/// An insert whose bits are already all set is considered a duplicate (this
/// is where the false-positive probability lives); otherwise the unique
/// counter increments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingBloom {
    bits: u32,
    nbits: u32,
    hashes: [UniversalHash; BLOOM_HASHES],
    unique: u32,
}

impl CountingBloom {
    /// Creates an empty filter with the paper's geometry.
    pub fn new() -> Self {
        Self::with_bits(BLOOM_BITS as u32)
    }

    /// Creates an empty filter with a custom width (capacity studies).
    ///
    /// # Panics
    ///
    /// Panics if `nbits` is zero or exceeds 32.
    pub fn with_bits(nbits: u32) -> Self {
        assert!((1..=32).contains(&nbits), "width must be 1..=32 bits");
        CountingBloom {
            bits: 0,
            nbits,
            hashes: std::array::from_fn(|i| UniversalHash::nth(i as u64 + 101)),
            unique: 0,
        }
    }

    /// Inserts `value`; returns `true` when it was (probably) new.
    pub fn insert(&mut self, value: i64) -> bool {
        let mut mask = 0u32;
        for h in &self.hashes {
            mask |= 1 << h.hash(value as u64, self.nbits as u64);
        }
        let novel = (self.bits & mask) != mask;
        self.bits |= mask;
        if novel {
            self.unique += 1;
        }
        novel
    }

    /// Whether `value` has (probably) been inserted.
    pub fn contains(&self, value: i64) -> bool {
        let mut mask = 0u32;
        for h in &self.hashes {
            mask |= 1 << h.hash(value as u64, self.nbits as u64);
        }
        (self.bits & mask) == mask
    }

    /// Number of unique values observed (modulo false positives).
    pub fn unique_count(&self) -> u32 {
        self.unique
    }

    /// Clears the filter ("once a condition has been met, all waiting WGs
    /// have resumed, and the address is not monitored, the associated Bloom
    /// filter is reset", §V.A).
    pub fn reset(&mut self) {
        self.bits = 0;
        self.unique = 0;
    }

    /// Whether no value has been inserted since the last reset.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Serializes the mutable filter state (geometry and hash functions are
    /// configuration, rebuilt by the constructor).
    pub fn save(&self, enc: &mut Enc) {
        enc.u32(self.bits);
        enc.u32(self.unique);
    }

    /// Restores filter state saved by [`CountingBloom::save`] onto a filter
    /// with matching geometry.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let bits = dec.u32()?;
        if self.nbits < 32 && bits >> self.nbits != 0 {
            return Err(CodecError::Invalid(format!(
                "bloom bits 0x{bits:x} exceed {}-bit filter",
                self.nbits
            )));
        }
        self.bits = bits;
        self.unique = dec.u32()?;
        Ok(())
    }
}

impl Default for CountingBloom {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_unique_insertions() {
        let mut b = CountingBloom::new();
        assert!(b.insert(1));
        assert!(b.insert(2));
        assert!(!b.insert(1), "duplicate must not count");
        assert_eq!(b.unique_count(), 2);
    }

    #[test]
    fn contains_after_insert() {
        let mut b = CountingBloom::new();
        b.insert(-5);
        assert!(b.contains(-5));
    }

    #[test]
    fn reset_clears() {
        let mut b = CountingBloom::new();
        b.insert(7);
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.unique_count(), 0);
        assert!(!b.contains(7) || b.is_empty());
    }

    #[test]
    fn false_positive_rate_is_small() {
        // Insert the values barriers/mutexes actually produce (a handful),
        // then probe many others.
        let mut b = CountingBloom::new();
        for v in 0..3 {
            b.insert(v);
        }
        let fp = (1000..4000).filter(|&v| b.contains(v)).count();
        let rate = fp as f64 / 3000.0;
        assert!(rate < 0.10, "false positive rate {rate}");
    }

    #[test]
    fn barrier_vs_mutex_signature() {
        // A sense-reversal barrier address sees many unique arrivals
        // (counter values); a ticket-lock release slot sees {-1, 1}.
        let mut barrier = CountingBloom::new();
        for arrival in 1..=8 {
            barrier.insert(arrival);
        }
        let mut mutex = CountingBloom::new();
        mutex.insert(1);
        mutex.insert(-1);
        assert!(barrier.unique_count() > 2, "barrier looks multi-update");
        assert!(mutex.unique_count() <= 2, "mutex looks two-update");
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_rejected() {
        CountingBloom::with_bits(0);
    }
}
