//! Universal hashing (Carter–Wegman), as the paper specifies for the
//! SyncMon condition cache and Bloom filters (§V.C, citing \[63\]).

/// A member of a universal family of hash functions over `u64`.
///
/// `h(x) = ((a·x + b) mod p) mod m` with `p` a Mersenne prime (2⁶¹ − 1) and
/// odd `a`; different `(a, b)` pairs give independent functions, which the
/// Bloom filters need six of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniversalHash {
    a: u64,
    b: u64,
}

const P: u128 = (1u128 << 61) - 1;

impl UniversalHash {
    /// Creates the `i`-th member of the family (deterministic per index).
    pub fn nth(i: u64) -> Self {
        // Fixed, well-mixed parameters derived via SplitMix64 from the index.
        let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        UniversalHash {
            a: next() | 1,
            b: next(),
        }
    }

    /// Hashes `x` into `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn hash(&self, x: u64, m: u64) -> u64 {
        assert!(m > 0, "range must be positive");
        let v = (self.a as u128 * x as u128 + self.b as u128) % P;
        (v % m as u128) as u64
    }
}

/// The paper's condition-cache key: "the address is shifted left with log of
/// number of cache entries, after subtracting log of cacheline size, and
/// bitwise ORed with the waiting value. The result is further hashed with a
/// universal hash function" (§V.C).
pub fn condition_key(addr: u64, value: i64, cache_entries: u64, line_bytes: u64) -> u64 {
    let shift = cache_entries.trailing_zeros();
    let line_shift = line_bytes.trailing_zeros();
    ((addr >> line_shift) << shift) | (value as u64 & (cache_entries - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let h1 = UniversalHash::nth(3);
        let h2 = UniversalHash::nth(3);
        assert_eq!(h1.hash(12345, 256), h2.hash(12345, 256));
    }

    #[test]
    fn different_indices_differ() {
        let h1 = UniversalHash::nth(0);
        let h2 = UniversalHash::nth(1);
        let collisions = (0..512u64)
            .filter(|&x| h1.hash(x, 1024) == h2.hash(x, 1024))
            .count();
        assert!(collisions < 20, "families too correlated: {collisions}");
    }

    #[test]
    fn output_in_range() {
        let h = UniversalHash::nth(5);
        for x in 0..1000u64 {
            assert!(h.hash(x.wrapping_mul(64), 256) < 256);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = UniversalHash::nth(7);
        let mut buckets = [0u32; 16];
        for x in 0..16000u64 {
            buckets[h.hash(x * 64 + 7, 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..=1300).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn condition_key_mixes_addr_and_value() {
        let k1 = condition_key(0x1000, 1, 1024, 64);
        let k2 = condition_key(0x1000, 2, 1024, 64);
        let k3 = condition_key(0x1040, 1, 1024, 64);
        assert_ne!(k1, k2, "value must affect the key");
        assert_ne!(k1, k3, "line address must affect the key");
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_panics() {
        UniversalHash::nth(0).hash(1, 0);
    }
}
