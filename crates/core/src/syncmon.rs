//! The Synchronization Monitor (SyncMon) added to the GPU L2 (§V.A, Fig 12).
//!
//! The SyncMon caches *waiting conditions* — `(sync variable address,
//! waiting value)` pairs — in a 4-way, 256-set condition cache, and the WGs
//! waiting on each condition in a 512-entry waiting-WG list addressed by
//! per-condition head/tail pointers. A bank of counting Bloom filters
//! (one per monitored address, hash-indexed) records how many *unique*
//! values have been written to each address, which AWG's resume predictor
//! consumes. When either structure is full, registrations spill to the
//! [`crate::MonitorLog`].

use std::collections::HashMap;

use awg_gpu::{SyncCond, WgId};
use awg_mem::Addr;
use awg_sim::{CodecError, Dec, Enc};

use crate::bloom::CountingBloom;
use crate::hash::{condition_key, UniversalHash};

/// SyncMon geometry (§V.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncMonConfig {
    /// Condition-cache sets.
    pub sets: usize,
    /// Condition-cache associativity.
    pub ways: usize,
    /// Waiting-WG list capacity.
    pub waiter_slots: usize,
    /// Number of counting Bloom filters.
    pub bloom_filters: usize,
}

impl SyncMonConfig {
    /// The paper's configuration: 4-way × 256 sets = 1024 conditions,
    /// 512 waiting-WG slots, 512 Bloom filters.
    pub fn isca2020() -> Self {
        SyncMonConfig {
            sets: 256,
            ways: 4,
            waiter_slots: 512,
            bloom_filters: 512,
        }
    }

    /// Total condition capacity.
    pub fn condition_capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Hardware size of the condition cache + waiting-WG list in bits, as
    /// §V.C accounts it (each condition entry holds two 9-bit list
    /// pointers; the paper's total is 26112 bits = 3.18 KB).
    pub fn condition_storage_bits(&self) -> usize {
        // Per entry: two 9-bit pointers + valid bit + tag (condition key,
        // engineered so the §V.C total matches: 1024 entries contribute
        // together with the 512 × 9-bit list slots).
        let list_bits = self.waiter_slots * 9;
        let per_entry_ptr_bits = 2 * 9 + 3;
        self.condition_capacity() * per_entry_ptr_bits + list_bits
    }

    /// Bloom-filter storage in bits (512 × 24 = 12288 bits = 1.5 KB).
    pub fn bloom_storage_bits(&self) -> usize {
        self.bloom_filters * crate::bloom::BLOOM_BITS
    }
}

/// Outcome of a condition registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterOutcome {
    /// Cached on chip.
    Registered,
    /// The condition cache set is full of other conditions — spill.
    CacheFull,
    /// The waiting-WG list is full — spill.
    WaitersFull,
}

#[derive(Debug, Clone, Copy)]
struct CondEntry {
    cond: SyncCond,
    head: Option<u16>,
    tail: Option<u16>,
    waiters: u16,
    /// Cycle-stamp of first registration (AWG's met-latency predictor).
    registered_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct WaiterNode {
    wg: WgId,
    next: Option<u16>,
}

/// The SyncMon hardware state.
#[derive(Debug)]
pub struct SyncMon {
    config: SyncMonConfig,
    entries: Vec<Option<CondEntry>>,
    pool: Vec<Option<WaiterNode>>,
    free: Vec<u16>,
    addr_index: HashMap<Addr, Vec<usize>>,
    blooms: Vec<CountingBloom>,
    set_hash: UniversalHash,
    bloom_hash: UniversalHash,
    waiters_used: usize,
    // High-water marks for reporting.
    max_conditions: usize,
    max_waiters: usize,
    max_monitored_addrs: usize,
    spills: u64,
}

impl SyncMon {
    /// Creates an empty SyncMon.
    pub fn new(config: SyncMonConfig) -> Self {
        SyncMon {
            entries: vec![None; config.condition_capacity()],
            pool: vec![None; config.waiter_slots],
            free: (0..config.waiter_slots as u16).rev().collect(),
            addr_index: HashMap::new(),
            blooms: vec![CountingBloom::new(); config.bloom_filters],
            set_hash: UniversalHash::nth(11),
            bloom_hash: UniversalHash::nth(13),
            waiters_used: 0,
            max_conditions: 0,
            max_waiters: 0,
            max_monitored_addrs: 0,
            spills: 0,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SyncMonConfig {
        &self.config
    }

    fn set_of(&self, cond: &SyncCond) -> usize {
        let key = condition_key(
            cond.addr,
            cond.expected,
            self.config.condition_capacity() as u64,
            64,
        );
        self.set_hash.hash(key, self.config.sets as u64) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.config.ways..(set + 1) * self.config.ways
    }

    fn find_entry(&self, cond: &SyncCond) -> Option<usize> {
        let set = self.set_of(cond);
        self.slot_range(set)
            .find(|&i| self.entries[i].is_some_and(|e| e.cond == *cond))
    }

    fn conditions(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Registers `wg` as waiting on `cond` at time `now`.
    pub fn register(&mut self, cond: SyncCond, wg: WgId, now: u64) -> RegisterOutcome {
        let slot = match self.find_entry(&cond) {
            Some(i) => i,
            None => {
                let set = self.set_of(&cond);
                let Some(free_way) = self.slot_range(set).find(|&i| self.entries[i].is_none())
                else {
                    self.spills += 1;
                    return RegisterOutcome::CacheFull;
                };
                if self.free.is_empty() {
                    self.spills += 1;
                    return RegisterOutcome::WaitersFull;
                }
                self.entries[free_way] = Some(CondEntry {
                    cond,
                    head: None,
                    tail: None,
                    waiters: 0,
                    registered_at: now,
                });
                self.addr_index.entry(cond.addr).or_default().push(free_way);
                free_way
            }
        };
        let Some(node) = self.free.pop() else {
            // Roll back an entry we just created with no waiters.
            if self.entries[slot].is_some_and(|e| e.waiters == 0) {
                self.remove_entry(slot);
            }
            self.spills += 1;
            return RegisterOutcome::WaitersFull;
        };
        self.pool[node as usize] = Some(WaiterNode { wg, next: None });
        self.waiters_used += 1;
        let entry = self.entries[slot].as_mut().expect("entry exists");
        match entry.tail {
            None => {
                entry.head = Some(node);
                entry.tail = Some(node);
            }
            Some(t) => {
                self.pool[t as usize].as_mut().expect("tail valid").next = Some(node);
                entry.tail = Some(node);
            }
        }
        entry.waiters += 1;
        self.max_waiters = self.max_waiters.max(self.waiters_used);
        self.max_conditions = self.max_conditions.max(self.conditions());
        self.max_monitored_addrs = self.max_monitored_addrs.max(self.addr_index.len());
        RegisterOutcome::Registered
    }

    fn remove_entry(&mut self, slot: usize) {
        if let Some(e) = self.entries[slot].take() {
            if let Some(list) = self.addr_index.get_mut(&e.cond.addr) {
                list.retain(|&s| s != slot);
                if list.is_empty() {
                    self.addr_index.remove(&e.cond.addr);
                }
            }
        }
    }

    /// Number of WGs currently waiting on `cond`.
    pub fn waiter_count(&self, cond: &SyncCond) -> usize {
        self.find_entry(cond)
            .and_then(|i| self.entries[i])
            .map_or(0, |e| e.waiters as usize)
    }

    /// The cycle `cond` was first registered, if cached.
    pub fn registered_at(&self, cond: &SyncCond) -> Option<u64> {
        self.find_entry(cond)
            .and_then(|i| self.entries[i])
            .map(|e| e.registered_at)
    }

    /// Pops up to `limit` waiters of `cond` (FIFO). The entry is freed when
    /// its last waiter leaves.
    pub fn take_waiters(&mut self, cond: &SyncCond, limit: usize) -> Vec<WgId> {
        let Some(slot) = self.find_entry(cond) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while out.len() < limit {
            let entry = self.entries[slot].as_mut().expect("entry exists");
            let Some(h) = entry.head else { break };
            let node = self.pool[h as usize].take().expect("head valid");
            self.free.push(h);
            self.waiters_used -= 1;
            entry.head = node.next;
            if entry.head.is_none() {
                entry.tail = None;
            }
            entry.waiters -= 1;
            out.push(node.wg);
        }
        if self.entries[slot].is_some_and(|e| e.waiters == 0) {
            self.remove_entry(slot);
        }
        out
    }

    /// Conditions cached for `addr` whose expected value equals `new_value`
    /// (the condition-checking monitor lookup, MonR/MonNR/AWG).
    pub fn conditions_met(&self, addr: Addr, new_value: i64) -> Vec<SyncCond> {
        self.addr_index
            .get(&addr)
            .into_iter()
            .flatten()
            .filter_map(|&slot| self.entries[slot])
            .filter(|e| e.cond.expected == new_value)
            .map(|e| e.cond)
            .collect()
    }

    /// All conditions cached for `addr` (sporadic MonRS notifications
    /// resume every waiter on the address without checking values).
    pub fn conditions_on_addr(&self, addr: Addr) -> Vec<SyncCond> {
        self.addr_index
            .get(&addr)
            .into_iter()
            .flatten()
            .filter_map(|&slot| self.entries[slot])
            .map(|e| e.cond)
            .collect()
    }

    /// Whether any condition on `addr` remains cached (monitored-bit
    /// lifetime).
    pub fn addr_has_conditions(&self, addr: Addr) -> bool {
        self.addr_index.contains_key(&addr)
    }

    /// Removes a specific WG from a condition's waiter list (timeout wake).
    /// Returns `true` if it was found.
    pub fn remove_waiter(&mut self, cond: &SyncCond, wg: WgId) -> bool {
        let Some(slot) = self.find_entry(cond) else {
            return false;
        };
        let entry = self.entries[slot].as_ref().expect("entry exists");
        // Unlink from the singly-linked list.
        let mut prev: Option<u16> = None;
        let mut cur = entry.head;
        while let Some(c) = cur {
            let node = self.pool[c as usize].expect("node valid");
            if node.wg == wg {
                match prev {
                    None => self.entries[slot].as_mut().unwrap().head = node.next,
                    Some(p) => self.pool[p as usize].as_mut().unwrap().next = node.next,
                }
                if node.next.is_none() {
                    self.entries[slot].as_mut().unwrap().tail = prev;
                }
                self.pool[c as usize] = None;
                self.free.push(c);
                self.waiters_used -= 1;
                let e = self.entries[slot].as_mut().unwrap();
                e.waiters -= 1;
                if e.waiters == 0 {
                    self.remove_entry(slot);
                }
                return true;
            }
            prev = cur;
            cur = node.next;
        }
        false
    }

    /// Forcibly evicts up to `count` live condition entries in slot order
    /// (deterministic), unlinking their waiters, as if capacity pressure
    /// had victimized them. Returns the evicted conditions with the WGs
    /// that were parked on them — the caller decides how to rescue those.
    pub fn evict_conditions(&mut self, count: usize) -> Vec<(SyncCond, Vec<WgId>)> {
        let mut out = Vec::new();
        for slot in 0..self.entries.len() {
            if out.len() >= count {
                break;
            }
            let Some(entry) = self.entries[slot] else {
                continue;
            };
            let wgs = self.take_waiters(&entry.cond, usize::MAX);
            out.push((entry.cond, wgs));
        }
        out
    }

    /// Live condition entries `(condition, waiter count)` in slot order.
    pub fn snapshot(&self) -> Vec<(SyncCond, usize)> {
        self.entries
            .iter()
            .flatten()
            .map(|e| (e.cond, e.waiters as usize))
            .collect()
    }

    /// Pollutes the Bloom filter of every currently monitored address with
    /// `unique_values` synthetic distinct values (far outside workload
    /// ranges), forcing unique-count false positives. Addresses are visited
    /// in sorted order so the injection is deterministic. Returns the
    /// number of addresses polluted.
    pub fn pollute_blooms(&mut self, unique_values: usize) -> usize {
        let mut addrs: Vec<Addr> = self.addr_index.keys().copied().collect();
        addrs.sort_unstable();
        for &addr in &addrs {
            for k in 0..unique_values {
                self.record_update(addr, i64::MIN + 1 + k as i64);
            }
        }
        addrs.len()
    }

    /// Records an update value into the address's Bloom filter; returns the
    /// unique-update count afterwards.
    pub fn record_update(&mut self, addr: Addr, value: i64) -> u32 {
        let i = self.bloom_index(addr);
        self.blooms[i].insert(value);
        self.blooms[i].unique_count()
    }

    /// Unique updates observed for `addr`.
    pub fn unique_updates(&self, addr: Addr) -> u32 {
        self.blooms[self.bloom_index(addr)].unique_count()
    }

    /// Resets the Bloom filter of `addr`.
    pub fn reset_bloom(&mut self, addr: Addr) {
        let i = self.bloom_index(addr);
        self.blooms[i].reset();
    }

    fn bloom_index(&self, addr: Addr) -> usize {
        self.bloom_hash
            .hash(addr >> 3, self.config.bloom_filters as u64) as usize
    }

    /// `(cached conditions, waiters in the list)` right now.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.conditions(), self.waiters_used)
    }

    /// High-water marks `(conditions, waiters, monitored addresses)`.
    pub fn high_water(&self) -> (usize, usize, usize) {
        (
            self.max_conditions,
            self.max_waiters,
            self.max_monitored_addrs,
        )
    }

    /// Registrations rejected for capacity (spilled to the Monitor Log).
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Serializes the mutable monitor state. Geometry and hash functions are
    /// configuration and are not written; the per-address slot lists and the
    /// free list are written verbatim because their order is load-bearing
    /// (notification order, free-slot reuse order).
    pub fn save(&self, enc: &mut Enc) {
        let live: Vec<usize> = (0..self.entries.len())
            .filter(|&i| self.entries[i].is_some())
            .collect();
        enc.usize(live.len());
        for slot in live {
            let e = self.entries[slot].expect("slot is live");
            enc.u32(slot as u32);
            enc.u64(e.cond.addr);
            enc.i64(e.cond.expected);
            enc.opt_u16(e.head);
            enc.opt_u16(e.tail);
            enc.u16(e.waiters);
            enc.u64(e.registered_at);
        }
        let nodes: Vec<usize> = (0..self.pool.len())
            .filter(|&i| self.pool[i].is_some())
            .collect();
        enc.usize(nodes.len());
        for idx in nodes {
            let n = self.pool[idx].expect("node is live");
            enc.u32(idx as u32);
            enc.u32(n.wg);
            enc.opt_u16(n.next);
        }
        enc.usize(self.free.len());
        for &f in &self.free {
            enc.u16(f);
        }
        let mut addrs: Vec<Addr> = self.addr_index.keys().copied().collect();
        addrs.sort_unstable();
        enc.usize(addrs.len());
        for addr in addrs {
            enc.u64(addr);
            let slots = &self.addr_index[&addr];
            enc.usize(slots.len());
            for &s in slots {
                enc.u32(s as u32);
            }
        }
        enc.usize(self.blooms.len());
        for b in &self.blooms {
            b.save(enc);
        }
        enc.usize(self.waiters_used);
        enc.usize(self.max_conditions);
        enc.usize(self.max_waiters);
        enc.usize(self.max_monitored_addrs);
        enc.u64(self.spills);
    }

    /// Restores state saved by [`SyncMon::save`] onto a monitor with
    /// matching geometry, validating every index against it.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let capacity = self.config.condition_capacity();
        let slots = self.config.waiter_slots;
        let mut entries = vec![None; capacity];
        let n = dec.count(31)?;
        for _ in 0..n {
            let slot = dec.u32()? as usize;
            if slot >= capacity {
                return Err(CodecError::Invalid(format!(
                    "condition slot {slot} out of range ({capacity} slots)"
                )));
            }
            if entries[slot].is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate condition slot {slot}"
                )));
            }
            let cond = SyncCond {
                addr: dec.u64()?,
                expected: dec.i64()?,
            };
            let head = dec.opt_u16()?;
            let tail = dec.opt_u16()?;
            let waiters = dec.u16()?;
            let registered_at = dec.u64()?;
            for ptr in [head, tail].into_iter().flatten() {
                if ptr as usize >= slots {
                    return Err(CodecError::Invalid(format!(
                        "waiter pointer {ptr} out of range ({slots} slots)"
                    )));
                }
            }
            entries[slot] = Some(CondEntry {
                cond,
                head,
                tail,
                waiters,
                registered_at,
            });
        }
        let mut pool = vec![None; slots];
        let n = dec.count(9)?;
        for _ in 0..n {
            let idx = dec.u32()? as usize;
            if idx >= slots {
                return Err(CodecError::Invalid(format!(
                    "waiter node {idx} out of range ({slots} slots)"
                )));
            }
            if pool[idx].is_some() {
                return Err(CodecError::Invalid(format!("duplicate waiter node {idx}")));
            }
            let wg = dec.u32()?;
            let next = dec.opt_u16()?;
            if let Some(nx) = next {
                if nx as usize >= slots {
                    return Err(CodecError::Invalid(format!(
                        "waiter link {nx} out of range ({slots} slots)"
                    )));
                }
            }
            pool[idx] = Some(WaiterNode { wg, next });
        }
        let live_nodes = n;
        let n = dec.count(2)?;
        let mut free = Vec::with_capacity(n);
        for _ in 0..n {
            let f = dec.u16()?;
            if f as usize >= slots {
                return Err(CodecError::Invalid(format!(
                    "free-list slot {f} out of range ({slots} slots)"
                )));
            }
            if pool[f as usize].is_some() {
                return Err(CodecError::Invalid(format!(
                    "free-list slot {f} is occupied"
                )));
            }
            free.push(f);
        }
        if free.len() + live_nodes != slots {
            return Err(CodecError::Invalid(format!(
                "waiter accounting broken: {} free + {live_nodes} live != {slots}",
                free.len()
            )));
        }
        let n = dec.count(17)?;
        let mut addr_index = HashMap::with_capacity(n);
        for _ in 0..n {
            let addr = dec.u64()?;
            let m = dec.count(4)?;
            let mut list = Vec::with_capacity(m);
            for _ in 0..m {
                let s = dec.u32()? as usize;
                if s >= capacity || entries[s].is_none() {
                    return Err(CodecError::Invalid(format!(
                        "address index references dead slot {s}"
                    )));
                }
                list.push(s);
            }
            if list.is_empty() {
                return Err(CodecError::Invalid(format!(
                    "address index entry for {addr:#x} is empty"
                )));
            }
            if addr_index.insert(addr, list).is_some() {
                return Err(CodecError::Invalid(format!(
                    "duplicate address index entry {addr:#x}"
                )));
            }
        }
        let n = dec.count(8)?;
        if n != self.config.bloom_filters {
            return Err(CodecError::Invalid(format!(
                "{n} bloom filters in snapshot, config has {}",
                self.config.bloom_filters
            )));
        }
        for b in &mut self.blooms {
            b.load(dec)?;
        }
        let waiters_used = dec.usize()?;
        if waiters_used != live_nodes {
            return Err(CodecError::Invalid(format!(
                "waiters_used {waiters_used} != {live_nodes} live nodes"
            )));
        }
        self.entries = entries;
        self.pool = pool;
        self.free = free;
        self.addr_index = addr_index;
        self.waiters_used = waiters_used;
        self.max_conditions = dec.usize()?;
        self.max_waiters = dec.usize()?;
        self.max_monitored_addrs = dec.usize()?;
        self.spills = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond(addr: Addr, expected: i64) -> SyncCond {
        SyncCond { addr, expected }
    }

    #[test]
    fn paper_capacities() {
        let c = SyncMonConfig::isca2020();
        assert_eq!(c.condition_capacity(), 1024);
        assert_eq!(c.bloom_storage_bits(), 12288); // 1.5 KB (§V.C)
                                                   // §V.C: condition cache + WG list total 26112 bits (3.18 KB).
        assert_eq!(c.condition_storage_bits(), 26112);
    }

    #[test]
    fn register_and_take_fifo() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        let c = cond(64, 1);
        for wg in 0..3 {
            assert_eq!(m.register(c, wg, 100), RegisterOutcome::Registered);
        }
        assert_eq!(m.waiter_count(&c), 3);
        assert_eq!(m.registered_at(&c), Some(100));
        assert_eq!(m.take_waiters(&c, 2), vec![0, 1]);
        assert_eq!(m.waiter_count(&c), 1);
        assert_eq!(m.take_waiters(&c, 10), vec![2]);
        assert_eq!(m.waiter_count(&c), 0);
        assert!(!m.addr_has_conditions(64));
    }

    #[test]
    fn conditions_met_matches_value() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.register(cond(64, 1), 0, 0);
        m.register(cond(64, 2), 1, 0);
        m.register(cond(128, 1), 2, 0);
        let met = m.conditions_met(64, 1);
        assert_eq!(met, vec![cond(64, 1)]);
        assert_eq!(m.conditions_on_addr(64).len(), 2);
        assert!(m.conditions_met(64, 9).is_empty());
    }

    #[test]
    fn waiter_pool_exhaustion_spills() {
        let mut m = SyncMon::new(SyncMonConfig {
            sets: 4,
            ways: 4,
            waiter_slots: 2,
            bloom_filters: 8,
        });
        assert_eq!(m.register(cond(64, 1), 0, 0), RegisterOutcome::Registered);
        assert_eq!(m.register(cond(64, 1), 1, 0), RegisterOutcome::Registered);
        assert_eq!(m.register(cond(64, 1), 2, 0), RegisterOutcome::WaitersFull);
        assert_eq!(m.spill_count(), 1);
        // Freeing a waiter frees a slot.
        m.take_waiters(&cond(64, 1), 1);
        assert_eq!(m.register(cond(64, 1), 2, 0), RegisterOutcome::Registered);
    }

    #[test]
    fn set_conflict_spills() {
        let mut m = SyncMon::new(SyncMonConfig {
            sets: 1,
            ways: 2,
            waiter_slots: 16,
            bloom_filters: 8,
        });
        assert_eq!(m.register(cond(64, 1), 0, 0), RegisterOutcome::Registered);
        assert_eq!(m.register(cond(128, 1), 1, 0), RegisterOutcome::Registered);
        assert_eq!(m.register(cond(192, 1), 2, 0), RegisterOutcome::CacheFull);
    }

    #[test]
    fn remove_waiter_unlinks_middle() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        let c = cond(64, 5);
        for wg in 0..4 {
            m.register(c, wg, 0);
        }
        assert!(m.remove_waiter(&c, 2));
        assert!(!m.remove_waiter(&c, 2));
        assert_eq!(m.take_waiters(&c, 10), vec![0, 1, 3]);
    }

    #[test]
    fn remove_last_waiter_frees_entry() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        let c = cond(64, 5);
        m.register(c, 9, 0);
        assert!(m.remove_waiter(&c, 9));
        assert!(!m.addr_has_conditions(64));
        let (conds, waiters) = m.occupancy();
        assert_eq!((conds, waiters), (0, 0));
    }

    #[test]
    fn bloom_tracks_per_address() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.record_update(64, 1);
        m.record_update(64, 1);
        m.record_update(64, 2);
        assert_eq!(m.unique_updates(64), 2);
        m.reset_bloom(64);
        assert_eq!(m.unique_updates(64), 0);
    }

    #[test]
    fn evict_conditions_cuts_waiters_loose() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.register(cond(64, 1), 0, 0);
        m.register(cond(64, 1), 1, 0);
        m.register(cond(128, 2), 2, 0);
        let evicted = m.evict_conditions(1);
        assert_eq!(evicted.len(), 1);
        let (c, wgs) = &evicted[0];
        assert_eq!(wgs.len(), if c.addr == 64 { 2 } else { 1 });
        // The evicted condition is gone; the other survives.
        assert_eq!(m.occupancy().0, 1);
        let evicted = m.evict_conditions(5);
        assert_eq!(evicted.len(), 1, "only one live entry remained");
        assert_eq!(m.occupancy(), (0, 0));
    }

    #[test]
    fn snapshot_lists_live_entries() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.register(cond(64, 1), 0, 0);
        m.register(cond(64, 1), 1, 0);
        m.register(cond(128, 2), 2, 0);
        let mut snap = m.snapshot();
        snap.sort_by_key(|(c, _)| c.addr);
        assert_eq!(snap, vec![(cond(64, 1), 2), (cond(128, 2), 1)]);
    }

    #[test]
    fn bloom_storm_inflates_unique_counts() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.register(cond(64, 1), 0, 0);
        m.record_update(64, 1);
        assert_eq!(m.unique_updates(64), 1);
        assert_eq!(m.pollute_blooms(4), 1);
        assert!(m.unique_updates(64) > 2, "storm must defeat the predictor");
        // Idempotent: the same synthetic values add nothing new.
        let before = m.unique_updates(64);
        m.pollute_blooms(4);
        assert_eq!(m.unique_updates(64), before);
    }

    #[test]
    fn high_water_marks_monotonic() {
        let mut m = SyncMon::new(SyncMonConfig::isca2020());
        m.register(cond(64, 1), 0, 0);
        m.register(cond(128, 1), 1, 0);
        m.take_waiters(&cond(64, 1), 1);
        m.take_waiters(&cond(128, 1), 1);
        let (c, w, a) = m.high_water();
        assert_eq!((c, w, a), (2, 2, 2));
        assert_eq!(m.occupancy(), (0, 0));
    }
}
