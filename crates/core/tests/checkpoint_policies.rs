//! Mid-run checkpoint/restore determinism for the real policy family.
//!
//! The gpu-crate tests prove digest-identical resume for the busy-wait
//! baseline; these prove it for the monitor policies, whose mutable state
//! (SyncMon linked lists, Monitor Log, CP tables, predictor EWMAs, backoff
//! ladders) lives in `awg-core` and is serialized via the `SchedPolicy`
//! `save_state`/`load_state` hooks. Every policy runs a contended
//! test-and-set mutex so snapshots land with waiters parked in the monitor
//! structures, then a resumed run must replay to the same digest trail and
//! cycle count as an uninterrupted one.

use std::path::PathBuf;

use awg_core::policies::{build_policy, ChaosMode, ChaosWrap, MonNrAllPolicy, PolicyKind};
use awg_gpu::{
    read_checkpoint, restore_into, CheckpointSpec, Gpu, GpuConfig, Kernel, SchedPolicy, SimError,
    SyncStyle, WgResources,
};
use awg_isa::{Cond, Operand, ProgramBuilder, Reg};
use awg_mem::AtomicOp;

const LOCK: u64 = 4096;
const COUNTER: u64 = 8192;
const WGS: u64 = 24;
const ITERS: i64 = 6;
const DIGEST_WINDOW: u64 = 500;
const IDENTITY: u64 = 0xC0DE_5EED;

/// A contended test-and-set mutex in the instruction style the policy
/// expects (plain atomics, `wait`-armed polls, or waiting atomics).
fn mutex_kernel(style: SyncStyle) -> Kernel {
    let mut b = ProgramBuilder::new("ckpt-mutex");
    b.li(Reg::R3, 0);
    let iter = b.new_label();
    b.bind(iter);
    let retry = b.new_label();
    let acquired = b.new_label();
    b.bind(retry);
    match style {
        SyncStyle::Busy | SyncStyle::Backoff => {
            b.atom_exch(Reg::R0, LOCK, 1i64);
            b.br(Cond::Eq, Reg::R0, Operand::Imm(0), acquired);
        }
        SyncStyle::WaitInst => {
            b.atom_exch(Reg::R0, LOCK, 1i64);
            b.br(Cond::Eq, Reg::R0, Operand::Imm(0), acquired);
            b.wait(LOCK, 0i64);
        }
        SyncStyle::WaitingAtomic => {
            b.atom_wait(AtomicOp::Exch, Reg::R0, LOCK, 1i64, 0i64);
            b.br(Cond::Eq, Reg::R0, Operand::Imm(0), acquired);
        }
    }
    b.jmp(retry);
    b.bind(acquired);
    b.ld(Reg::R1, COUNTER);
    b.add(Reg::R1, Reg::R1, 1i64);
    b.st(COUNTER, Reg::R1);
    b.compute(20);
    b.atom_exch(Reg::R2, LOCK, 0i64);
    b.add(Reg::R3, Reg::R3, 1i64);
    b.br(Cond::Lt, Reg::R3, Operand::Imm(ITERS), iter);
    b.halt();
    Kernel::new(b.build().unwrap(), WGS, WgResources::default())
}

fn fresh(make: &dyn Fn() -> Box<dyn SchedPolicy>) -> Gpu {
    let style = make().style();
    let mut gpu = Gpu::new(GpuConfig::isca2020_baseline(), mutex_kernel(style), make());
    gpu.enable_digest_trail(DIGEST_WINDOW);
    gpu.enable_invariant_oracle();
    gpu
}

fn ckpt_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("awg_ckpt_policy_{}_{name}", std::process::id()));
    p
}

fn assert_resumed_matches(name: &str, make: &dyn Fn() -> Box<dyn SchedPolicy>) {
    let mut reference = fresh(make);
    let outcome = reference.run();
    assert!(outcome.is_completed(), "{name} reference: {outcome:?}");
    let ref_trail = reference.digest_trail().to_vec();
    let ref_cycles = outcome.summary().cycles;
    assert_eq!(
        reference.backing().load(COUNTER),
        WGS as i64 * ITERS,
        "{name}"
    );

    // A checkpointing twin must not perturb the simulation, and its last
    // snapshot must land while waiters still sit in the policy structures.
    let every = (ref_cycles / 8).max(500);
    let path = ckpt_path(name);
    let spec = || CheckpointSpec {
        path: path.clone(),
        every,
        identity: IDENTITY,
        kill_after: None,
    };
    let mut writer = fresh(make);
    writer.set_checkpoint(spec());
    let outcome = writer.run();
    assert!(outcome.is_completed(), "{name} writer: {outcome:?}");
    assert!(
        writer.checkpoint_error().is_none(),
        "{name}: {:?}",
        writer.checkpoint_error()
    );
    assert!(
        writer.checkpoints_written() >= 2,
        "{name}: only {} snapshots",
        writer.checkpoints_written()
    );
    assert_eq!(
        writer.digest_trail(),
        ref_trail.as_slice(),
        "{name}: snapshots perturbed the run"
    );
    assert_eq!(outcome.summary().cycles, ref_cycles, "{name}");

    let image = read_checkpoint(&path).unwrap();
    assert!(
        image.cycle > 0 && image.cycle < ref_cycles,
        "{name}: snapshot not mid-run"
    );
    let mut resumed = fresh(make);
    resumed.set_checkpoint(spec());
    restore_into(&mut resumed, &image, IDENTITY).unwrap_or_else(|e| panic!("{name}: {e}"));
    let outcome = resumed.run();
    assert!(outcome.is_completed(), "{name} resumed: {outcome:?}");
    assert_eq!(
        resumed.digest_trail(),
        ref_trail.as_slice(),
        "{name}: resumed trail diverged"
    );
    assert_eq!(
        outcome.summary().cycles,
        ref_cycles,
        "{name}: resumed cycles diverged"
    );
    assert_eq!(
        resumed.backing().load(COUNTER),
        WGS as i64 * ITERS,
        "{name}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn timer_policies_resume_exactly() {
    for kind in [PolicyKind::Timeout, PolicyKind::Sleep] {
        assert_resumed_matches(&kind.label(), &move || build_policy(kind));
    }
}

#[test]
fn monitor_policies_resume_exactly() {
    for kind in [
        PolicyKind::MonNrAll,
        PolicyKind::MonNrOne,
        PolicyKind::MonRAll,
        PolicyKind::MonRsAll,
    ] {
        assert_resumed_matches(&kind.label(), &move || build_policy(kind));
    }
}

#[test]
fn awg_and_oracle_resume_exactly() {
    for kind in [PolicyKind::Awg, PolicyKind::MinResume] {
        assert_resumed_matches(&kind.label(), &move || build_policy(kind));
    }
}

#[test]
fn chaos_wrapped_policy_resumes_exactly() {
    // The wake-perturbation cursor (`seen`) is part of the machine: losing
    // it would shift which wakes get dropped after a resume.
    assert_resumed_matches("ChaosWrap", &|| {
        Box::new(ChaosWrap::with_mode(
            MonNrAllPolicy::new(),
            3,
            ChaosMode::Delay(750),
        ))
    });
}

#[test]
fn snapshot_refused_by_different_policy() {
    let make: &dyn Fn() -> Box<dyn SchedPolicy> = &|| build_policy(PolicyKind::MonNrAll);
    let path = ckpt_path("xpolicy");
    let mut writer = fresh(make);
    writer.set_checkpoint(CheckpointSpec {
        path: path.clone(),
        every: 2_000,
        identity: IDENTITY,
        kill_after: None,
    });
    assert!(writer.run().is_completed());
    let image = read_checkpoint(&path).unwrap();

    // Same kernel shape, same claimed identity, but a Timeout machine: the
    // policy-name cross-check must fail closed.
    let mut wrong = Gpu::new(
        GpuConfig::isca2020_baseline(),
        mutex_kernel(SyncStyle::WaitingAtomic),
        build_policy(PolicyKind::Timeout),
    );
    let err = restore_into(&mut wrong, &image, IDENTITY).unwrap_err();
    assert!(matches!(err, SimError::CorruptCheckpoint(_)), "{err}");
    std::fs::remove_file(&path).unwrap();
}
