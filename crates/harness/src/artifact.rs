//! JSON codecs for journaled job results.
//!
//! The durable job journal stores each completed job's *value* so a resumed
//! campaign can re-merge it without re-simulating. [`Artifact`] is the
//! contract a job's return type must satisfy: serialize to the hand-rolled
//! [`awg_sim::json::Value`], deserialize back, and (for supervision) expose
//! whether the run was watchdog-cancelled.
//!
//! Two widths of u64 need care: JSON numbers are `f64`, whose 53-bit
//! mantissa silently corrupts full-width words. Cycle counts, instruction
//! counts, and stat values are bounded far below 2⁵³ by the machine's cycle
//! cap and encode as numbers; **digests** (`Fingerprint64` outputs) use the
//! full 64 bits and encode as `"0x…"` hex strings.
//!
//! One deliberate omission: windowed telemetry snapshots
//! ([`ExpResult::snapshots`]) are not journaled — they are bulky, no
//! campaign report consumes them, and the timeline command that does runs
//! single jobs without a journal. A decoded result has an empty snapshot
//! list.

use std::time::Duration;

use awg_core::policies::PolicyKind;
use awg_gpu::{
    CancelCause, HangReport, InvariantKind, InvariantViolation, MonitorEntrySnapshot, RunOutcome,
    RunSummary, SyncCond, WgState, WgWaitInfo,
};
use awg_sim::json::Value;
use awg_sim::telemetry::{ProfileReport, Subsystem};
use awg_sim::{Cycle, Stats};
use awg_workloads::BenchmarkKind;

use crate::report::Cell;
use crate::run::ExpResult;

/// A job result the journal can persist and restore.
pub trait Artifact: Sized {
    /// Serializes the result for the journal.
    fn to_json(&self) -> Value;
    /// Restores a result from its journaled form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch; the
    /// supervisor treats an undecodable record as a cache miss and re-runs
    /// the job.
    fn from_json(value: &Value) -> Result<Self, String>;
    /// The cancellation point and cause, when the underlying run was
    /// watchdog-cancelled. The supervisor retries / reports such results
    /// instead of journaling them as complete.
    fn cancelled(&self) -> Option<(Cycle, CancelCause)> {
        None
    }
}

// ---------------------------------------------------------------------------
// Small building blocks.

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

pub(crate) fn num(n: u64) -> Value {
    debug_assert!(n < (1 << 53), "{n} does not fit an f64 mantissa; use hex()");
    Value::Num(n as f64)
}

pub(crate) fn hex(word: u64) -> Value {
    Value::Str(format!("{word:#018x}"))
}

pub(crate) fn field<'v>(value: &'v Value, key: &str) -> Result<&'v Value, String> {
    value
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))
}

pub(crate) fn get_f64(value: &Value, key: &str) -> Result<f64, String> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

pub(crate) fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    let n = get_f64(value, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("field {key:?} is not an unsigned integer: {n}"));
    }
    Ok(n as u64)
}

pub(crate) fn get_str<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

pub(crate) fn get_arr<'v>(value: &'v Value, key: &str) -> Result<&'v [Value], String> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

pub(crate) fn parse_hex(text: &str) -> Result<u64, String> {
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hex word, got {text:?}"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex word {text:?}: {e}"))
}

pub(crate) fn as_u64(value: &Value, what: &str) -> Result<u64, String> {
    let n = value
        .as_f64()
        .ok_or_else(|| format!("{what} is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{what} is not an unsigned integer: {n}"));
    }
    Ok(n as u64)
}

fn pair_u64(value: &Value, what: &str) -> Result<(u64, u64), String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("{what} is not an array"))?;
    if items.len() != 2 {
        return Err(format!("{what} is not a pair"));
    }
    Ok((as_u64(&items[0], what)?, as_u64(&items[1], what)?))
}

// ---------------------------------------------------------------------------
// Leaf codecs.

fn kind_to_json(kind: BenchmarkKind) -> Value {
    Value::Str(kind.abbreviation().to_owned())
}

fn kind_from_json(value: &Value) -> Result<BenchmarkKind, String> {
    let abbrev = value
        .as_str()
        .ok_or_else(|| "benchmark kind is not a string".to_owned())?;
    BenchmarkKind::all()
        .into_iter()
        .find(|k| k.abbreviation() == abbrev)
        .ok_or_else(|| format!("unknown benchmark abbreviation {abbrev:?}"))
}

fn policy_to_json(policy: PolicyKind) -> Value {
    let (name, param) = match policy {
        PolicyKind::Baseline => ("Baseline", None),
        PolicyKind::Sleep => ("Sleep", None),
        PolicyKind::SleepMax(m) => ("SleepMax", Some(m)),
        PolicyKind::Timeout => ("Timeout", None),
        PolicyKind::TimeoutInterval(i) => ("TimeoutInterval", Some(i)),
        PolicyKind::MonRsAll => ("MonRsAll", None),
        PolicyKind::MonRAll => ("MonRAll", None),
        PolicyKind::MonNrAll => ("MonNrAll", None),
        PolicyKind::MonNrOne => ("MonNrOne", None),
        PolicyKind::Awg => ("Awg", None),
        PolicyKind::MinResume => ("MinResume", None),
    };
    let mut fields = vec![("name", Value::Str(name.to_owned()))];
    if let Some(p) = param {
        fields.push(("param", num(p)));
    }
    obj(fields)
}

fn policy_from_json(value: &Value) -> Result<PolicyKind, String> {
    let name = get_str(value, "name")?;
    let param = || get_u64(value, "param");
    Ok(match name {
        "Baseline" => PolicyKind::Baseline,
        "Sleep" => PolicyKind::Sleep,
        "SleepMax" => PolicyKind::SleepMax(param()?),
        "Timeout" => PolicyKind::Timeout,
        "TimeoutInterval" => PolicyKind::TimeoutInterval(param()?),
        "MonRsAll" => PolicyKind::MonRsAll,
        "MonRAll" => PolicyKind::MonRAll,
        "MonNrAll" => PolicyKind::MonNrAll,
        "MonNrOne" => PolicyKind::MonNrOne,
        "Awg" => PolicyKind::Awg,
        "MinResume" => PolicyKind::MinResume,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

const WG_STATES: [(WgState, &str); 10] = [
    (WgState::Pending, "Pending"),
    (WgState::Dispatching, "Dispatching"),
    (WgState::Running, "Running"),
    (WgState::Sleeping, "Sleeping"),
    (WgState::Stalled, "Stalled"),
    (WgState::SwappingOut, "SwappingOut"),
    (WgState::SwappedWaiting, "SwappedWaiting"),
    (WgState::ReadySwapped, "ReadySwapped"),
    (WgState::SwappingIn, "SwappingIn"),
    (WgState::Finished, "Finished"),
];

fn wg_state_to_json(state: WgState) -> Value {
    let (_, name) = WG_STATES
        .iter()
        .find(|(s, _)| *s == state)
        .expect("every WgState is in the table");
    Value::Str((*name).to_owned())
}

fn wg_state_from_json(value: &Value) -> Result<WgState, String> {
    let name = value
        .as_str()
        .ok_or_else(|| "WG state is not a string".to_owned())?;
    WG_STATES
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(s, _)| *s)
        .ok_or_else(|| format!("unknown WG state {name:?}"))
}

const INVARIANT_KINDS: [(InvariantKind, &str); 8] = [
    (
        InvariantKind::DuplicateRegistration,
        "DuplicateRegistration",
    ),
    (InvariantKind::StaleRegistration, "StaleRegistration"),
    (InvariantKind::MonitorSupersetHole, "MonitorSupersetHole"),
    (InvariantKind::UnreachableWaiter, "UnreachableWaiter"),
    (InvariantKind::MisdeliveredWake, "MisdeliveredWake"),
    (InvariantKind::WgAccounting, "WgAccounting"),
    (InvariantKind::CuAccounting, "CuAccounting"),
    (InvariantKind::CuResidency, "CuResidency"),
];

fn violation_to_json(v: &InvariantViolation) -> Value {
    let (_, name) = INVARIANT_KINDS
        .iter()
        .find(|(k, _)| *k == v.kind)
        .expect("every InvariantKind is in the table");
    obj(vec![
        ("at", num(v.at)),
        ("kind", Value::Str((*name).to_owned())),
        ("detail", Value::Str(v.detail.clone())),
    ])
}

fn violation_from_json(value: &Value) -> Result<InvariantViolation, String> {
    let name = get_str(value, "kind")?;
    let kind = INVARIANT_KINDS
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(k, _)| *k)
        .ok_or_else(|| format!("unknown invariant kind {name:?}"))?;
    Ok(InvariantViolation {
        at: get_u64(value, "at")?,
        kind,
        detail: get_str(value, "detail")?.to_owned(),
    })
}

pub(crate) fn cause_to_json(cause: CancelCause) -> Value {
    match cause {
        CancelCause::Interrupt => obj(vec![("cause", Value::Str("interrupt".into()))]),
        CancelCause::WallDeadline(limit) => obj(vec![
            ("cause", Value::Str("wall-deadline".into())),
            ("nanos", num(limit.as_nanos() as u64)),
        ]),
        CancelCause::CycleBudget(budget) => obj(vec![
            ("cause", Value::Str("cycle-budget".into())),
            ("budget", num(budget)),
        ]),
    }
}

pub(crate) fn cause_from_json(value: &Value) -> Result<CancelCause, String> {
    Ok(match get_str(value, "cause")? {
        "interrupt" => CancelCause::Interrupt,
        "wall-deadline" => {
            CancelCause::WallDeadline(Duration::from_nanos(get_u64(value, "nanos")?))
        }
        "cycle-budget" => CancelCause::CycleBudget(get_u64(value, "budget")?),
        other => return Err(format!("unknown cancel cause {other:?}")),
    })
}

// ---------------------------------------------------------------------------
// Stats.

fn stats_to_json(stats: &Stats) -> Value {
    let counters = stats
        .counters()
        .map(|(name, value)| Value::Array(vec![Value::Str(name.to_owned()), num(value)]))
        .collect();
    let dists = stats
        .dists()
        .map(|(name, s)| {
            Value::Array(vec![
                Value::Str(name.to_owned()),
                num(s.count),
                num(s.sum),
                num(s.min),
                num(s.max),
            ])
        })
        .collect();
    let hists = stats
        .hists()
        .map(|(name, buckets)| {
            Value::Array(vec![
                Value::Str(name.to_owned()),
                Value::Array(
                    buckets
                        .into_iter()
                        .map(|(lo, c)| Value::Array(vec![num(lo), num(c)]))
                        .collect(),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("counters", Value::Array(counters)),
        ("dists", Value::Array(dists)),
        ("hists", Value::Array(hists)),
    ])
}

fn stats_from_json(value: &Value) -> Result<Stats, String> {
    let mut stats = Stats::new();
    for entry in get_arr(value, "counters")? {
        let items = entry
            .as_array()
            .ok_or_else(|| "counter entry is not an array".to_owned())?;
        if items.len() != 2 {
            return Err("counter entry is not a [name, value] pair".into());
        }
        let name = items[0]
            .as_str()
            .ok_or_else(|| "counter name is not a string".to_owned())?;
        let id = stats.counter(name);
        stats.add(id, as_u64(&items[1], "counter value")?);
    }
    for entry in get_arr(value, "dists")? {
        let items = entry
            .as_array()
            .ok_or_else(|| "dist entry is not an array".to_owned())?;
        if items.len() != 5 {
            return Err("dist entry is not [name, count, sum, min, max]".into());
        }
        let name = items[0]
            .as_str()
            .ok_or_else(|| "dist name is not a string".to_owned())?;
        stats.restore_dist(
            name,
            awg_sim::DistSummary {
                count: as_u64(&items[1], "dist count")?,
                sum: as_u64(&items[2], "dist sum")?,
                min: as_u64(&items[3], "dist min")?,
                max: as_u64(&items[4], "dist max")?,
            },
        );
    }
    for entry in get_arr(value, "hists")? {
        let items = entry
            .as_array()
            .ok_or_else(|| "hist entry is not an array".to_owned())?;
        if items.len() != 2 {
            return Err("hist entry is not [name, buckets]".into());
        }
        let name = items[0]
            .as_str()
            .ok_or_else(|| "hist name is not a string".to_owned())?;
        // Register the name even when every bucket is empty.
        stats.hist(name);
        let buckets = items[1]
            .as_array()
            .ok_or_else(|| "hist buckets are not an array".to_owned())?;
        for bucket in buckets {
            let (lo, count) = pair_u64(bucket, "hist bucket")?;
            stats.restore_hist_bucket(name, lo, count);
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Summaries, hang reports, outcomes.

fn summary_to_json(s: &RunSummary) -> Value {
    obj(vec![
        ("cycles", num(s.cycles)),
        ("insts", num(s.insts)),
        ("atomics", num(s.atomics)),
        ("running_cycles", num(s.running_cycles)),
        ("waiting_cycles", num(s.waiting_cycles)),
        ("switches_out", num(s.switches_out)),
        ("switches_in", num(s.switches_in)),
        ("resumes", num(s.resumes)),
        ("unnecessary_resumes", num(s.unnecessary_resumes)),
        ("stats", stats_to_json(&s.stats)),
    ])
}

fn summary_from_json(value: &Value) -> Result<RunSummary, String> {
    Ok(RunSummary {
        cycles: get_u64(value, "cycles")?,
        insts: get_u64(value, "insts")?,
        atomics: get_u64(value, "atomics")?,
        running_cycles: get_u64(value, "running_cycles")?,
        waiting_cycles: get_u64(value, "waiting_cycles")?,
        switches_out: get_u64(value, "switches_out")?,
        switches_in: get_u64(value, "switches_in")?,
        resumes: get_u64(value, "resumes")?,
        unnecessary_resumes: get_u64(value, "unnecessary_resumes")?,
        stats: stats_from_json(field(value, "stats")?)?,
    })
}

fn get_i64(value: &Value, key: &str) -> Result<i64, String> {
    let n = get_f64(value, key)?;
    if n.fract() != 0.0 {
        return Err(format!("field {key:?} is not an integer: {n}"));
    }
    Ok(n as i64)
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => Ok(Some(get_u64(value, key)?)),
    }
}

fn wait_info_to_json(w: &WgWaitInfo) -> Value {
    let mut fields = vec![
        ("wg", num(u64::from(w.wg))),
        ("state", wg_state_to_json(w.state)),
        ("pc", num(w.pc as u64)),
    ];
    if let Some(cond) = w.cond {
        fields.push((
            "cond",
            obj(vec![
                ("addr", num(cond.addr)),
                ("expected", Value::Num(cond.expected as f64)),
            ]),
        ));
    }
    if let Some((addr, streak)) = w.spinning_on {
        fields.push(("spinning_on", Value::Array(vec![num(addr), num(streak)])));
    }
    if let Some(observed) = w.observed {
        fields.push(("observed", Value::Num(observed as f64)));
    }
    fields.push(("waited", num(w.waited)));
    if let Some(t) = w.timeout_in {
        fields.push(("timeout_in", num(t)));
    }
    obj(fields)
}

fn wait_info_from_json(value: &Value) -> Result<WgWaitInfo, String> {
    let cond = match value.get("cond") {
        None | Some(Value::Null) => None,
        Some(c) => Some(SyncCond {
            addr: get_u64(c, "addr")?,
            expected: get_i64(c, "expected")?,
        }),
    };
    let spinning_on = match value.get("spinning_on") {
        None | Some(Value::Null) => None,
        Some(s) => Some(pair_u64(s, "spinning_on")?),
    };
    let observed = match value.get("observed") {
        None | Some(Value::Null) => None,
        Some(_) => Some(get_i64(value, "observed")?),
    };
    Ok(WgWaitInfo {
        wg: u32::try_from(get_u64(value, "wg")?).map_err(|_| "WG id overflows u32".to_owned())?,
        state: wg_state_from_json(field(value, "state")?)?,
        pc: get_u64(value, "pc")? as usize,
        cond,
        spinning_on,
        observed,
        waited: get_u64(value, "waited")?,
        timeout_in: opt_u64(value, "timeout_in")?,
    })
}

fn hang_to_json(h: &HangReport) -> Value {
    obj(vec![
        ("at", num(h.at)),
        (
            "unfinished",
            Value::Array(h.unfinished.iter().map(wait_info_to_json).collect()),
        ),
        (
            "monitor_entries",
            Value::Array(
                h.monitor_entries
                    .iter()
                    .map(|e| {
                        obj(vec![
                            ("addr", num(e.addr)),
                            ("expected", Value::Num(e.expected as f64)),
                            ("waiters", num(e.waiters as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "waits_for",
            Value::Array(
                h.waits_for
                    .iter()
                    .map(|(addr, wgs)| {
                        Value::Array(vec![
                            num(*addr),
                            Value::Array(wgs.iter().map(|&wg| num(u64::from(wg))).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn hang_from_json(value: &Value) -> Result<HangReport, String> {
    let unfinished = get_arr(value, "unfinished")?
        .iter()
        .map(wait_info_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let monitor_entries = get_arr(value, "monitor_entries")?
        .iter()
        .map(|e| {
            Ok(MonitorEntrySnapshot {
                addr: get_u64(e, "addr")?,
                expected: get_i64(e, "expected")?,
                waiters: get_u64(e, "waiters")? as usize,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let waits_for = get_arr(value, "waits_for")?
        .iter()
        .map(|entry| {
            let items = entry
                .as_array()
                .ok_or_else(|| "waits_for entry is not an array".to_owned())?;
            if items.len() != 2 {
                return Err("waits_for entry is not [addr, wgs]".to_owned());
            }
            let addr = as_u64(&items[0], "waits_for addr")?;
            let wgs = items[1]
                .as_array()
                .ok_or_else(|| "waits_for wgs is not an array".to_owned())?
                .iter()
                .map(|w| {
                    as_u64(w, "waits_for wg").and_then(|n| {
                        u32::try_from(n).map_err(|_| "WG id overflows u32".to_owned())
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok((addr, wgs))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HangReport {
        at: get_u64(value, "at")?,
        unfinished,
        monitor_entries,
        waits_for,
    })
}

fn outcome_to_json(outcome: &RunOutcome) -> Value {
    match outcome {
        RunOutcome::Completed(s) => obj(vec![
            ("ended", Value::Str("completed".into())),
            ("summary", summary_to_json(s)),
        ]),
        RunOutcome::Deadlocked {
            at,
            unfinished,
            summary,
            hang,
        } => obj(vec![
            ("ended", Value::Str("deadlocked".into())),
            ("at", num(*at)),
            ("unfinished", num(*unfinished as u64)),
            ("summary", summary_to_json(summary)),
            ("hang", hang_to_json(hang)),
        ]),
        RunOutcome::CycleLimit {
            at,
            unfinished,
            summary,
            hang,
        } => obj(vec![
            ("ended", Value::Str("cycle-limit".into())),
            ("at", num(*at)),
            ("unfinished", num(*unfinished as u64)),
            ("summary", summary_to_json(summary)),
            ("hang", hang_to_json(hang)),
        ]),
        RunOutcome::Cancelled {
            at,
            unfinished,
            cause,
            summary,
            hang,
        } => obj(vec![
            ("ended", Value::Str("cancelled".into())),
            ("at", num(*at)),
            ("unfinished", num(*unfinished as u64)),
            ("cause", cause_to_json(*cause)),
            ("summary", summary_to_json(summary)),
            ("hang", hang_to_json(hang)),
        ]),
    }
}

fn outcome_from_json(value: &Value) -> Result<RunOutcome, String> {
    let summary = summary_from_json(field(value, "summary")?)?;
    Ok(match get_str(value, "ended")? {
        "completed" => RunOutcome::Completed(summary),
        "deadlocked" => RunOutcome::Deadlocked {
            at: get_u64(value, "at")?,
            unfinished: get_u64(value, "unfinished")? as usize,
            summary,
            hang: hang_from_json(field(value, "hang")?)?,
        },
        "cycle-limit" => RunOutcome::CycleLimit {
            at: get_u64(value, "at")?,
            unfinished: get_u64(value, "unfinished")? as usize,
            summary,
            hang: hang_from_json(field(value, "hang")?)?,
        },
        "cancelled" => RunOutcome::Cancelled {
            at: get_u64(value, "at")?,
            unfinished: get_u64(value, "unfinished")? as usize,
            cause: cause_from_json(field(value, "cause")?)?,
            summary,
            hang: hang_from_json(field(value, "hang")?)?,
        },
        other => return Err(format!("unknown outcome {other:?}")),
    })
}

fn profile_to_json(p: &ProfileReport) -> Value {
    obj(vec![
        ("total_wall_ns", num(p.total_wall.as_nanos() as u64)),
        ("sim_cycles", num(p.sim_cycles)),
        ("events", num(p.events)),
        (
            "per_subsystem",
            Value::Array(
                p.per_subsystem
                    .iter()
                    .map(|(name, wall, events)| {
                        Value::Array(vec![
                            Value::Str((*name).to_owned()),
                            num(wall.as_nanos() as u64),
                            num(*events),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn profile_from_json(value: &Value) -> Result<ProfileReport, String> {
    let per_subsystem = get_arr(value, "per_subsystem")?
        .iter()
        .map(|entry| {
            let items = entry
                .as_array()
                .ok_or_else(|| "subsystem entry is not an array".to_owned())?;
            if items.len() != 3 {
                return Err("subsystem entry is not [name, wall_ns, events]".to_owned());
            }
            let name = items[0]
                .as_str()
                .ok_or_else(|| "subsystem name is not a string".to_owned())?;
            // Intern to the 'static names so the decoded report matches the
            // live type.
            let interned = Subsystem::ALL
                .iter()
                .map(|s| s.name())
                .find(|n| *n == name)
                .ok_or_else(|| format!("unknown subsystem {name:?}"))?;
            Ok((
                interned,
                Duration::from_nanos(as_u64(&items[1], "subsystem wall")?),
                as_u64(&items[2], "subsystem events")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ProfileReport {
        total_wall: Duration::from_nanos(get_u64(value, "total_wall_ns")?),
        sim_cycles: get_u64(value, "sim_cycles")?,
        events: get_u64(value, "events")?,
        per_subsystem,
    })
}

// ---------------------------------------------------------------------------
// Artifact impls.

impl Artifact for ExpResult {
    fn to_json(&self) -> Value {
        let validated = match &self.validated {
            Ok(()) => Value::Null,
            Err(msg) => Value::Str(msg.clone()),
        };
        let profile = match &self.profile {
            Some(p) => profile_to_json(p),
            None => Value::Null,
        };
        obj(vec![
            ("kind", kind_to_json(self.kind)),
            ("policy", policy_to_json(self.policy)),
            ("outcome", outcome_to_json(&self.outcome)),
            ("validated", validated),
            (
                "wg_breakdown",
                Value::Array(
                    self.wg_breakdown
                        .iter()
                        .map(|&(r, w)| Value::Array(vec![num(r), num(w)]))
                        .collect(),
                ),
            ),
            (
                "violations",
                Value::Array(self.violations.iter().map(violation_to_json).collect()),
            ),
            (
                "digest_trail",
                Value::Array(self.digest_trail.iter().map(|&d| hex(d)).collect()),
            ),
            ("profile", profile),
        ])
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let validated = match field(value, "validated")? {
            Value::Null => Ok(()),
            Value::Str(msg) => Err(msg.clone()),
            _ => return Err("field \"validated\" is neither null nor a string".into()),
        };
        let profile = match field(value, "profile")? {
            Value::Null => None,
            p => Some(profile_from_json(p)?),
        };
        let wg_breakdown = get_arr(value, "wg_breakdown")?
            .iter()
            .map(|p| pair_u64(p, "wg_breakdown entry"))
            .collect::<Result<Vec<_>, _>>()?;
        let violations = get_arr(value, "violations")?
            .iter()
            .map(violation_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let digest_trail = get_arr(value, "digest_trail")?
            .iter()
            .map(|d| {
                d.as_str()
                    .ok_or_else(|| "digest is not a string".to_owned())
                    .and_then(parse_hex)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExpResult {
            kind: kind_from_json(field(value, "kind")?)?,
            policy: policy_from_json(field(value, "policy")?)?,
            outcome: outcome_from_json(field(value, "outcome")?)?,
            validated,
            wg_breakdown,
            violations,
            digest_trail,
            snapshots: Vec::new(),
            profile,
            hot: None,
            attribution: Vec::new(),
        })
    }

    fn cancelled(&self) -> Option<(Cycle, CancelCause)> {
        self.outcome.cancelled()
    }
}

impl Artifact for Vec<Cell> {
    fn to_json(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|cell| match cell {
                    Cell::Num(n) => obj(vec![("num", Value::Num(*n))]),
                    Cell::Text(t) => obj(vec![("text", Value::Str(t.clone()))]),
                    Cell::Deadlock => Value::Str("deadlock".into()),
                    Cell::Missing => Value::Str("missing".into()),
                })
                .collect(),
        )
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        value
            .as_array()
            .ok_or_else(|| "cell row is not an array".to_owned())?
            .iter()
            .map(|item| match item {
                Value::Str(s) if s == "deadlock" => Ok(Cell::Deadlock),
                Value::Str(s) if s == "missing" => Ok(Cell::Missing),
                Value::Object(_) => {
                    if let Some(n) = item.get("num").and_then(Value::as_f64) {
                        Ok(Cell::Num(n))
                    } else if let Some(t) = item.get("text").and_then(Value::as_str) {
                        Ok(Cell::Text(t.to_owned()))
                    } else {
                        Err("cell object has neither \"num\" nor \"text\"".into())
                    }
                }
                other => Err(format!("unrecognized cell {other:?}")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_instrumented, Instrumentation};
    use crate::scale::Scale;
    use awg_core::policies::build_policy;

    fn assert_result_round_trips(r: &ExpResult) {
        let encoded = r.to_json();
        // Through text, as the journal stores it.
        let text = encoded.to_json();
        let reparsed = awg_sim::json::parse(&text).expect("codec output parses");
        let back = ExpResult::from_json(&reparsed).expect("codec round-trips");
        assert_eq!(back.kind, r.kind);
        assert_eq!(back.policy, r.policy);
        assert_eq!(back.validated, r.validated);
        assert_eq!(back.wg_breakdown, r.wg_breakdown);
        assert_eq!(back.violations, r.violations);
        assert_eq!(back.digest_trail, r.digest_trail);
        assert_eq!(back.cycles(), r.cycles());
        assert_eq!(back.deadlocked(), r.deadlocked());
        assert_eq!(back.atomics(), r.atomics());
        assert_eq!(back.breakdown(), r.breakdown());
        assert_eq!(back.cancelled(), r.cancelled());
        // Stats re-render identically (same names, same values, same order).
        assert_eq!(
            back.outcome.summary().stats.to_string(),
            r.outcome.summary().stats.to_string()
        );
        match (&back.outcome.hang_report(), &r.outcome.hang_report()) {
            (Some(b), Some(o)) => assert_eq!(b.to_string(), o.to_string()),
            (None, None) => {}
            other => panic!("hang report presence diverged: {other:?}"),
        }
        match (&back.profile, &r.profile) {
            (Some(b), Some(o)) => {
                assert_eq!(b.sim_cycles, o.sim_cycles);
                assert_eq!(b.events, o.events);
                assert_eq!(b.total_wall, o.total_wall);
                assert_eq!(b.per_subsystem, o.per_subsystem);
            }
            (None, None) => {}
            other => panic!("profile presence diverged: {other:?}"),
        }
    }

    #[test]
    fn completed_profiled_result_round_trips() {
        let scale = Scale::quick();
        let r = run_instrumented(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            build_policy(PolicyKind::Awg),
            &scale,
            crate::run::ExperimentConfig::NonOversubscribed,
            None,
            Instrumentation::profiled(),
        );
        assert!(r.is_valid_completion());
        assert!(!r.digest_trail.is_empty() || r.cycles().unwrap() < crate::run::DIGEST_WINDOW);
        assert_result_round_trips(&r);
    }

    #[test]
    fn deadlocked_result_round_trips_with_hang_report() {
        let scale = Scale::quick();
        let r = run_instrumented(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Baseline,
            build_policy(PolicyKind::Baseline),
            &scale,
            crate::run::ExperimentConfig::Oversubscribed,
            None,
            Instrumentation::checked(),
        );
        assert!(r.deadlocked());
        assert!(r.outcome.hang_report().is_some());
        assert_result_round_trips(&r);
    }

    #[test]
    fn cancelled_result_round_trips_with_cause() {
        use awg_gpu::Watchdog;
        let scale = Scale::quick();
        let r = crate::run::run_watched(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Baseline,
            build_policy(PolicyKind::Baseline),
            &scale,
            crate::run::ExperimentConfig::Oversubscribed,
            None,
            Instrumentation::none(),
            Some(Watchdog::new(None, Some(500))),
        );
        let (at, cause) = r.cancelled().expect("watchdog must cancel the spin");
        assert!(at <= 501 + 1_000, "cancelled late: {at}");
        assert_eq!(cause, CancelCause::CycleBudget(500));
        assert_result_round_trips(&r);
    }

    #[test]
    fn cell_rows_round_trip() {
        let row = vec![
            Cell::Num(1234.5),
            Cell::Num(-0.25),
            Cell::Text("AWG".into()),
            Cell::Deadlock,
            Cell::Missing,
        ];
        let text = Artifact::to_json(&row).to_json();
        let back = Vec::<Cell>::from_json(&awg_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn policy_codec_covers_parameterized_kinds() {
        for kind in [
            PolicyKind::Baseline,
            PolicyKind::Sleep,
            PolicyKind::SleepMax(64_000),
            PolicyKind::Timeout,
            PolicyKind::TimeoutInterval(5_000),
            PolicyKind::MonRsAll,
            PolicyKind::MonRAll,
            PolicyKind::MonNrAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
            PolicyKind::MinResume,
        ] {
            let back = policy_from_json(&policy_to_json(kind)).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn digests_survive_full_64_bits() {
        let word = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = hex(word).to_json();
        let back = awg_sim::json::parse(&text).unwrap();
        assert_eq!(parse_hex(back.as_str().unwrap()).unwrap(), word);
    }

    #[test]
    fn decode_rejects_structural_garbage() {
        for bad in [
            "null",
            "{}",
            r#"{"kind":"NOPE","policy":{"name":"Awg"}}"#,
            r#"{"kind":"SPM_G","policy":{"name":"Warp9"}}"#,
        ] {
            let v = awg_sim::json::parse(bad).unwrap();
            assert!(ExpResult::from_json(&v).is_err(), "accepted {bad}");
        }
    }
}
