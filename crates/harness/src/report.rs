//! Tabular reports rendered as Markdown or CSV.

use std::fmt::Write as _;

/// One report cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A numeric value.
    Num(f64),
    /// Free-form text.
    Text(String),
    /// The run deadlocked (Fig 15's "DEADLOCK" bars).
    Deadlock,
    /// No value for this combination (e.g. Sleep on unmodified benchmarks).
    Missing,
}

impl Cell {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Cell::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn render(&self) -> String {
        match self {
            Cell::Num(v) => {
                if v.abs() >= 100.0 {
                    format!("{v:.0}")
                } else if v.abs() >= 10.0 {
                    format!("{v:.1}")
                } else {
                    format!("{v:.2}")
                }
            }
            Cell::Text(t) => t.clone(),
            Cell::Deadlock => "DEADLOCK".into(),
            Cell::Missing => "—".into(),
        }
    }

    fn render_csv(&self) -> String {
        match self {
            Cell::Num(v) => format!("{v}"),
            Cell::Text(t) => t.replace(',', ";"),
            Cell::Deadlock => "DEADLOCK".into(),
            Cell::Missing => String::new(),
        }
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_owned())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

/// One labelled report row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (benchmark abbreviation, config key, …).
    pub label: String,
    /// Cells, one per column.
    pub cells: Vec<Cell>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, cells: Vec<Cell>) -> Self {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// A rendered experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Report title (figure/table name).
    pub title: String,
    /// Column headers (excluding the row-label column).
    pub columns: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
    /// Free-form notes appended below the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Report {
            title: title.into(),
            columns: columns.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.cells.len(),
            self.columns.len(),
            "row '{}' has {} cells for {} columns",
            row.label,
            row.cells.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Looks up a cell by row label and column name.
    pub fn cell(&self, row: &str, column: &str) -> Option<&Cell> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.label == row)
            .and_then(|r| r.cells.get(col))
    }

    /// Renders a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| | {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|---|{}|",
            self.columns
                .iter()
                .map(|_| "---:")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let cells: Vec<String> = row.cells.iter().map(Cell::render).collect();
            let _ = writeln!(out, "| **{}** | {} |", row.label, cells.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n_{note}_");
        }
        out
    }

    /// Renders CSV (first column is the row label).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "label,{}", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.cells.iter().map(Cell::render_csv).collect();
            let _ = writeln!(out, "{},{}", row.label.replace(',', ";"), cells.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Fig X", vec!["A", "B"]);
        r.push(Row::new("SPM_G", vec![Cell::Num(1.5), Cell::Deadlock]));
        r.push(Row::new("FAM_G", vec![Cell::Num(123.4), Cell::Missing]));
        r.note("normalized to Baseline");
        r
    }

    #[test]
    fn markdown_renders_all_parts() {
        let md = sample().to_markdown();
        assert!(md.contains("## Fig X"));
        assert!(md.contains("| **SPM_G** | 1.50 | DEADLOCK |"));
        assert!(md.contains("| **FAM_G** | 123 | — |"));
        assert!(md.contains("_normalized to Baseline_"));
    }

    #[test]
    fn csv_renders() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("label,A,B\n"));
        assert!(csv.contains("SPM_G,1.5,DEADLOCK"));
    }

    #[test]
    fn cell_lookup() {
        let r = sample();
        assert_eq!(r.cell("SPM_G", "A"), Some(&Cell::Num(1.5)));
        assert_eq!(r.cell("SPM_G", "B"), Some(&Cell::Deadlock));
        assert_eq!(r.cell("nope", "A"), None);
        assert_eq!(r.cell("SPM_G", "C"), None);
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn mismatched_row_rejected() {
        let mut r = Report::new("t", vec!["A"]);
        r.push(Row::new("x", vec![Cell::Num(1.0), Cell::Num(2.0)]));
    }

    #[test]
    fn number_formatting_scales() {
        assert_eq!(Cell::Num(0.123).render(), "0.12");
        assert_eq!(Cell::Num(12.34).render(), "12.3");
        assert_eq!(Cell::Num(1234.5).render(), "1234");
    }
}
