//! Fig 13: size of the CP's scheduling data structures per benchmark.
//!
//! As in the paper, this is the worst case "assuming no SyncMon Cache":
//! every concurrent waiting condition, monitored address, and waiting WG
//! spills to the CP. The concurrency bounds derive from each benchmark's
//! Table 2 characteristics.

use awg_core::cp::{ADDR_ENTRY_BYTES, COND_ENTRY_BYTES, TABLE_ENTRY_BYTES, WG_ENTRY_BYTES};
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::supervisor::{job_digest, sim_job, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// Worst-case concurrent quantities for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpDemand {
    /// Simultaneous waiting conditions.
    pub conditions: u64,
    /// Simultaneous monitored addresses.
    pub addresses: u64,
    /// Simultaneous waiting WGs.
    pub wgs: u64,
}

/// Computes the worst-case CP demand of a benchmark.
pub fn demand(kind: BenchmarkKind, scale: &Scale) -> CpDemand {
    let p = &scale.params;
    let c = kind.characteristics();
    let g = p.num_wgs;
    let vars = c.sync_vars.eval(p);
    // At most G WGs wait at once; each holds one condition.
    let wgs = (c.conds_per_var.eval(p) * c.waiters_per_cond.eval(p) * vars).min(g);
    let conditions = (vars * c.conds_per_var.eval(p)).min(g);
    let addresses = vars.min(conditions);
    CpDemand {
        conditions,
        addresses,
        wgs,
    }
}

/// Renders the Fig 13 series (sizes in KB).
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Renders the Fig 13 series with one (cheap, pure-accounting) supervised
/// job per benchmark.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Fig 13: CP scheduling data structures (KB, worst case, no SyncMon cache)",
        vec![
            "Waiting Conditions",
            "Monitored Addresses",
            "Waiting WGs",
            "Monitor Table",
            "Total",
        ],
    );
    let jobs = BenchmarkKind::all()
        .into_iter()
        .map(|kind| {
            let key = format!("fig13/{}", kind.abbreviation());
            let digest = job_digest(&key, scale, &[]);
            sim_job(key, digest, move |_ctl| {
                let d = demand(kind, scale);
                let conds_kb = (d.conditions * COND_ENTRY_BYTES) as f64 / 1024.0;
                let addrs_kb = (d.addresses * ADDR_ENTRY_BYTES) as f64 / 1024.0;
                let wgs_kb = (d.wgs * WG_ENTRY_BYTES) as f64 / 1024.0;
                let table_kb = (d.conditions * TABLE_ENTRY_BYTES) as f64 / 1024.0;
                vec![
                    Cell::Num(conds_kb),
                    Cell::Num(addrs_kb),
                    Cell::Num(wgs_kb),
                    Cell::Num(table_kb),
                    Cell::Num(conds_kb + addrs_kb + wgs_kb + table_kb),
                ]
            })
        })
        .collect();
    for (kind, out) in BenchmarkKind::all().into_iter().zip(sup.run(jobs)) {
        let cells = match out.result {
            Ok(cells) => cells,
            Err(e) => vec![pool::error_cell(&e); 5],
        };
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Paper reports up to ~20 KB across the suite; WG context storage (0.74-3.11 MB) is tracked separately.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_kilobytes_not_megabytes() {
        let r = run(&Scale::paper());
        for row in &r.rows {
            let total = row.cells[4].as_num().unwrap();
            assert!(total > 0.0 && total < 32.0, "{}: {total} KB", row.label);
        }
    }

    #[test]
    fn centralized_mutex_demand_is_waiter_bound() {
        let d = demand(BenchmarkKind::SpinMutexGlobal, &Scale::paper());
        assert_eq!(d.conditions, 1);
        assert_eq!(d.addresses, 1);
        assert_eq!(d.wgs, 80);
    }

    #[test]
    fn decentralized_demand_scales_with_g() {
        let d = demand(BenchmarkKind::SleepMutexGlobal, &Scale::paper());
        assert_eq!(d.conditions, 80);
        assert_eq!(d.wgs, 80);
    }
}
