//! Experiment scales: the paper-sized configuration and a quick variant
//! for tests and Criterion benches.

use awg_gpu::GpuConfig;
use awg_sim::{us_to_cycles, Cycle};
use awg_workloads::WorkloadParams;

/// A full experiment configuration: workload parameters plus machine.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Workload parameters.
    pub params: WorkloadParams,
    /// Machine configuration.
    pub gpu: GpuConfig,
    /// Cycle at which the oversubscribed experiment removes a CU.
    pub resource_loss_at: Cycle,
    /// Which CU the oversubscribed experiment removes.
    pub lost_cu: usize,
}

impl Scale {
    /// The paper's configuration: Table 1 machine, exactly-filling kernels
    /// (G = 80, L = 10), CU 7 removed at 50 µs (§VI).
    pub fn paper() -> Self {
        let mut gpu = GpuConfig::isca2020_baseline();
        // Tight enough that Fig 15's Baseline deadlocks resolve quickly,
        // loose enough that no legitimate wait (max timeout 100k) trips it.
        gpu.quiescence_cycles = 600_000;
        Scale {
            params: WorkloadParams::isca2020(),
            gpu,
            resource_loss_at: us_to_cycles(50.0),
            lost_cu: 7,
        }
    }

    /// A scaled-down configuration (2 CUs, 16 WGs) preserving the
    /// experiments' structure — kernels exactly fill the machine, so the
    /// resource-loss event still oversubscribes it.
    pub fn quick() -> Self {
        let mut gpu = GpuConfig::isca2020_baseline();
        gpu.num_cus = 2;
        gpu.quiescence_cycles = 600_000;
        Scale {
            params: WorkloadParams {
                num_wgs: 20,
                wgs_per_cluster: 10,
                iterations: 2,
                cs_compute: 150,
                cs_data_words: 2,
                seed: 11,
            },
            gpu,
            resource_loss_at: 3_000,
            lost_cu: 1,
        }
    }

    /// Total WG capacity of the machine for a 4-wavefront kernel.
    pub fn machine_capacity(&self) -> u64 {
        (self.gpu.num_cus as u64) * (self.gpu.wf_slots_per_cu() as u64 / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_exactly_fills_machine() {
        let s = Scale::paper();
        assert_eq!(s.machine_capacity(), s.params.num_wgs);
        assert_eq!(s.resource_loss_at, 100_000);
    }

    #[test]
    fn quick_scale_exactly_fills_machine() {
        let s = Scale::quick();
        assert_eq!(s.machine_capacity(), s.params.num_wgs);
        assert!(s.lost_cu < s.gpu.num_cus);
    }
}
