//! The process exit-code contract, in one place.
//!
//! Every front end (the `awg-repro` CLI, CI scripts, the future campaign
//! server) maps failure classes to these codes; tests assert them over the
//! real binary. Keep this table in sync with the exit-code table in
//! `README.md` ("Trust but verify").

/// Success: the command ran to completion and every job produced a result.
pub const EXIT_OK: u8 = 0;

/// Generic failure (I/O errors, invalid reproduction results).
pub const EXIT_FAIL: u8 = 1;

/// Usage error: unknown command or malformed flags.
pub const EXIT_USAGE: u8 = 2;

/// A replayed run hung (deadlock or cycle-limit) — the reproducer's
/// expected outcome for shrunk fault plans.
pub const EXIT_HANG: u8 = 3;

/// The invariant oracle caught the machine violating a machine-wide
/// invariant.
pub const EXIT_INVARIANT: u8 = 4;

/// A fault-plan file could not be parsed.
pub const EXIT_PLAN: u8 = 5;

/// Partial completion: the campaign finished, but at least one job
/// exhausted its retry budget (timeout or panic) and its rows are ERROR
/// markers rather than measurements.
pub const EXIT_PARTIAL: u8 = 6;

/// A machine snapshot failed validation on restore (truncated, bit-flipped,
/// stale format version, or from a different run configuration). Restore
/// fails closed: no partially-overlaid machine is ever run.
pub const EXIT_CORRUPT: u8 = 7;

/// The conformance matrix regressed: the observed policy × progress-model
/// classification differs from the committed expected matrix
/// (`results/conformance_expected.csv`). Re-bless deliberate changes with
/// `BLESS=1`.
pub const EXIT_CONFORMANCE: u8 = 8;

/// The bench campaign regressed: aggregate Mcycles/s fell below the
/// committed baseline snapshot by more than `--max-regress` percent
/// (`bench --compare <BENCH_*.json>`). Re-bless deliberate slowdowns by
/// committing a fresh snapshot.
pub const EXIT_REGRESSION: u8 = 9;

/// The campaign was interrupted (SIGINT/SIGTERM); the journal was flushed
/// and a resume command printed. 128 + SIGINT(2), the shell convention.
pub const EXIT_INTERRUPTED: u8 = 130;

/// The full exit-code table: `(code, meaning)`, ascending.
pub const EXIT_TABLE: &[(u8, &str)] = &[
    (EXIT_OK, "success"),
    (
        EXIT_FAIL,
        "failure (I/O error or invalid reproduction result)",
    ),
    (EXIT_USAGE, "usage error (unknown command or flag)"),
    (EXIT_HANG, "replayed run hung (deadlock or cycle limit)"),
    (EXIT_INVARIANT, "invariant oracle violation"),
    (EXIT_PLAN, "fault plan parse error"),
    (
        EXIT_PARTIAL,
        "partial completion (some jobs exhausted retries; rows marked ERROR)",
    ),
    (
        EXIT_CORRUPT,
        "corrupt machine snapshot (restore refused; no state was overlaid)",
    ),
    (
        EXIT_CONFORMANCE,
        "conformance matrix regression (observed matrix differs from the committed expected CSV)",
    ),
    (
        EXIT_REGRESSION,
        "perf regression (bench aggregate fell below the baseline snapshot by more than --max-regress)",
    ),
    (
        EXIT_INTERRUPTED,
        "interrupted (SIGINT/SIGTERM); journal flushed, resume command printed",
    ),
];

/// The exit-code table rendered for `--help` output, one code per line.
pub fn exit_table_text() -> String {
    let mut out = String::from("Exit codes:\n");
    for (code, meaning) in EXIT_TABLE {
        out.push_str(&format!("  {code:>3}  {meaning}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_and_sorted() {
        let codes: Vec<u8> = EXIT_TABLE.iter().map(|&(c, _)| c).collect();
        assert_eq!(
            codes,
            vec![
                EXIT_OK,
                EXIT_FAIL,
                EXIT_USAGE,
                EXIT_HANG,
                EXIT_INVARIANT,
                EXIT_PLAN,
                EXIT_PARTIAL,
                EXIT_CORRUPT,
                EXIT_CONFORMANCE,
                EXIT_REGRESSION,
                EXIT_INTERRUPTED
            ]
        );
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn help_text_names_every_code() {
        let text = exit_table_text();
        for (code, meaning) in EXIT_TABLE {
            assert!(text.contains(&format!("{code:>3}  ")), "{text}");
            assert!(text.contains(meaning), "{text}");
        }
    }
}
