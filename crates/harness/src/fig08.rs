//! Fig 8: fixed timeout-interval sweep, normalized to the Baseline.
//!
//! Paper shape: different primitives prefer different intervals, and some
//! intervals are much worse than busy-waiting — the motivation for actual
//! hardware waiting support.

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The swept timeout intervals, in cycles (Fig 8's Timeout-10k…100k).
pub const TIMEOUT_SWEEP: [u64; 4] = [10_000, 20_000, 50_000, 100_000];

/// Runs the Fig 8 sweep.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 8 sweep under `sup`: one supervised job per (benchmark,
/// interval) cell, merged back in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut columns = vec!["Baseline".to_owned()];
    columns.extend(
        TIMEOUT_SWEEP
            .iter()
            .map(|i| format!("Timeout-{}k", i / 1000)),
    );
    let mut r = Report::new(
        "Fig 8: Timeout interval (runtime normalized to Baseline)",
        columns.iter().map(String::as_str).collect(),
    );
    let mut jobs = Vec::new();
    for kind in BenchmarkKind::heterosync_suite() {
        let key = format!("fig08/{}/Baseline", kind.abbreviation());
        let digest = job_digest(&key, scale, &[]);
        jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
            ctl.run_experiment(
                kind,
                PolicyKind::Baseline,
                scale,
                ExperimentConfig::NonOversubscribed,
            )
        }));
        for interval in TIMEOUT_SWEEP {
            let key = format!("fig08/{}/Timeout-{}k", kind.abbreviation(), interval / 1000);
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_experiment(
                    kind,
                    PolicyKind::TimeoutInterval(interval),
                    scale,
                    ExperimentConfig::NonOversubscribed,
                )
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in BenchmarkKind::heterosync_suite() {
        let base = outputs.next().expect("one baseline job per benchmark");
        let swept: Vec<_> = TIMEOUT_SWEEP
            .iter()
            .map(|_| outputs.next().expect("one job per swept interval"))
            .collect();
        let Some(base_cycles) = base.result.as_ref().ok().and_then(|res| res.cycles()) else {
            r.push(Row::new(
                kind.abbreviation(),
                vec![Cell::Deadlock; TIMEOUT_SWEEP.len() + 1],
            ));
            continue;
        };
        let mut cells = vec![Cell::Num(1.0)];
        for out in &swept {
            cells.push(match &out.result {
                Ok(res) => match res.cycles() {
                    Some(c) => Cell::Num(c as f64 / base_cycles as f64),
                    None => Cell::Deadlock,
                },
                Err(e) => pool::error_cell(e),
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better. Paper shape: no single best interval; some intervals much worse than Baseline.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_completes_everywhere() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 12);
        for row in &r.rows {
            for c in &row.cells {
                assert!(c.as_num().is_some(), "{}: {c:?}", row.label);
            }
        }
    }
}
