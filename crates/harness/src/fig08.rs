//! Fig 8: fixed timeout-interval sweep, normalized to the Baseline.
//!
//! Paper shape: different primitives prefer different intervals, and some
//! intervals are much worse than busy-waiting — the motivation for actual
//! hardware waiting support.

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::run::{run_experiment, ExperimentConfig};
use crate::{Cell, Report, Row, Scale};

/// The swept timeout intervals, in cycles (Fig 8's Timeout-10k…100k).
pub const TIMEOUT_SWEEP: [u64; 4] = [10_000, 20_000, 50_000, 100_000];

/// Runs the Fig 8 sweep.
pub fn run(scale: &Scale) -> Report {
    let mut columns = vec!["Baseline".to_owned()];
    columns.extend(
        TIMEOUT_SWEEP
            .iter()
            .map(|i| format!("Timeout-{}k", i / 1000)),
    );
    let mut r = Report::new(
        "Fig 8: Timeout interval (runtime normalized to Baseline)",
        columns.iter().map(String::as_str).collect(),
    );
    for kind in BenchmarkKind::heterosync_suite() {
        let base = run_experiment(
            kind,
            PolicyKind::Baseline,
            scale,
            ExperimentConfig::NonOversubscribed,
        );
        let Some(base_cycles) = base.cycles() else {
            r.push(Row::new(
                kind.abbreviation(),
                vec![Cell::Deadlock; TIMEOUT_SWEEP.len() + 1],
            ));
            continue;
        };
        let mut cells = vec![Cell::Num(1.0)];
        for interval in TIMEOUT_SWEEP {
            let res = run_experiment(
                kind,
                PolicyKind::TimeoutInterval(interval),
                scale,
                ExperimentConfig::NonOversubscribed,
            );
            cells.push(match res.cycles() {
                Some(c) => Cell::Num(c as f64 / base_cycles as f64),
                None => Cell::Deadlock,
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better. Paper shape: no single best interval; some intervals much worse than Baseline.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_completes_everywhere() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 12);
        for row in &r.rows {
            for c in &row.cells {
                assert!(c.as_num().is_some(), "{}: {c:?}", row.label);
            }
        }
    }
}
