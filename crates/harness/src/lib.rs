//! Experiment harness regenerating every measured table and figure of
//! *Independent Forward Progress of Work-groups* (ISCA 2020).
//!
//! Each `figXX`/`tableX` module produces a [`Report`] with the same rows
//! and series the paper plots; the `awg-repro` binary renders them as
//! Markdown tables and CSV files. See `EXPERIMENTS.md` at the repository
//! root for the paper-vs-measured record.
//!
//! # Example
//!
//! ```
//! use awg_harness::{table1, Scale};
//!
//! let report = table1::run(&Scale::quick());
//! assert!(report.to_markdown().contains("Compute Units"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod artifact;
pub mod bench;
pub mod chaos;
pub mod checkpointing;
pub mod conformance;
pub mod exit;
pub mod fairness;
pub mod fig05;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig11;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod journal;
pub mod pool;
pub mod priority;
pub mod profile;
pub mod report;
pub mod run;
pub mod scale;
pub mod shrink;
pub mod supervisor;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod timeline;
pub mod tracefig;

pub use artifact::Artifact;
pub use checkpointing::{
    corrupt_snapshot, restore_run, result_fingerprint, run_checkpointed, run_identity,
    CheckpointedRun, SnapshotCorruption, DEFAULT_CHECKPOINT_EVERY,
};
pub use journal::{JobStatus, Journal, JournalRecord, ResumeState};
pub use pool::{job, CampaignProfile, Job, JobOutput, Pool};
pub use report::{Cell, Report, Row};
pub use run::{
    geomean, run_experiment, run_instrumented, run_with_policy, run_with_policy_under_plan,
    ExpResult, ExperimentConfig, Instrumentation, DIGEST_WINDOW,
};
pub use scale::Scale;
pub use shrink::{shrink, still_hangs, ShrinkResult};
pub use supervisor::{
    job_digest, sim_job, CheckpointPolicy, JobCtl, JobLimits, SimJob, Supervisor,
};
