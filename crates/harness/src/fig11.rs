//! Fig 11: WG execution-time break-down (running vs waiting), normalized
//! to Timeout.
//!
//! Paper shape: MonNR-One manages contended mutexes well (little waiting),
//! MonNR-All wins on the centralized barriers where all waiters must start
//! at once; each is deficient on the other class.

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The ten benchmarks Fig 11 plots (the suite minus the backoff variants).
pub fn benchmarks() -> [BenchmarkKind; 10] {
    use BenchmarkKind::*;
    [
        SpinMutexGlobal,
        FaMutexGlobal,
        SleepMutexGlobal,
        SpinMutexLocal,
        FaMutexLocal,
        SleepMutexLocal,
        TreeBarrier,
        LfTreeBarrier,
        TreeBarrierExchange,
        LfTreeBarrierExchange,
    ]
}

/// The compared policies.
pub const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Timeout,
    PolicyKind::MonNrAll,
    PolicyKind::MonNrOne,
];

/// Runs the Fig 11 break-down.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 11 break-down under `sup`: one supervised job per
/// (benchmark, policy) cell, merged back in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Fig 11: WG execution break-down (normalized to Timeout total)",
        vec![
            "Timeout run",
            "Timeout wait",
            "MonNR-All run",
            "MonNR-All wait",
            "MonNR-One run",
            "MonNR-One wait",
        ],
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in POLICIES {
            let key = format!("fig11/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_experiment(kind, policy, scale, ExperimentConfig::NonOversubscribed)
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        let mut cells = Vec::with_capacity(6);
        let mut norm: Option<f64> = None;
        for _ in POLICIES {
            let out = outputs.next().expect("one job per compared policy");
            let res = match &out.result {
                Ok(res) => res,
                Err(e) => {
                    cells.push(pool::error_cell(e));
                    cells.push(pool::error_cell(e));
                    continue;
                }
            };
            if !res.outcome.is_completed() {
                cells.push(Cell::Deadlock);
                cells.push(Cell::Deadlock);
                continue;
            }
            let (running, waiting) = res.breakdown();
            let total = (running + waiting) as f64;
            let norm = *norm.get_or_insert(total.max(1.0));
            cells.push(Cell::Num(running as f64 / norm));
            cells.push(Cell::Num(waiting as f64 / norm));
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Each pair sums to that policy's total WG time relative to Timeout's. Paper shape: MonNR-One best for mutexes, MonNR-All best for barriers.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_breakdown_normalizes_to_timeout() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 10);
        for row in &r.rows {
            let t_run = row.cells[0].as_num().unwrap();
            let t_wait = row.cells[1].as_num().unwrap();
            assert!(
                (t_run + t_wait - 1.0).abs() < 1e-9,
                "{}: Timeout pair must sum to 1",
                row.label
            );
        }
    }
}
