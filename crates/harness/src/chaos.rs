//! The differential chaos harness: clean vs seeded-fault runs.
//!
//! The paper's §V.A liveness argument says IFP policies guarantee forward
//! progress *under adversity*. This module makes that claim falsifiable:
//! every (benchmark × IFP policy) pair runs once clean and twice under each
//! seeded [`FaultPlan`], asserting that
//!
//! 1. completion and memory-state validation are fault-invariant,
//! 2. the same seed reproduces a bit-identical run, and
//! 3. Baseline still deadlocks when oversubscribed — now with a forensic
//!    hang report naming the stuck WGs instead of a bare cycle count.
//!
//! Any reported hang is reproducible from its `(benchmark, policy, seed)`
//! triple alone.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{FaultPlan, FaultPlanConfig};
use awg_sim::first_divergence;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, CampaignProfile, Pool};
use crate::run::{run_instrumented, ExpResult, ExperimentConfig, Instrumentation, DIGEST_WINDOW};
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The default seeds of the chaos matrix (CI and the `chaos` subcommand).
pub const DEFAULT_SEEDS: [u64; 3] = [101, 202, 303];

/// The policy arm of the matrix: every design that claims forward progress
/// (plus Sleep, which only claims it while all WGs stay resident).
pub fn policies() -> [PolicyKind; 5] {
    [
        PolicyKind::Awg,
        PolicyKind::MonNrOne,
        PolicyKind::MonNrAll,
        PolicyKind::Sleep,
        PolicyKind::Timeout,
    ]
}

/// The benchmark arm: one spin lock, one ticket lock, one barrier.
pub fn benchmarks() -> [BenchmarkKind; 3] {
    [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::TreeBarrier,
    ]
}

/// The seeded plan used for `policy` at `scale`. The injection window is
/// anchored to the scale's mid-run marker (`resource_loss_at`) so faults
/// land while kernels are actually executing at any machine size.
/// Architectures that cannot reschedule a preempted WG (Sleep) get the
/// resident-safe mix: a stranded resident is an architectural limitation
/// already covered by Fig 15, not a chaos finding.
pub fn plan_for(policy: PolicyKind, scale: &Scale, seed: u64) -> FaultPlan {
    let mut cfg = FaultPlanConfig::standard(scale.gpu.num_cus);
    cfg.start = scale.resource_loss_at / 3;
    cfg.horizon = scale.resource_loss_at * 6;
    if !build_policy(policy).supports_wg_rescheduling() {
        cfg = cfg.resident_safe();
    }
    FaultPlan::generate(seed, &cfg)
}

/// Runs `kind` under `policy` with the seeded fault plan installed, the
/// invariant oracle on, a per-window digest trail recorded, and the host
/// self-profile collected (telemetry is a pure observer, so the digests
/// and oracle verdicts are identical to an unprofiled run).
pub fn run_faulted(kind: BenchmarkKind, policy: PolicyKind, scale: &Scale, seed: u64) -> ExpResult {
    run_instrumented(
        kind,
        policy,
        build_policy(policy),
        scale,
        ExperimentConfig::NonOversubscribed,
        Some(plan_for(policy, scale, seed)),
        Instrumentation::profiled(),
    )
}

/// A bit-exact digest of a run, for same-seed determinism checks.
pub fn fingerprint(r: &ExpResult) -> Vec<u64> {
    let s = r.outcome.summary();
    vec![
        s.cycles,
        s.insts,
        s.atomics,
        s.running_cycles,
        s.waiting_cycles,
        s.switches_out,
        s.switches_in,
        s.resumes,
        s.unnecessary_resumes,
    ]
}

/// Runs the full differential matrix, returning the report and the number
/// of violated invariants (0 = pass; the `chaos` subcommand exits non-zero
/// otherwise).
pub fn run_checked(scale: &Scale, seeds: &[u64]) -> (Report, usize) {
    let (report, violations, _) =
        run_checked_supervised(scale, seeds, &Supervisor::bare(Pool::serial()));
    (report, violations)
}

/// Runs the full differential matrix under `sup`: one supervised job per
/// run — clean, and two per seed for the same-seed comparison — merged
/// back in strict matrix order, so the report (cells *and* notes) is
/// byte-identical to the serial run at any concurrency (and to a
/// `--resume`d run). Faulted-job digests additionally cover the serialized
/// fault plan, so a plan-generation change invalidates journaled results
/// instead of silently resuming stale ones. Also returns the campaign's
/// host-side accounting (per-job wall-clock, absorbed run stats, and the
/// aggregate self-profile).
pub fn run_checked_supervised(
    scale: &Scale,
    seeds: &[u64],
    sup: &Supervisor,
) -> (Report, usize, CampaignProfile) {
    let mut columns: Vec<String> = vec!["clean".into()];
    for s in seeds {
        columns.push(format!("seed {s}"));
    }
    columns.push("worst ×".into());
    columns.push("deterministic".into());
    let mut report = Report {
        title: "Chaos matrix: clean vs seeded fault plans".into(),
        columns,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let mut violations = 0usize;

    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in policies() {
            let label = format!("chaos/{}/{}", kind.abbreviation(), policy.label());
            let key = format!("{label}/clean");
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_checkpointed(
                    kind,
                    policy,
                    scale,
                    ExperimentConfig::NonOversubscribed,
                    None,
                    Instrumentation::profiled(),
                )
            }));
            for &seed in seeds {
                for arm in ["a", "b"] {
                    let key = format!("{label}/seed-{seed}/{arm}");
                    let plan = plan_for(policy, scale, seed);
                    let digest = job_digest(&key, scale, &[plan.to_json().as_str()]);
                    jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                        ctl.run_checkpointed(
                            kind,
                            policy,
                            scale,
                            ExperimentConfig::NonOversubscribed,
                            Some(plan.clone()),
                            Instrumentation::profiled(),
                        )
                    }));
                }
            }
        }
    }
    {
        let key = "chaos/control/TB_LG/Baseline";
        let digest = job_digest(key, scale, &[]);
        jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
            ctl.run_checkpointed(
                BenchmarkKind::TreeBarrier,
                PolicyKind::Baseline,
                scale,
                ExperimentConfig::Oversubscribed,
                None,
                Instrumentation::profiled(),
            )
        }));
    }
    let mut profile = CampaignProfile::default();
    let mut outputs = sup.run(jobs).into_iter();
    // Timings and stats absorb in job order (the same order the report
    // consumes), so the campaign profile is deterministic too.
    let mut next = move |profile: &mut CampaignProfile| {
        let out = outputs.next().expect("one output per enumerated job");
        profile.absorb_job(&out);
        out
    };

    // Any oracle finding is an invariant violation in its own right,
    // independent of whether the run still completed.
    let oracle_check = |report: &mut Report, label: &str, r: &ExpResult| -> usize {
        if r.violations.is_empty() {
            return 0;
        }
        report.note(format!(
            "{label}: ORACLE: {} invariant violation(s), first: {}",
            r.violations.len(),
            r.violations[0]
        ));
        1
    };

    for kind in benchmarks() {
        for policy in policies() {
            let label = format!("{}/{}", kind.abbreviation(), policy.label());
            let clean_out = next(&mut profile);
            let mut cells = Vec::new();
            let clean = match &clean_out.result {
                Ok(res) => Some(res),
                Err(e) => {
                    violations += 1;
                    report.note(format!("{label}: clean run panicked: {e}"));
                    cells.push(pool::error_cell(e));
                    None
                }
            };
            if let Some(clean) = clean {
                violations += oracle_check(&mut report, &label, clean);
                if clean.is_valid_completion() {
                    cells.push(Cell::Num(clean.cycles().unwrap() as f64));
                } else {
                    violations += 1;
                    report.note(format!(
                        "{label}: clean run failed: {} / {:?}",
                        clean.outcome, clean.validated
                    ));
                    cells.push(Cell::Text("FAIL".into()));
                }
            }
            let mut worst = 1.0f64;
            let mut deterministic = true;
            for &seed in seeds {
                let a_out = next(&mut profile);
                let b_out = next(&mut profile);
                let (a, b) = match (&a_out.result, &b_out.result) {
                    (Ok(a), Ok(b)) => (a, b),
                    (r_a, r_b) => {
                        let e = r_a
                            .as_ref()
                            .err()
                            .or(r_b.as_ref().err())
                            .expect("one arm erred");
                        violations += 1;
                        report.note(format!("{label} seed {seed}: job panicked: {e}"));
                        cells.push(pool::error_cell(e));
                        continue;
                    }
                };
                violations += oracle_check(&mut report, &format!("{label} seed {seed}"), a);
                if fingerprint(a) != fingerprint(b) || a.digest_trail != b.digest_trail {
                    deterministic = false;
                    violations += 1;
                    let window = first_divergence(&a.digest_trail, &b.digest_trail);
                    let locus = match window {
                        Some(w) => format!(
                            "first divergent window {w} (cycles {}..{})",
                            w as u64 * DIGEST_WINDOW,
                            (w as u64 + 1) * DIGEST_WINDOW
                        ),
                        None => format!(
                            "digest trails agree on their common prefix \
                             ({} vs {} windows); runs diverged after the shorter trail ended",
                            a.digest_trail.len(),
                            b.digest_trail.len()
                        ),
                    };
                    report.note(format!(
                        "{label} seed {seed}: same seed, divergent runs ({} vs {}); {locus}",
                        a.outcome, b.outcome
                    ));
                }
                if a.is_valid_completion() {
                    let c = a.cycles().unwrap();
                    if let Some(base) = clean.and_then(|clean| clean.cycles()) {
                        worst = worst.max(c as f64 / base as f64);
                    }
                    cells.push(Cell::Num(c as f64));
                } else {
                    violations += 1;
                    report.note(format!(
                        "{label} seed {seed}: {} / {:?}",
                        a.outcome, a.validated
                    ));
                    if let Some(hang) = a.outcome.hang_report() {
                        for line in hang.to_string().lines() {
                            report.note(line.to_string());
                        }
                    }
                    cells.push(if a.outcome.is_deadlocked() {
                        Cell::Deadlock
                    } else {
                        Cell::Text("FAIL".into())
                    });
                }
            }
            cells.push(Cell::Num(worst));
            cells.push(Cell::Text(if deterministic { "yes" } else { "NO" }.into()));
            report.push(Row::new(label, cells));
        }
    }

    // Control arm: Baseline must still deadlock when oversubscribed, and
    // the watchdog must say who is stuck and on which address. TreeBarrier
    // guarantees resident waiters: the surviving CU's WGs spin on barrier
    // flags the stranded WGs will never set.
    let baseline_out = next(&mut profile);
    match &baseline_out.result {
        Ok(baseline) => {
            violations += oracle_check(&mut report, "control arm Baseline/TB_LG", baseline);
            let forensic = baseline
                .outcome
                .hang_report()
                .is_some_and(|h| h.blocked_on_sync().count() > 0);
            if baseline.deadlocked() && forensic {
                report.note(format!(
                    "control arm — Baseline/{} oversubscribed: {}",
                    BenchmarkKind::TreeBarrier.abbreviation(),
                    baseline.outcome
                ));
                for line in baseline.outcome.hang_report().unwrap().to_string().lines() {
                    report.note(line.to_string());
                }
            } else {
                violations += 1;
                report.note(format!(
                    "control arm FAILED: expected a forensic Baseline deadlock, got {}",
                    baseline.outcome
                ));
            }
        }
        Err(e) => {
            violations += 1;
            report.note(format!("control arm FAILED: {e}"));
        }
    }

    report.note(if violations == 0 {
        "PASS: completion, validation, and determinism are fault-invariant.".into()
    } else {
        format!("{violations} invariant violation(s).")
    });
    (report, violations, profile)
}

/// Runner-compatible entry: the matrix at [`DEFAULT_SEEDS`].
pub fn run(scale: &Scale) -> Report {
    run_checked(scale, &DEFAULT_SEEDS).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_respect_rescheduling_support() {
        let scale = Scale::quick();
        assert!(plan_for(PolicyKind::Awg, &scale, 1).max_cu().is_some());
        assert!(plan_for(PolicyKind::Timeout, &scale, 1).max_cu().is_some());
        assert!(
            plan_for(PolicyKind::Sleep, &scale, 1).max_cu().is_none(),
            "Sleep cannot reschedule preempted WGs; its plans must not unplug CUs"
        );
    }

    #[test]
    fn single_cell_differential_quick() {
        let scale = Scale::quick();
        let a = run_faulted(BenchmarkKind::SpinMutexGlobal, PolicyKind::Awg, &scale, 101);
        let b = run_faulted(BenchmarkKind::SpinMutexGlobal, PolicyKind::Awg, &scale, 101);
        assert!(a.is_valid_completion(), "{} / {:?}", a.outcome, a.validated);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "same seed must be bit-identical"
        );
        assert!(!a.digest_trail.is_empty(), "checked runs record digests");
        assert_eq!(
            a.digest_trail, b.digest_trail,
            "same seed must digest identically window by window"
        );
        assert!(
            a.violations.is_empty(),
            "oracle must stay quiet on a passing run: {:?}",
            a.violations
        );
    }
}
