//! The `timeline` workflow: one benchmark × policy run with the trace
//! recorder and telemetry hub on, exported as a Perfetto-loadable
//! Chrome-Trace-Format document plus its companion artifacts (windowed
//! metric snapshots as JSONL, the host self-profile, and the run's stats
//! with the telemetry distributions absorbed).
//!
//! On top of the machine's own export the harness appends one
//! `wg_attribution` counter track on the global process: at every metric
//! snapshot boundary, the number of WGs currently in each
//! [`AttributionCause`] — executing, waiting on sync, preempted, fault
//! stalled, … — so the cycle-attribution ledger is visible directly in
//! ui.perfetto.dev alongside occupancy and outstanding atomics.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{chrome_trace_builder, expected_counts, Gpu, RunOutcome, TimelineCounts};
use awg_sim::{cycles_to_us, AttributionCause, ProfileReport, Stats, TelemetryConfig};
use awg_workloads::BenchmarkKind;

use crate::run::DIGEST_WINDOW;
use crate::scale::Scale;

/// Everything a timeline run produces.
#[derive(Debug)]
pub struct TimelineRun {
    /// The Chrome-Trace-Format JSON document (load in ui.perfetto.dev).
    pub json: String,
    /// Windowed metric snapshots, one JSON object per line.
    pub snapshots_jsonl: String,
    /// Host self-profiling summary.
    pub profile: Option<ProfileReport>,
    /// The run's stats, including the telemetry distributions
    /// (`telemetry_wake_to_resume_cycles`, per-state cycle totals, …).
    pub stats: Stats,
    /// The raw simulation outcome.
    pub outcome: RunOutcome,
    /// Event counts the export is expected to contain, derived from the
    /// in-memory trace (for validation against the parsed document).
    pub counts: TimelineCounts,
    /// In-memory trace records the export was built from.
    pub records: usize,
    /// Records evicted by the trace ring buffer (0 when unbounded).
    pub dropped: u64,
}

/// Runs `kind` under `policy` with tracing and telemetry enabled and
/// exports the timeline.
///
/// `trace_capacity` bounds the trace ring buffer (`None` keeps every
/// record). A bounded trace still exports valid JSON; evicted records are
/// reported in [`TimelineRun::dropped`].
pub fn run_timeline(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    trace_capacity: Option<usize>,
) -> TimelineRun {
    let policy_box = build_policy(policy);
    let built = kind.build(&scale.params, policy_box.style());
    let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
    gpu.enable_trace();
    gpu.set_trace_capacity(trace_capacity);
    gpu.enable_telemetry(TelemetryConfig {
        snapshot_window: Some(DIGEST_WINDOW),
        profiling: true,
    });
    let outcome = gpu.run();

    let records = gpu.trace_records();
    let mut builder = chrome_trace_builder(&records, scale.gpu.num_cus);
    let mut counts = expected_counts(&records);
    // Appended counter events are on top of what `expected_counts`
    // accounts for: one multi-series sample per snapshot boundary.
    if let Some(hub) = gpu.telemetry() {
        for s in hub.snapshots() {
            let series: Vec<(&str, f64)> = AttributionCause::ALL
                .iter()
                .map(|c| (c.name(), s.cause_counts[c.index()] as f64))
                .collect();
            builder.counter(0, "wg_attribution", cycles_to_us(s.cycle), &series);
            counts.counters += 1;
        }
    }
    let json = builder.finish();
    let snapshots_jsonl = gpu
        .telemetry()
        .map(|hub| {
            hub.snapshots()
                .iter()
                .map(|s| s.to_jsonl())
                .collect::<Vec<_>>()
                .join("\n")
        })
        .unwrap_or_default();
    let profile = gpu.profile_report();
    TimelineRun {
        json,
        snapshots_jsonl,
        profile,
        stats: outcome.summary().stats.clone(),
        outcome,
        counts,
        records: records.len(),
        dropped: gpu.trace_dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_sim::json;

    #[test]
    fn timeline_exports_parse_and_match_counts() {
        let t = run_timeline(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &Scale::quick(),
            None,
        );
        let doc = json::parse(&t.json).expect("timeline must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let count_ph = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                .count() as u64
        };
        assert_eq!(count_ph("X"), t.counts.slices);
        assert_eq!(count_ph("C"), t.counts.counters);
        assert_eq!(count_ph("i"), t.counts.instants);
        assert!(t.counts.slices > 0, "a real run dispatches WGs");
        assert!(!t.snapshots_jsonl.is_empty());
        for line in t.snapshots_jsonl.lines() {
            json::parse(line).expect("snapshot lines must be valid JSON");
        }
        assert!(t.profile.is_some());
    }

    #[test]
    fn bounded_trace_still_exports_valid_json() {
        let t = run_timeline(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &Scale::quick(),
            Some(64),
        );
        assert!(t.records <= 64);
        assert!(t.dropped > 0, "quick SPM produces far more than 64 records");
        json::parse(&t.json).expect("bounded timeline must be valid JSON");
    }
}
