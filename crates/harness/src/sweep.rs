//! SyncMon capacity sweep: how small can the on-chip monitor get before
//! the virtualization path dominates? (The §V.A design argument made
//! quantitative — beyond the paper's figures.)
//!
//! Sweeps the condition-cache capacity from 4 entries to the paper's 1024,
//! with proportional waiter-list slots, and reports runtime normalized to
//! the full-size SyncMon. At every size the kernel must still complete and
//! validate: capacity only costs performance (Monitor Log spills + CP
//! periodic checks), never forward progress.

use awg_core::policies::{AwgPolicy, PolicyKind};
use awg_core::SyncMonConfig;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// Swept condition capacities (sets × 4 ways).
pub const CAPACITIES: [usize; 5] = [4, 16, 64, 256, 1024];

fn config_for(capacity: usize) -> SyncMonConfig {
    SyncMonConfig {
        sets: (capacity / 4).max(1),
        ways: 4.min(capacity),
        waiter_slots: (capacity / 2).max(4),
        bloom_filters: capacity.max(4),
    }
}

/// The benchmarks the sweep exercises (one per behaviour class).
pub fn benchmarks() -> [BenchmarkKind; 4] {
    [
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::SleepMutexGlobal,
        BenchmarkKind::TreeBarrier,
        BenchmarkKind::Pipeline,
    ]
}

/// Runs the capacity sweep.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the capacity sweep under `sup`: one supervised job per (benchmark,
/// capacity) cell. Each job constructs its own [`AwgPolicy`] (policies are
/// not shared across threads), and results merge in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let columns: Vec<String> = CAPACITIES.iter().map(|c| format!("{c} conds")).collect();
    let mut r = Report::new(
        "SyncMon capacity sweep (runtime normalized to the paper's 1024 conditions)",
        columns.iter().map(String::as_str).collect(),
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for &cap in CAPACITIES.iter() {
            let key = format!("sweep/{}/{cap}", kind.abbreviation());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_with_policy(
                    kind,
                    PolicyKind::Awg,
                    Box::new(AwgPolicy::new().with_monitor_config(config_for(cap), 4096)),
                    scale,
                    ExperimentConfig::NonOversubscribed,
                )
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        let results: Vec<_> = CAPACITIES
            .iter()
            .map(|_| outputs.next().expect("one job per swept capacity"))
            .collect();
        let base = results
            .last()
            .and_then(|out| out.result.as_ref().ok())
            .and_then(|r| r.cycles())
            .unwrap_or(1)
            .max(1);
        let cells: Vec<Cell> = results
            .iter()
            .map(|out| match &out.result {
                Ok(res) => match (res.cycles(), &res.validated) {
                    (Some(c), Ok(())) => Cell::Num(c as f64 / base as f64),
                    (Some(_), Err(e)) => Cell::Text(format!("INVALID: {e}")),
                    (None, _) => Cell::Deadlock,
                },
                Err(e) => pool::error_cell(e),
            })
            .collect();
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Left of a row = tiny monitor (spill-heavy CP slow path). IFP must hold at every size.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_capacities_complete_and_validate() {
        let r = run(&Scale::quick());
        for row in &r.rows {
            for (col, cell) in r.columns.iter().zip(&row.cells) {
                assert!(cell.as_num().is_some(), "{} at {col}: {cell:?}", row.label);
            }
        }
    }

    #[test]
    fn full_size_is_the_normalization_base() {
        let r = run(&Scale::quick());
        for row in &r.rows {
            let last = row.cells.last().unwrap().as_num().unwrap();
            assert!((last - 1.0).abs() < 1e-9, "{}", row.label);
        }
    }
}
