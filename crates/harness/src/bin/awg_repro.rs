//! `awg-repro` — regenerate the tables and figures of *Independent Forward
//! Progress of Work-groups* (ISCA 2020).
//!
//! ```text
//! awg-repro [--quick] [--jobs N] [--out DIR] [resilience flags] <command>
//!
//! commands:
//!   table1 table2 fig5 fig7 fig8 fig9 fig11 fig13 fig14 fig15
//!   ablations fairness  extension studies beyond the paper's figures
//!   chaos             differential clean-vs-faulted matrix with the
//!                     invariant oracle on (exits 1 on any violation);
//!                     reports per-job wall-clock and the aggregate
//!                     simulation rate on stderr
//!   bench [--compare FILE [--max-regress PCT]] [--history]
//!                     simulator host-performance matrix: per-job
//!                     wall-clock and aggregate cycles/s from the
//!                     telemetry self-profile; also writes a
//!                     machine-readable BENCH_<timestamp>.json snapshot.
//!                     --compare judges the aggregate Mcycles/s against a
//!                     baseline snapshot and exits 9 if it fell more than
//!                     PCT percent below it (default 10). --history skips
//!                     the campaign and prints the BENCH_*.json trajectory
//!                     under the snapshot directory as a markdown table
//!   profile --bench B --policy P [--out FILE]
//!                     one run under the full performance observatory:
//!                     ranked event-loop hotspot table (per-event-type
//!                     wall-time shares summing to 100%) plus the per-WG
//!                     cycle-attribution ledger; --out writes the
//!                     machine-readable JSON document
//!   conformance [--count N] [--gen-seed S] [--expected FILE]
//!                     classify every policy against the OBE/LOBE/Fair
//!                     progress models: fixed anchor litmuses plus N
//!                     generated ones (default 8) per model, each run
//!                     under the model's seeded adversary with the
//!                     invariant oracle on. Writes the matrix CSV (via
//!                     --out) and diffs it against FILE (default
//!                     results/conformance_expected.csv): exit 8 on
//!                     regression. BLESS=1 rewrites FILE instead
//!   shrink <bench> <policy> <seed> [--plan FILE]
//!                     delta-debug the seeded chaos plan of a hanging
//!                     triple down to a minimal JSON reproducer
//!   replay <plan.json> <bench> <policy>
//!                     re-run a saved reproducer (exit 3 = still hangs)
//!   trace [policy]    Fig 6-style timeline (policy: baseline|timeout|
//!                     monrs|monr|monnr-all|monnr-one|awg|minresume)
//!   timeline --bench B --policy P --out FILE [--snapshots FILE]
//!                     [--trace-cap N]
//!                     Perfetto/Chrome-Trace JSON export of a traced run
//!                     (load FILE in ui.perfetto.dev), with windowed metric
//!                     snapshots as JSONL and a host self-profile on stderr
//!   asm <file.s> [--policy P] [--wgs N]
//!                     assemble and run a custom kernel
//!   checkpoint <bench> <policy> --snapshot FILE [--kill-after K]
//!                     [--plan FILE]
//!                     run one experiment with periodic whole-machine
//!                     snapshots to FILE; if FILE already holds a snapshot
//!                     (an earlier killed run), resume from it. --kill-after
//!                     exits with code 137 after the K-th snapshot, for
//!                     crash drills
//!   restore <snapshot> <bench> <policy> [--verify]
//!                     [--restore-drop-cu CU@CYCLE] [--corrupt MODE]
//!                     [--plan FILE]
//!                     resume a snapshot and run to completion. --verify
//!                     replays an uninterrupted reference and proves the
//!                     resumed digest trail and stats are identical
//!                     (prints `first_divergence: none`). --restore-drop-cu
//!                     injects a warm what-if CU loss into the restored
//!                     machine. --corrupt truncate:N|bitflip:N|stale-version
//!                     damages a copy of the snapshot first and expects the
//!                     restore to fail closed (exit 7)
//!   all               every table and figure, in order
//!
//! options:
//!   --quick           scaled-down machine (2 CUs, 20 WGs) for smoke runs
//!   --jobs N          run campaign cells on N worker threads (default:
//!                     available parallelism; 1 = serial). Reports are
//!                     byte-identical at any N: jobs carry stable keys and
//!                     merge in enumeration order
//!   --out DIR         also write each report as CSV into DIR
//!
//! resilience flags (campaign commands):
//!   --journal FILE    append a durable JSONL record per completed job; an
//!                     interrupted campaign prints the exact command that
//!                     resumes it
//!   --resume FILE     load FILE first: journaled jobs are served from it
//!                     instead of re-running, new results are appended, and
//!                     the merged report is byte-identical to an
//!                     uninterrupted run
//!   --job-deadline SECS
//!                     per-attempt host wall-clock deadline (fractional
//!                     seconds); a wedged job becomes a typed JobTimeout
//!                     row instead of hanging the campaign
//!   --job-cycle-budget N
//!                     per-attempt simulated-cycle budget; timeout retries
//!                     escalate it so a retry tells "slow" from "wedged"
//!   --retries N       extra attempts for retryable failures (panics and
//!                     timeouts); default 1
//!   --checkpoint-dir DIR
//!                     snapshot each campaign job's machine into DIR
//!                     (keyed by job digest); a killed campaign's jobs
//!                     resume from their snapshots, and a retry that made
//!                     snapshot progress does not consume a --retries slot
//!   --checkpoint-every N
//!                     snapshot interval in simulated cycles (default
//!                     50000); also sets the interval for the `checkpoint`
//!                     subcommand
//!
//! Exit codes are listed by `awg-repro` with no arguments (see also the
//! `awg_harness::exit` module); campaigns whose jobs exhausted their
//! retries still emit the report — with typed error rows — and exit with
//! the partial-completion code.
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::SimError;
use awg_gpu::{global_cancelled, read_checkpoint, CheckpointSpec, FaultPlan};
use awg_harness::{
    ablations, bench, chaos,
    checkpointing::{
        corrupt_snapshot, restore_run, result_fingerprint, run_checkpointed, run_identity,
        SnapshotCorruption, DEFAULT_CHECKPOINT_EVERY,
    },
    conformance,
    exit::{
        exit_table_text, EXIT_CONFORMANCE, EXIT_CORRUPT, EXIT_FAIL, EXIT_HANG, EXIT_INTERRUPTED,
        EXIT_INVARIANT, EXIT_PARTIAL, EXIT_PLAN, EXIT_REGRESSION, EXIT_USAGE,
    },
    fairness, fig05, fig07, fig08, fig09, fig11, fig13, fig14, fig15,
    pool::{CampaignProfile, Pool},
    priority, profile,
    run::{run_instrumented, ExperimentConfig, Instrumentation},
    shrink,
    supervisor::{CheckpointPolicy, JobLimits, Supervisor},
    sweep, table1, table2, timeline, tracefig, Report, Scale,
};
use awg_workloads::BenchmarkKind;

/// Arranges for SIGINT/SIGTERM to raise the process-wide cooperative
/// cancel flag. The handler only stores to an atomic (async-signal-safe);
/// the event loop observes the flag, the supervisor flushes the journal,
/// and `main` prints the resume command.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        awg_gpu::request_global_cancel();
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn print_usage() {
    eprintln!(
        "usage: awg-repro [--quick] [--jobs N] [--out DIR] [--journal FILE | --resume FILE] \
         [--job-deadline SECS] [--job-cycle-budget N] [--retries N] \
         [--checkpoint-dir DIR] [--checkpoint-every N] \
         <table1|table2|fig5|fig7|fig8|fig9|fig11|fig13|fig14|fig15|ablations|fairness|sweep|priority|chaos\
         |bench [--compare FILE [--max-regress PCT]] [--history]\
         |profile --bench B --policy P [--out FILE]\
         |conformance [--count N] [--gen-seed S] [--expected FILE]\
         |shrink <bench> <policy> <seed> [--plan FILE]\
         |replay <plan.json> <bench> <policy>\
         |trace [policy]\
         |timeline --bench B --policy P --out FILE [--snapshots FILE] [--trace-cap N]\
         |checkpoint <bench> <policy> --snapshot FILE [--kill-after K] [--plan FILE]\
         |restore <snapshot> <bench> <policy> [--verify] [--restore-drop-cu CU@CYCLE] \
         [--corrupt MODE] [--plan FILE]\
         |asm <file.s>|all>"
    );
    eprint!("{}", exit_table_text());
}

fn usage() -> ExitCode {
    print_usage();
    ExitCode::from(EXIT_USAGE)
}

fn parse_policy(name: &str) -> Result<PolicyKind, ExitCode> {
    Ok(match name {
        "baseline" => PolicyKind::Baseline,
        "sleep" => PolicyKind::Sleep,
        "timeout" => PolicyKind::Timeout,
        "monrs" => PolicyKind::MonRsAll,
        "monr" => PolicyKind::MonRAll,
        "monnr-all" => PolicyKind::MonNrAll,
        "monnr-one" => PolicyKind::MonNrOne,
        "awg" => PolicyKind::Awg,
        "minresume" => PolicyKind::MinResume,
        other => {
            eprintln!("unknown policy '{other}'");
            return Err(usage());
        }
    })
}

/// Accepts a Table 2 abbreviation (`TB_LG`, `spm_g`, …) case-insensitively.
fn parse_benchmark(name: &str) -> Result<BenchmarkKind, ExitCode> {
    BenchmarkKind::all()
        .into_iter()
        .find(|k| k.abbreviation().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            let names: Vec<&str> = BenchmarkKind::all()
                .into_iter()
                .map(|k| k.abbreviation())
                .collect();
            eprintln!("unknown benchmark '{name}'; one of: {}", names.join(" "));
            usage()
        })
}

/// Assembles and runs a user kernel on the simulator under `policy`.
fn run_asm(path: &str, policy: PolicyKind, wgs: u64, scale: &Scale) -> ExitCode {
    use awg_gpu::{Gpu, Kernel, RunOutcome, WgResources};

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    let program = match awg_isa::assemble(&source, path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    println!("{}", program.disassemble());
    let kernel = match Kernel::try_new(program, wgs, WgResources::default()) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    let mut gpu = Gpu::new(scale.gpu.clone(), kernel, build_policy(policy));
    match gpu.run() {
        RunOutcome::Completed(s) => {
            println!(
                "completed: {} cycles, {} insts, {} atomics, {} resumes, {} swaps out",
                s.cycles, s.insts, s.atomics, s.resumes, s.switches_out
            );
            let mut words: Vec<(u64, i64)> = gpu.backing().nonzero_words().collect();
            words.sort_unstable();
            println!("\nfinal non-zero memory ({} words):", words.len());
            for (addr, value) in words.iter().take(32) {
                println!("  {addr:#8x}: {value}");
            }
            if words.len() > 32 {
                println!("  ... {} more", words.len() - 32);
            }
            ExitCode::SUCCESS
        }
        aborted => {
            eprintln!("{aborted}");
            if let Some(hang) = aborted.hang_report() {
                eprintln!("{hang}");
            }
            ExitCode::from(EXIT_HANG)
        }
    }
}

/// Minimizes the seeded chaos plan of a hanging triple and writes the
/// reproducer JSON to `--plan FILE` (or stdout).
fn run_shrink(
    bench: BenchmarkKind,
    policy: PolicyKind,
    seed: u64,
    plan_out: Option<PathBuf>,
    scale: &Scale,
) -> ExitCode {
    let res = match shrink::shrink(bench, policy, scale, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("shrink: {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    eprintln!(
        "shrink {}/{} seed {seed}: {} fault(s) -> {} (in {} runs)",
        bench.abbreviation(),
        policy.label(),
        res.original.events.len(),
        res.minimized.events.len(),
        res.runs
    );
    let json = res.minimized.to_json();
    match plan_out {
        Some(path) => match std::fs::write(&path, &json) {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write '{}': {e}", path.display());
                ExitCode::from(EXIT_FAIL)
            }
        },
        None => {
            print!("{json}");
            ExitCode::SUCCESS
        }
    }
}

/// Replays a saved reproducer with the oracle on. Exit 3 means the plan
/// still hangs the triple (a shrunk reproducer is *expected* to exit 3).
fn run_replay(path: &str, bench: BenchmarkKind, policy: PolicyKind, scale: &Scale) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read '{path}': {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    let plan = match FaultPlan::from_json(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: fault plan parse error: {e}");
            return ExitCode::from(EXIT_PLAN);
        }
    };
    eprintln!(
        "replaying {} fault(s) against {}/{}",
        plan.events.len(),
        bench.abbreviation(),
        policy.label()
    );
    let r = run_instrumented(
        bench,
        policy,
        build_policy(policy),
        scale,
        ExperimentConfig::NonOversubscribed,
        Some(plan),
        Instrumentation::checked(),
    );
    if !r.violations.is_empty() {
        eprintln!("{} invariant violation(s):", r.violations.len());
        for v in &r.violations {
            eprintln!("  {v}");
        }
        return ExitCode::from(EXIT_INVARIANT);
    }
    if r.is_valid_completion() {
        println!("completed and validated: {}", r.outcome);
        ExitCode::SUCCESS
    } else {
        eprintln!("reproduced: {} / {:?}", r.outcome, r.validated);
        if let Some(hang) = r.outcome.hang_report() {
            eprintln!("{hang}");
        }
        ExitCode::from(EXIT_HANG)
    }
}

/// Runs a traced+telemetry run and writes the Perfetto JSON (and optional
/// snapshot JSONL). The export is validated before it is written: it must
/// parse as JSON and its slice/counter/instant counts must account for the
/// in-memory trace.
fn run_timeline_cmd(
    bench: BenchmarkKind,
    policy: PolicyKind,
    out_path: &Path,
    snapshots_path: Option<PathBuf>,
    trace_cap: Option<usize>,
    scale: &Scale,
) -> ExitCode {
    let t = timeline::run_timeline(bench, policy, scale, trace_cap);

    let doc = match awg_sim::json::parse(&t.json) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("timeline: exported document is not valid JSON: {e}");
            return ExitCode::from(EXIT_FAIL);
        }
    };
    let count_ph = |ph: &str| -> u64 {
        doc.get("traceEvents")
            .and_then(|e| e.as_array())
            .map_or(0, |events| {
                events
                    .iter()
                    .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph))
                    .count() as u64
            })
    };
    let (slices, counters, instants) = (count_ph("X"), count_ph("C"), count_ph("i"));
    if (slices, counters, instants) != (t.counts.slices, t.counts.counters, t.counts.instants) {
        eprintln!(
            "timeline: export does not account for the trace: \
             got {slices} slices / {counters} counters / {instants} instants, \
             expected {} / {} / {}",
            t.counts.slices, t.counts.counters, t.counts.instants
        );
        return ExitCode::from(EXIT_FAIL);
    }

    if let Err(e) = std::fs::write(out_path, &t.json) {
        eprintln!("cannot write '{}': {e}", out_path.display());
        return ExitCode::from(EXIT_FAIL);
    }
    eprintln!(
        "wrote {} ({} trace events from {} records{}; load in ui.perfetto.dev)",
        out_path.display(),
        slices + counters + instants,
        t.records,
        if t.dropped > 0 {
            format!(", {} evicted by the ring buffer", t.dropped)
        } else {
            String::new()
        }
    );
    if let Some(path) = snapshots_path {
        if let Err(e) = std::fs::write(&path, format!("{}\n", t.snapshots_jsonl)) {
            eprintln!("cannot write '{}': {e}", path.display());
            return ExitCode::from(EXIT_FAIL);
        }
        eprintln!(
            "wrote {} ({} snapshot windows)",
            path.display(),
            t.snapshots_jsonl.lines().count()
        );
    }

    println!("{}/{}: {}", bench.abbreviation(), policy.label(), t.outcome);
    if let Some(buckets) = t
        .stats
        .hist_buckets_by_name("telemetry_wake_to_resume_cycles")
    {
        let rendered: Vec<String> = buckets.iter().map(|(lo, c)| format!("{lo}:{c}")).collect();
        println!(
            "wake-to-resume latency (log2 cycles): {}",
            rendered.join(" ")
        );
    }
    if let Some(profile) = &t.profile {
        println!("{profile}");
    }
    if t.outcome.is_completed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_HANG)
    }
}

/// Loads a `--plan FILE` reproducer for the checkpoint/restore commands:
/// the parsed plan plus its canonical serialization, which participates in
/// the snapshot identity (a snapshot taken under one fault plan must not
/// restore into a run with another).
fn load_plan(path: &str) -> Result<(FaultPlan, String), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("cannot read '{path}': {e}");
        ExitCode::from(EXIT_FAIL)
    })?;
    let plan = FaultPlan::from_json(&text).map_err(|e| {
        eprintln!("{path}: fault plan parse error: {e}");
        ExitCode::from(EXIT_PLAN)
    })?;
    let json = plan.to_json();
    Ok((plan, json))
}

/// Parses the `--restore-drop-cu CU@CYCLE` what-if operand.
fn parse_drop_cu(text: &str) -> Result<(usize, u64), ExitCode> {
    let parsed = text
        .split_once('@')
        .and_then(|(cu, cycle)| Some((cu.parse::<usize>().ok()?, cycle.parse::<u64>().ok()?)));
    parsed.ok_or_else(|| {
        eprintln!("--restore-drop-cu expects CU@CYCLE (e.g. 1@120000), got '{text}'");
        usage()
    })
}

/// The `checkpoint` subcommand: one instrumented run with periodic
/// whole-machine snapshots. A snapshot already present at the path (from
/// an earlier killed invocation) is resumed from; `--kill-after K` turns
/// the run into a crash drill that exits 137 after the K-th snapshot.
fn run_checkpoint_cmd(
    kind: BenchmarkKind,
    policy: PolicyKind,
    snapshot: PathBuf,
    every: u64,
    kill_after: Option<u64>,
    plan: Option<(FaultPlan, String)>,
    scale: &Scale,
) -> ExitCode {
    let config = ExperimentConfig::NonOversubscribed;
    let instr = Instrumentation::checked();
    let (plan, plan_json) = match plan {
        Some((p, j)) => (Some(p), Some(j)),
        None => (None, None),
    };
    let identity = run_identity(kind, policy, scale, config, instr, plan_json.as_deref());
    let spec = CheckpointSpec {
        path: snapshot,
        every,
        identity,
        kill_after,
    };
    let run = run_checkpointed(kind, policy, scale, config, plan, instr, None, spec);
    if let Some(cycle) = run.resumed_from {
        eprintln!("resumed from snapshot at cycle {cycle}");
    }
    eprintln!("snapshots written: {}", run.snapshots_written);
    if let Some(e) = &run.checkpoint_error {
        eprintln!("checkpoint write error: {e}");
        return ExitCode::from(EXIT_FAIL);
    }
    let r = &run.result;
    if !r.violations.is_empty() {
        eprintln!("{} invariant violation(s):", r.violations.len());
        for v in &r.violations {
            eprintln!("  {v}");
        }
        return ExitCode::from(EXIT_INVARIANT);
    }
    println!("run fingerprint: {:016x}", result_fingerprint(r));
    if r.is_valid_completion() {
        println!("completed and validated: {}", r.outcome);
        ExitCode::SUCCESS
    } else {
        eprintln!("{} / {:?}", r.outcome, r.validated);
        if let Some(hang) = r.outcome.hang_report() {
            eprintln!("{hang}");
        }
        ExitCode::from(EXIT_HANG)
    }
}

/// Options for the `restore` subcommand.
struct RestoreOpts {
    verify: bool,
    drop_cu: Option<(usize, u64)>,
    corrupt: Option<SnapshotCorruption>,
    plan: Option<(FaultPlan, String)>,
}

/// The `restore` subcommand: overlay a snapshot and run to completion.
/// `--verify` proves digest-trail and stats identity against an
/// uninterrupted reference run; `--corrupt` damages a *copy* of the
/// snapshot and demands the restore fail closed (exit 7); `--restore-drop-cu`
/// asks a warm what-if question of the restored machine.
fn run_restore_cmd(
    snapshot: &Path,
    kind: BenchmarkKind,
    policy: PolicyKind,
    opts: RestoreOpts,
    scale: &Scale,
) -> ExitCode {
    let config = ExperimentConfig::NonOversubscribed;
    let instr = Instrumentation::checked();
    let (plan, plan_json) = match opts.plan {
        Some((p, j)) => (Some(p), Some(j)),
        None => (None, None),
    };
    let identity = run_identity(kind, policy, scale, config, instr, plan_json.as_deref());

    if let Some(mode) = opts.corrupt {
        // Work on a copy: the chaos drill must not destroy a real snapshot.
        let copy = snapshot.with_extension("corrupt-drill.ckpt");
        if let Err(e) = std::fs::copy(snapshot, &copy) {
            eprintln!("cannot copy snapshot for corruption drill: {e}");
            return ExitCode::from(EXIT_FAIL);
        }
        if let Err(e) = corrupt_snapshot(&copy, mode) {
            eprintln!("cannot corrupt snapshot copy: {e}");
            std::fs::remove_file(&copy).ok();
            return ExitCode::from(EXIT_FAIL);
        }
        let outcome = read_checkpoint(&copy).and_then(|image| {
            restore_run(
                kind, policy, scale, config, plan, instr, &image, identity, None, None,
            )
            .map(|_| ())
        });
        std::fs::remove_file(&copy).ok();
        return match outcome {
            Err(SimError::CorruptCheckpoint(msg)) => {
                eprintln!("restore failed closed as expected ({mode}): {msg}");
                ExitCode::from(EXIT_CORRUPT)
            }
            Err(e) => {
                eprintln!("corrupted snapshot ({mode}) failed with the wrong error class: {e}");
                ExitCode::from(EXIT_FAIL)
            }
            Ok(()) => {
                eprintln!("FAIL-OPEN: corrupted snapshot ({mode}) restored and ran successfully");
                ExitCode::from(EXIT_FAIL)
            }
        };
    }

    let image = match read_checkpoint(snapshot) {
        Ok(image) => image,
        Err(e) => {
            eprintln!("{}: {e}", snapshot.display());
            return ExitCode::from(EXIT_CORRUPT);
        }
    };
    eprintln!(
        "snapshot {}: cycle {}, format v{}",
        snapshot.display(),
        image.cycle,
        image.version
    );

    let resumed = match restore_run(
        kind,
        policy,
        scale,
        config,
        plan.clone(),
        instr,
        &image,
        identity,
        None,
        opts.drop_cu,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("restore: {e}");
            let code = match e {
                SimError::CorruptCheckpoint(_) => EXIT_CORRUPT,
                _ => EXIT_FAIL,
            };
            return ExitCode::from(code);
        }
    };

    if let Some((cu, at)) = opts.drop_cu {
        // A what-if answer is an answer either way: print the outcome
        // (deadlock reports included) and exit cleanly.
        println!(
            "what-if: CU {cu} unplugged at cycle {at} -> {}",
            resumed.outcome
        );
        if let Some(hang) = resumed.outcome.hang_report() {
            println!("{hang}");
        }
        return ExitCode::SUCCESS;
    }

    println!("run fingerprint: {:016x}", result_fingerprint(&resumed));

    if opts.verify {
        let reference = run_instrumented(
            kind,
            policy,
            build_policy(policy),
            scale,
            config,
            plan,
            instr,
        );
        match awg_sim::first_divergence(&reference.digest_trail, &resumed.digest_trail) {
            None if result_fingerprint(&reference) == result_fingerprint(&resumed) => {
                println!("first_divergence: none");
            }
            None => {
                eprintln!("digest trails agree but the stats fingerprints differ");
                return ExitCode::from(EXIT_FAIL);
            }
            Some(window) => {
                eprintln!("first_divergence: window {window}");
                return ExitCode::from(EXIT_FAIL);
            }
        }
    }

    if resumed.is_valid_completion() {
        println!("completed and validated: {}", resumed.outcome);
        ExitCode::SUCCESS
    } else {
        eprintln!("{} / {:?}", resumed.outcome, resumed.validated);
        if let Some(hang) = resumed.outcome.hang_report() {
            eprintln!("{hang}");
        }
        ExitCode::from(EXIT_HANG)
    }
}

fn emit(report: &Report, out: &Option<PathBuf>, slug: &str) -> Result<(), ExitCode> {
    println!("{}", report.to_markdown());
    if let Some(dir) = out {
        let io_fail = |what: &str, e: std::io::Error| {
            eprintln!("cannot {what}: {e}");
            ExitCode::from(EXIT_FAIL)
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| io_fail(&format!("create '{}'", dir.display()), e))?;
        let path = dir.join(format!("{slug}.csv"));
        let mut f = std::fs::File::create(&path)
            .map_err(|e| io_fail(&format!("create CSV '{}'", path.display()), e))?;
        f.write_all(report.to_csv().as_bytes())
            .map_err(|e| io_fail(&format!("write CSV '{}'", path.display()), e))?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// Prints a campaign's per-job wall-clocks and the aggregate simulation
/// rate (from the telemetry self-profile) to stderr, keeping stdout clean
/// for the report itself.
fn report_campaign_profile(
    slug: &str,
    profile: &CampaignProfile,
    workers: usize,
    elapsed: std::time::Duration,
) {
    for (key, wall) in &profile.timings {
        eprintln!("[{slug}] {key}: {wall:.2?}");
    }
    eprintln!("[{slug}] {}", profile.summary_line(workers));
    eprintln!("[{slug}] campaign wall-clock: {elapsed:.2?}");
}

/// The exact invocation that resumes an interrupted journaled campaign:
/// the original argument list with `--journal FILE` rewritten to
/// `--resume FILE` (an already-resumed invocation is reusable verbatim).
fn resume_invocation(raw_args: &[String]) -> String {
    let words: Vec<String> = raw_args
        .iter()
        .map(|w| {
            if w == "--journal" {
                "--resume".to_owned()
            } else {
                w.clone()
            }
        })
        .collect();
    format!("awg-repro {}", words.join(" "))
}

/// Interrupt epilogue: the supervisor has already flushed every completed
/// job to the journal; tell the user how to pick the campaign back up.
fn interrupted(resume_hint: &Option<String>) -> ExitCode {
    eprintln!("interrupted: campaign cancelled cooperatively");
    match resume_hint {
        Some(cmd) => eprintln!("journal flushed; resume with:\n  {cmd}"),
        None => eprintln!("(no journal; add --journal FILE to make campaigns resumable)"),
    }
    ExitCode::from(EXIT_INTERRUPTED)
}

/// Per-campaign epilogue shared by every report command: resume-hit and
/// partial-completion accounting on stderr (stdout carries only the
/// report, so journaled reruns stay byte-identical).
fn report_supervised_epilogue(slug: &str, sup: &Supervisor) {
    if sup.resumed_jobs() > 0 {
        eprintln!(
            "[{slug}] {} job(s) served from the resume journal",
            sup.resumed_jobs()
        );
    }
    if sup.incomplete() > 0 {
        eprintln!(
            "[{slug}] INCOMPLETE: {} job(s) exhausted their retries; \
             the report carries typed error rows for them",
            sup.incomplete()
        );
    }
}

fn main() -> ExitCode {
    install_signal_handlers();
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let mut args = raw_args.clone();
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut pool = Pool::auto();
    let mut limits = JobLimits::default();
    let mut journal: Option<PathBuf> = None;
    let mut resume = false;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut checkpoint_every: u64 = DEFAULT_CHECKPOINT_EVERY;
    let mut command_seen: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        // Removes the current flag and yields its value operand.
        macro_rules! take_value {
            () => {{
                args.remove(i);
                if i >= args.len() {
                    return usage();
                }
                args.remove(i)
            }};
        }
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                args.remove(i);
            }
            "--jobs" => {
                let value = take_value!();
                match value.parse::<usize>() {
                    Ok(n) if n >= 1 => pool = Pool::new(n),
                    _ => {
                        eprintln!("--jobs must be a positive integer, got '{value}'");
                        return usage();
                    }
                }
            }
            "--journal" | "--resume" => {
                let is_resume = args[i] == "--resume";
                if journal.is_some() {
                    eprintln!("--journal and --resume are mutually exclusive");
                    return usage();
                }
                journal = Some(PathBuf::from(take_value!()));
                resume = is_resume;
            }
            "--job-deadline" => {
                let value = take_value!();
                match value.parse::<f64>() {
                    Ok(secs) if secs > 0.0 && secs.is_finite() => {
                        limits.deadline = Some(std::time::Duration::from_secs_f64(secs));
                    }
                    _ => {
                        eprintln!(
                            "--job-deadline must be a positive number of seconds, got '{value}'"
                        );
                        return usage();
                    }
                }
            }
            "--job-cycle-budget" => {
                let value = take_value!();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => limits.cycle_budget = Some(n),
                    _ => {
                        eprintln!("--job-cycle-budget must be a positive integer, got '{value}'");
                        return usage();
                    }
                }
            }
            "--retries" => {
                let value = take_value!();
                match value.parse::<u32>() {
                    Ok(n) => limits.max_attempts = n.saturating_add(1),
                    Err(_) => {
                        eprintln!("--retries must be a non-negative integer, got '{value}'");
                        return usage();
                    }
                }
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(PathBuf::from(take_value!()));
            }
            "--checkpoint-every" => {
                let value = take_value!();
                match value.parse::<u64>() {
                    Ok(n) if n >= 1 => checkpoint_every = n,
                    _ => {
                        eprintln!("--checkpoint-every must be a positive integer, got '{value}'");
                        return usage();
                    }
                }
            }
            // `timeline` and `profile` own their `--out FILE`; the global
            // flag is the CSV directory for report commands.
            "--out"
                if command_seen.as_deref() != Some("timeline")
                    && command_seen.as_deref() != Some("profile") =>
            {
                out = Some(PathBuf::from(take_value!()));
            }
            other => {
                if command_seen.is_none() && !other.starts_with("--") {
                    command_seen = Some(other.to_string());
                }
                i += 1;
            }
        }
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let Some(command) = args.first().map(String::as_str) else {
        // Bare invocation is a help request, not a usage error.
        print_usage();
        return ExitCode::SUCCESS;
    };

    let resume_hint = journal.as_ref().map(|_| resume_invocation(&raw_args));
    let sup = match &journal {
        Some(path) => {
            let cmd = resume_hint.clone().unwrap_or_default();
            match Supervisor::with_journal(pool, limits, path, resume, &cmd) {
                Ok(s) => {
                    if resume {
                        eprintln!(
                            "resuming from {}: {} completed job(s) on file",
                            path.display(),
                            s.resumed_records()
                        );
                    }
                    s
                }
                Err(e) => {
                    eprintln!("cannot open journal '{}': {e}", path.display());
                    return ExitCode::from(EXIT_FAIL);
                }
            }
        }
        None => Supervisor::new(pool, limits),
    };
    let sup = match &checkpoint_dir {
        Some(dir) => {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create checkpoint dir '{}': {e}", dir.display());
                return ExitCode::from(EXIT_FAIL);
            }
            sup.with_checkpoints(CheckpointPolicy {
                dir: dir.clone(),
                every: checkpoint_every,
            })
        }
        None => sup,
    };

    type Runner = fn(&Scale, &Supervisor) -> Report;
    let all: [(&str, Runner); 14] = [
        ("table1", table1::run_supervised),
        ("table2", table2::run_supervised),
        ("fig5", fig05::run_supervised),
        ("fig7", fig07::run_supervised),
        ("fig8", fig08::run_supervised),
        ("fig9", fig09::run_supervised),
        ("fig11", fig11::run_supervised),
        ("fig13", fig13::run_supervised),
        ("fig14", fig14::run_supervised),
        ("fig15", fig15::run_supervised),
        ("ablations", ablations::run_supervised),
        ("fairness", fairness::run_supervised),
        ("sweep", sweep::run_supervised),
        ("priority", priority::run_supervised),
    ];

    match command {
        "all" => {
            for (slug, runner) in all {
                let t0 = std::time::Instant::now();
                let report = runner(&scale, &sup);
                if global_cancelled() {
                    return interrupted(&resume_hint);
                }
                if let Err(code) = emit(&report, &out, slug) {
                    return code;
                }
                eprintln!("[{slug}] {:.2?}", t0.elapsed());
            }
            report_supervised_epilogue("all", &sup);
            if sup.incomplete() > 0 {
                return ExitCode::from(EXIT_PARTIAL);
            }
            ExitCode::SUCCESS
        }
        "chaos" => {
            let t0 = std::time::Instant::now();
            let (report, violations, profile) =
                chaos::run_checked_supervised(&scale, &chaos::DEFAULT_SEEDS, &sup);
            let elapsed = t0.elapsed();
            if global_cancelled() {
                return interrupted(&resume_hint);
            }
            if let Err(code) = emit(&report, &out, "chaos") {
                return code;
            }
            report_campaign_profile("chaos", &profile, sup.pool().jobs(), elapsed);
            report_supervised_epilogue("chaos", &sup);
            if violations > 0 {
                eprintln!("chaos: {violations} invariant violation(s)");
                return ExitCode::from(EXIT_FAIL);
            }
            if sup.incomplete() > 0 {
                return ExitCode::from(EXIT_PARTIAL);
            }
            ExitCode::SUCCESS
        }
        "bench" => {
            // awg-repro bench [--compare FILE [--max-regress PCT]]
            //                 [--history]
            let mut compare_path: Option<PathBuf> = None;
            let mut max_regress: f64 = 10.0;
            let mut history = false;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--history" => history = true,
                    "--compare" => {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return usage();
                        };
                        compare_path = Some(PathBuf::from(value));
                    }
                    "--max-regress" => {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return usage();
                        };
                        // Negative budgets are an inverted gate: the run
                        // must beat the baseline by |PCT| percent (e.g.
                        // -200 demands a 3x speedup). Above 100% the
                        // threshold goes negative and nothing could ever
                        // regress, so that is rejected as a config error.
                        max_regress = match value.parse::<f64>() {
                            Ok(p) if p.is_finite() && p <= 100.0 => p,
                            _ => {
                                eprintln!(
                                    "--max-regress must be a finite percentage at most 100, \
                                     got '{value}'"
                                );
                                return usage();
                            }
                        };
                    }
                    _ => return usage(),
                }
                i += 1;
            }
            let snapshot_dir = out.clone().unwrap_or_else(|| PathBuf::from("results"));
            if history {
                // Trajectory only: no campaign, just the snapshots on disk.
                return match bench::history_table(&snapshot_dir) {
                    Ok(table) => {
                        print!("{table}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("bench --history: {e}");
                        ExitCode::from(EXIT_FAIL)
                    }
                };
            }
            let t0 = std::time::Instant::now();
            let (report, profile) = bench::run_supervised(&scale, &sup);
            let elapsed = t0.elapsed();
            if global_cancelled() {
                return interrupted(&resume_hint);
            }
            if let Err(code) = emit(&report, &out, "bench") {
                return code;
            }
            report_campaign_profile("bench", &profile, sup.pool().jobs(), elapsed);
            match bench::write_bench_json(&profile, sup.pool().jobs(), &snapshot_dir) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!(
                        "cannot write bench snapshot in '{}': {e}",
                        snapshot_dir.display()
                    );
                    return ExitCode::from(EXIT_FAIL);
                }
            }
            report_supervised_epilogue("bench", &sup);
            if sup.incomplete() > 0 {
                return ExitCode::from(EXIT_PARTIAL);
            }
            if let Some(path) = compare_path {
                let baseline = match bench::BenchSnapshot::read(&path) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("bench --compare: {e}");
                        return ExitCode::from(EXIT_FAIL);
                    }
                };
                let verdict =
                    bench::compare(profile.cycles_per_sec() / 1e6, &baseline, max_regress);
                eprintln!("[bench] {}", verdict.summary_line());
                if verdict.regressed {
                    return ExitCode::from(EXIT_REGRESSION);
                }
            }
            ExitCode::SUCCESS
        }
        "profile" => {
            // awg-repro profile --bench B --policy P [--out FILE]
            let mut bench_kind = None;
            let mut policy = PolicyKind::Awg;
            let mut out_path = None;
            let mut i = 1;
            while i < args.len() {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage();
                };
                match flag.as_str() {
                    "--bench" => {
                        bench_kind = Some(match parse_benchmark(value) {
                            Ok(b) => b,
                            Err(code) => return code,
                        });
                    }
                    "--policy" => {
                        policy = match parse_policy(value) {
                            Ok(p) => p,
                            Err(code) => return code,
                        };
                    }
                    "--out" => out_path = Some(PathBuf::from(value)),
                    _ => return usage(),
                }
                i += 1;
            }
            let Some(bench_kind) = bench_kind else {
                eprintln!("profile requires --bench");
                return usage();
            };
            let p = profile::run_profile(bench_kind, policy, &scale);
            print!("{}", p.text);
            if let Some(path) = out_path {
                let mut text = p.json.to_json();
                text.push('\n');
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("cannot write '{}': {e}", path.display());
                    return ExitCode::from(EXIT_FAIL);
                }
                eprintln!("wrote {}", path.display());
            }
            if p.result.is_valid_completion() {
                ExitCode::SUCCESS
            } else {
                eprintln!("{} / {:?}", p.result.outcome, p.result.validated);
                ExitCode::from(EXIT_HANG)
            }
        }
        "conformance" => {
            // awg-repro conformance [--count N] [--gen-seed S]
            //                       [--expected FILE]
            let mut cfg = conformance::ConformanceConfig::default();
            let mut expected_path = PathBuf::from("results/conformance_expected.csv");
            let mut i = 1;
            while i < args.len() {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage();
                };
                match flag.as_str() {
                    "--count" => {
                        cfg.count = match value.parse::<usize>() {
                            Ok(n) => n,
                            Err(_) => {
                                eprintln!("--count must be an unsigned integer, got '{value}'");
                                return usage();
                            }
                        };
                    }
                    "--gen-seed" => {
                        let parsed = match value.strip_prefix("0x") {
                            Some(hex) => u64::from_str_radix(hex, 16),
                            None => value.parse::<u64>(),
                        };
                        cfg.gen_seed = match parsed {
                            Ok(s) => s,
                            Err(_) => {
                                eprintln!(
                                    "--gen-seed must be an unsigned integer \
                                     (decimal or 0x-hex), got '{value}'"
                                );
                                return usage();
                            }
                        };
                    }
                    "--expected" => expected_path = PathBuf::from(value),
                    _ => return usage(),
                }
                i += 1;
            }
            let t0 = std::time::Instant::now();
            let run = conformance::run_supervised(&scale, &cfg, &sup);
            if global_cancelled() {
                return interrupted(&resume_hint);
            }
            if let Err(code) = emit(&run.report, &out, "conformance") {
                return code;
            }
            eprintln!("[conformance] {:.2?}", t0.elapsed());
            report_supervised_epilogue("conformance", &sup);
            let csv = run.matrix.to_csv();
            if let Some(dir) = &out {
                let path = dir.join("conformance_matrix.csv");
                if let Err(e) = std::fs::write(&path, &csv) {
                    eprintln!("cannot write '{}': {e}", path.display());
                    return ExitCode::from(EXIT_FAIL);
                }
                eprintln!("wrote {}", path.display());
            }
            if run.failures > 0 {
                eprintln!("conformance: {} campaign failure(s)", run.failures);
                return ExitCode::from(EXIT_FAIL);
            }
            if sup.incomplete() > 0 {
                return ExitCode::from(EXIT_PARTIAL);
            }
            if std::env::var("BLESS").ok().as_deref() == Some("1") {
                if let Some(parent) = expected_path.parent() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("cannot create '{}': {e}", parent.display());
                        return ExitCode::from(EXIT_FAIL);
                    }
                }
                if let Err(e) = std::fs::write(&expected_path, &csv) {
                    eprintln!("cannot write '{}': {e}", expected_path.display());
                    return ExitCode::from(EXIT_FAIL);
                }
                eprintln!("blessed {}", expected_path.display());
                return ExitCode::SUCCESS;
            }
            let expected = match std::fs::read_to_string(&expected_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "cannot read expected matrix '{}': {e}\n\
                         (bless a golden with: BLESS=1 awg-repro conformance ...)",
                        expected_path.display()
                    );
                    return ExitCode::from(EXIT_CONFORMANCE);
                }
            };
            let diffs = run.matrix.diff_against(&expected);
            if diffs.is_empty() {
                eprintln!("conformance: matrix matches {}", expected_path.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("conformance REGRESSION vs {}:", expected_path.display());
                for d in &diffs {
                    eprintln!("  {d}");
                }
                eprint!("observed matrix:\n{csv}");
                ExitCode::from(EXIT_CONFORMANCE)
            }
        }
        "shrink" => {
            // awg-repro shrink <bench> <policy> <seed> [--plan FILE]
            let (Some(bench), Some(policy), Some(seed)) = (args.get(1), args.get(2), args.get(3))
            else {
                return usage();
            };
            let bench = match parse_benchmark(bench) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let policy = match parse_policy(policy) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let Ok(seed) = seed.parse::<u64>() else {
                eprintln!("seed must be an unsigned integer, got '{seed}'");
                return usage();
            };
            let mut plan_out = None;
            match args.get(4).map(String::as_str) {
                Some("--plan") => match args.get(5) {
                    Some(p) => plan_out = Some(PathBuf::from(p)),
                    None => return usage(),
                },
                Some(_) => return usage(),
                None => {}
            }
            run_shrink(bench, policy, seed, plan_out, &scale)
        }
        "replay" => {
            // awg-repro replay <plan.json> <bench> <policy>
            let (Some(path), Some(bench), Some(policy)) = (args.get(1), args.get(2), args.get(3))
            else {
                return usage();
            };
            let bench = match parse_benchmark(bench) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let policy = match parse_policy(policy) {
                Ok(p) => p,
                Err(code) => return code,
            };
            run_replay(&path.clone(), bench, policy, &scale)
        }
        "trace" => {
            let policy = match args.get(1) {
                Some(s) => match parse_policy(s) {
                    Ok(p) => p,
                    Err(code) => return code,
                },
                None => PolicyKind::Awg,
            };
            println!("{}", tracefig::gantt_for(&scale, policy));
            match emit(&tracefig::run_policy(&scale, policy), &out, "trace") {
                Ok(()) => ExitCode::SUCCESS,
                Err(code) => code,
            }
        }
        "timeline" => {
            // awg-repro timeline --bench B --policy P --out FILE
            //                    [--snapshots FILE] [--trace-cap N]
            let mut bench = None;
            let mut policy = PolicyKind::Awg;
            let mut out_path = None;
            let mut snapshots_path = None;
            let mut trace_cap = None;
            let mut i = 1;
            while i < args.len() {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage();
                };
                match flag.as_str() {
                    "--bench" => {
                        bench = Some(match parse_benchmark(value) {
                            Ok(b) => b,
                            Err(code) => return code,
                        });
                    }
                    "--policy" => {
                        policy = match parse_policy(value) {
                            Ok(p) => p,
                            Err(code) => return code,
                        };
                    }
                    "--out" => out_path = Some(PathBuf::from(value)),
                    "--snapshots" => snapshots_path = Some(PathBuf::from(value)),
                    "--trace-cap" => {
                        trace_cap = match value.parse::<usize>() {
                            Ok(n) => Some(n),
                            Err(_) => {
                                eprintln!("--trace-cap must be an unsigned integer, got '{value}'");
                                return usage();
                            }
                        };
                    }
                    _ => return usage(),
                }
                i += 1;
            }
            let (Some(bench), Some(out_path)) = (bench, out_path) else {
                eprintln!("timeline requires --bench and --out");
                return usage();
            };
            run_timeline_cmd(bench, policy, &out_path, snapshots_path, trace_cap, &scale)
        }
        "checkpoint" => {
            // awg-repro checkpoint <bench> <policy> --snapshot FILE
            //                      [--kill-after K] [--plan FILE]
            let (Some(bench), Some(policy)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let bench = match parse_benchmark(bench) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let policy = match parse_policy(policy) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let mut snapshot = None;
            let mut kill_after = None;
            let mut plan = None;
            let mut i = 3;
            while i < args.len() {
                let flag = args[i].clone();
                i += 1;
                let Some(value) = args.get(i) else {
                    return usage();
                };
                match flag.as_str() {
                    "--snapshot" => snapshot = Some(PathBuf::from(value)),
                    "--kill-after" => {
                        kill_after = match value.parse::<u64>() {
                            Ok(n) if n >= 1 => Some(n),
                            _ => {
                                eprintln!("--kill-after must be a positive integer, got '{value}'");
                                return usage();
                            }
                        };
                    }
                    "--plan" => {
                        plan = match load_plan(value) {
                            Ok(p) => Some(p),
                            Err(code) => return code,
                        };
                    }
                    _ => return usage(),
                }
                i += 1;
            }
            let Some(snapshot) = snapshot else {
                eprintln!("checkpoint requires --snapshot FILE");
                return usage();
            };
            run_checkpoint_cmd(
                bench,
                policy,
                snapshot,
                checkpoint_every,
                kill_after,
                plan,
                &scale,
            )
        }
        "restore" => {
            // awg-repro restore <snapshot> <bench> <policy> [--verify]
            //           [--restore-drop-cu CU@CYCLE] [--corrupt MODE]
            //           [--plan FILE]
            let (Some(snapshot), Some(bench), Some(policy)) =
                (args.get(1), args.get(2), args.get(3))
            else {
                return usage();
            };
            let snapshot = PathBuf::from(snapshot);
            let bench = match parse_benchmark(bench) {
                Ok(b) => b,
                Err(code) => return code,
            };
            let policy = match parse_policy(policy) {
                Ok(p) => p,
                Err(code) => return code,
            };
            let mut opts = RestoreOpts {
                verify: false,
                drop_cu: None,
                corrupt: None,
                plan: None,
            };
            let mut i = 4;
            while i < args.len() {
                match args[i].as_str() {
                    "--verify" => opts.verify = true,
                    "--restore-drop-cu" => {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return usage();
                        };
                        opts.drop_cu = match parse_drop_cu(value) {
                            Ok(d) => Some(d),
                            Err(code) => return code,
                        };
                    }
                    "--corrupt" => {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return usage();
                        };
                        opts.corrupt = match SnapshotCorruption::parse(value) {
                            Ok(m) => Some(m),
                            Err(e) => {
                                eprintln!("{e}");
                                return usage();
                            }
                        };
                    }
                    "--plan" => {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return usage();
                        };
                        opts.plan = match load_plan(value) {
                            Ok(p) => Some(p),
                            Err(code) => return code,
                        };
                    }
                    _ => return usage(),
                }
                i += 1;
            }
            if opts.verify && opts.drop_cu.is_some() {
                eprintln!("--verify and --restore-drop-cu are mutually exclusive");
                return usage();
            }
            run_restore_cmd(&snapshot, bench, policy, opts, &scale)
        }
        "asm" => {
            // awg-repro asm <file.s> [--policy P] [--wgs N]
            let Some(path) = args.get(1).cloned() else {
                return usage();
            };
            let mut policy = PolicyKind::Awg;
            let mut wgs: u64 = 16;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--policy" => {
                        i += 1;
                        policy = match parse_policy(args.get(i).map(String::as_str).unwrap_or("")) {
                            Ok(p) => p,
                            Err(code) => return code,
                        };
                    }
                    "--wgs" => {
                        i += 1;
                        wgs = match args.get(i).and_then(|s| s.parse().ok()) {
                            Some(n) => n,
                            None => return usage(),
                        };
                    }
                    _ => return usage(),
                }
                i += 1;
            }
            run_asm(&path, policy, wgs, &scale)
        }
        name => match all.iter().find(|(slug, _)| *slug == name) {
            Some((slug, runner)) => {
                let t0 = std::time::Instant::now();
                let report = runner(&scale, &sup);
                if global_cancelled() {
                    return interrupted(&resume_hint);
                }
                match emit(&report, &out, slug) {
                    Ok(()) => {
                        eprintln!("[{slug}] {:.2?}", t0.elapsed());
                        report_supervised_epilogue(slug, &sup);
                        if sup.incomplete() > 0 {
                            return ExitCode::from(EXIT_PARTIAL);
                        }
                        ExitCode::SUCCESS
                    }
                    Err(code) => code,
                }
            }
            None => usage(),
        },
    }
}
