//! `awg-repro` — regenerate the tables and figures of *Independent Forward
//! Progress of Work-groups* (ISCA 2020).
//!
//! ```text
//! awg-repro [--quick] [--out DIR] <command>
//!
//! commands:
//!   table1 table2 fig5 fig7 fig8 fig9 fig11 fig13 fig14 fig15
//!   ablations fairness  extension studies beyond the paper's figures
//!   chaos             differential clean-vs-faulted matrix (exits non-zero
//!                     if any forward-progress invariant is violated)
//!   trace [policy]    Fig 6-style timeline (policy: baseline|timeout|
//!                     monrs|monr|monnr-all|monnr-one|awg|minresume)
//!   asm <file.s> [--policy P] [--wgs N]
//!                     assemble and run a custom kernel
//!   all               every table and figure, in order
//!
//! options:
//!   --quick           scaled-down machine (2 CUs, 20 WGs) for smoke runs
//!   --out DIR         also write each report as CSV into DIR
//! ```

use std::io::Write as _;
use std::path::PathBuf;

use awg_core::policies::PolicyKind;
use awg_harness::{
    ablations, chaos, fairness, fig05, fig07, fig08, fig09, fig11, fig13, fig14, fig15, priority,
    sweep, table1, table2, tracefig, Report, Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: awg-repro [--quick] [--out DIR] \
         <table1|table2|fig5|fig7|fig8|fig9|fig11|fig13|fig14|fig15|ablations|fairness|sweep|priority|chaos|trace [policy]|asm <file.s>|all>"
    );
    std::process::exit(2);
}

fn parse_policy(name: &str) -> PolicyKind {
    match name {
        "baseline" => PolicyKind::Baseline,
        "sleep" => PolicyKind::Sleep,
        "timeout" => PolicyKind::Timeout,
        "monrs" => PolicyKind::MonRsAll,
        "monr" => PolicyKind::MonRAll,
        "monnr-all" => PolicyKind::MonNrAll,
        "monnr-one" => PolicyKind::MonNrOne,
        "awg" => PolicyKind::Awg,
        "minresume" => PolicyKind::MinResume,
        other => {
            eprintln!("unknown policy '{other}'");
            usage()
        }
    }
}

/// Assembles and runs a user kernel on the simulator under `policy`.
fn run_asm(path: &str, policy: PolicyKind, wgs: u64, scale: &Scale) {
    use awg_core::policies::build_policy;
    use awg_gpu::{Gpu, Kernel, RunOutcome, WgResources};

    let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read '{path}': {e}");
        std::process::exit(1);
    });
    let program = awg_isa::assemble(&source, path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    println!("{}", program.disassemble());
    let kernel = Kernel::new(program, wgs, WgResources::default());
    let mut gpu = Gpu::new(scale.gpu.clone(), kernel, build_policy(policy));
    match gpu.run() {
        RunOutcome::Completed(s) => {
            println!(
                "completed: {} cycles, {} insts, {} atomics, {} resumes, {} swaps out",
                s.cycles, s.insts, s.atomics, s.resumes, s.switches_out
            );
            let mut words: Vec<(u64, i64)> = gpu.backing().nonzero_words().collect();
            words.sort_unstable();
            println!("\nfinal non-zero memory ({} words):", words.len());
            for (addr, value) in words.iter().take(32) {
                println!("  {addr:#8x}: {value}");
            }
            if words.len() > 32 {
                println!("  ... {} more", words.len() - 32);
            }
        }
        aborted => {
            eprintln!("{aborted}");
            if let Some(hang) = aborted.hang_report() {
                eprintln!("{hang}");
            }
            std::process::exit(3);
        }
    }
}

fn emit(report: &Report, out: &Option<PathBuf>, slug: &str) {
    println!("{}", report.to_markdown());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{slug}.csv"));
        let mut f = std::fs::File::create(&path).expect("create CSV");
        f.write_all(report.to_csv().as_bytes()).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                args.remove(i);
            }
            "--out" => {
                args.remove(i);
                if i >= args.len() {
                    usage();
                }
                out = Some(PathBuf::from(args.remove(i)));
            }
            _ => i += 1,
        }
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let Some(command) = args.first().map(String::as_str) else {
        usage()
    };

    type Runner = fn(&Scale) -> Report;
    let all: [(&str, Runner); 14] = [
        ("table1", table1::run),
        ("table2", table2::run),
        ("fig5", fig05::run),
        ("fig7", fig07::run),
        ("fig8", fig08::run),
        ("fig9", fig09::run),
        ("fig11", fig11::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("ablations", ablations::run),
        ("fairness", fairness::run),
        ("sweep", sweep::run),
        ("priority", priority::run),
    ];

    match command {
        "all" => {
            for (slug, runner) in all {
                let t0 = std::time::Instant::now();
                let report = runner(&scale);
                emit(&report, &out, slug);
                eprintln!("[{slug}] {:.2?}", t0.elapsed());
            }
        }
        "chaos" => {
            let (report, violations) = chaos::run_checked(&scale, &chaos::DEFAULT_SEEDS);
            emit(&report, &out, "chaos");
            if violations > 0 {
                eprintln!("chaos: {violations} invariant violation(s)");
                std::process::exit(1);
            }
        }
        "trace" => {
            let policy = args
                .get(1)
                .map(|s| parse_policy(s))
                .unwrap_or(PolicyKind::Awg);
            println!("{}", tracefig::gantt_for(&scale, policy));
            emit(&tracefig::run_policy(&scale, policy), &out, "trace");
        }
        "asm" => {
            // awg-repro asm <file.s> [--policy P] [--wgs N]
            let Some(path) = args.get(1).cloned() else {
                usage()
            };
            let mut policy = PolicyKind::Awg;
            let mut wgs: u64 = 16;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--policy" => {
                        i += 1;
                        policy = parse_policy(args.get(i).map(String::as_str).unwrap_or(""));
                    }
                    "--wgs" => {
                        i += 1;
                        wgs = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or_else(|| usage());
                    }
                    _ => usage(),
                }
                i += 1;
            }
            run_asm(&path, policy, wgs, &scale);
        }
        name => match all.iter().find(|(slug, _)| *slug == name) {
            Some((slug, runner)) => emit(&runner(&scale), &out, slug),
            None => usage(),
        },
    }
}
