//! Fig 5: work-group context size per benchmark (2–10 KB).

use awg_workloads::{context, BenchmarkKind};

use crate::pool::{self, Pool};
use crate::supervisor::{job_digest, sim_job, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// Renders the Fig 5 series.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Renders the Fig 5 series with one supervised job per benchmark. The rows
/// are pure accounting, but routing them through the supervisor keeps the
/// journal/merge path under test on the cheapest campaign (the CI
/// kill-and-resume smoke resumes this one).
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Fig 5: Work-group context size",
        vec!["Context (KB)", "VGPR bytes", "LDS bytes", "Scalar bytes"],
    );
    let jobs = BenchmarkKind::all()
        .into_iter()
        .map(|kind| {
            let key = format!("fig05/{}", kind.abbreviation());
            let digest = job_digest(&key, scale, &[]);
            sim_job(key, digest, move |_ctl| {
                let res = kind.resources();
                let vgpr = res.wavefronts as u64 * res.vgprs_per_wavefront as u64 * 4 * 64;
                let scalar = res.wavefronts as u64 * 128;
                vec![
                    Cell::Num(context::context_kb(kind)),
                    Cell::Num(vgpr as f64),
                    Cell::Num(res.lds_bytes as f64),
                    Cell::Num(scalar as f64),
                ]
            })
        })
        .collect();
    for (kind, out) in BenchmarkKind::all().into_iter().zip(sup.run(jobs)) {
        let cells = match out.result {
            Ok(cells) => cells,
            Err(e) => vec![pool::error_cell(&e); 4],
        };
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Paper reports 2-10 KB across the suite (Fig 5).");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_within_paper_range() {
        let r = run(&Scale::paper());
        for row in &r.rows {
            let kb = row.cells[0].as_num().unwrap();
            assert!((2.0..=10.0).contains(&kb), "{}: {kb}", row.label);
        }
    }

    #[test]
    fn components_sum_to_context() {
        let r = run(&Scale::paper());
        for row in &r.rows {
            let kb = row.cells[0].as_num().unwrap();
            let parts: f64 = row.cells[1..].iter().map(|c| c.as_num().unwrap()).sum();
            assert!((kb * 1024.0 - parts).abs() < 1.0, "{}", row.label);
        }
    }
}
