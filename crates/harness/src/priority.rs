//! Priority-burst study (§V.D): a high-priority kernel repeatedly steals
//! CUs from a long-running synchronizing kernel.
//!
//! "AWG decouples pre-emptive scheduling of kernels … which improves
//! performance and allows the GPU to be more responsive to high priority
//! kernels while, at the same time, ensuring the IFP of lower priority
//! kernels." Here a burst takes 2 of the 8 CUs periodically; the low-
//! priority kernel must keep making progress between and across bursts.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{Gpu, Watchdog};
use awg_sim::Cycle;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExpResult;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// CUs taken per burst.
pub const BURST_CUS: usize = 2;
/// Number of bursts scheduled.
pub const BURSTS: u64 = 8;

/// Burst period, derived from the scale's resource-loss point so the
/// schedule lands inside quick-scale runs too.
pub fn burst_period(scale: &Scale) -> Cycle {
    (scale.resource_loss_at * 2).max(5_000)
}

/// Burst duration (half the loss point).
pub fn burst_duration(scale: &Scale) -> Cycle {
    (scale.resource_loss_at / 2).max(1_000)
}

/// Runs `kind` under `policy` with the periodic burst schedule, optionally
/// under a supervisor watchdog.
pub fn run_bursty(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    watchdog: Option<Watchdog>,
) -> ExpResult {
    let policy_box = build_policy(policy);
    let mut params = scale.params;
    params.iterations = params.iterations.saturating_mul(kind.episode_weight() * 4);
    let built = kind.build(&params, policy_box.style());
    let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
    let cus = BURST_CUS.min(scale.gpu.num_cus.saturating_sub(1)).max(1);
    let (period, duration) = (burst_period(scale), burst_duration(scale));
    for i in 0..BURSTS {
        gpu.schedule_priority_burst(cus, (i + 1) * period, duration);
    }
    if let Some(watchdog) = watchdog {
        gpu.set_watchdog(watchdog);
    }
    let outcome = gpu.run();
    let validated = if outcome.is_completed() {
        built.validate(gpu.backing())
    } else {
        Ok(())
    };
    ExpResult {
        kind,
        policy,
        outcome,
        validated,
        wg_breakdown: gpu.wg_breakdown(),
        violations: gpu.violations().to_vec(),
        digest_trail: gpu.digest_trail().to_vec(),
        snapshots: Vec::new(),
        profile: None,
        hot: None,
        attribution: Vec::new(),
    }
}

/// The compared policies, in report order.
pub fn policies() -> [PolicyKind; 4] {
    [
        PolicyKind::Baseline,
        PolicyKind::Timeout,
        PolicyKind::MonNrOne,
        PolicyKind::Awg,
    ]
}

/// The benchmarks the burst study sweeps.
pub fn benchmarks() -> [BenchmarkKind; 4] {
    [
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::TreeBarrier,
        BenchmarkKind::Pipeline,
        BenchmarkKind::BankAccount,
    ]
}

/// The priority-burst comparison across policies.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// The priority-burst comparison under `sup`: one supervised job per
/// (benchmark, policy) cell, merged in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let columns: Vec<String> = policies().iter().map(|p| p.label()).collect();
    let mut r = Report::new(
        format!(
            "Priority bursts: {BURST_CUS} CUs taken for {} cycles every {} (runtime, Mcycles)",
            burst_duration(scale),
            burst_period(scale)
        ),
        columns.iter().map(String::as_str).collect(),
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in policies() {
            let key = format!("priority/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                run_bursty(kind, policy, scale, Some(ctl.watchdog()))
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        let cells: Vec<Cell> = policies()
            .iter()
            .map(|_| {
                let out = outputs.next().expect("one job per compared policy");
                match &out.result {
                    Ok(res) => match (res.cycles(), &res.validated) {
                        (Some(c), Ok(())) => Cell::Num(c as f64 / 1e6),
                        (Some(_), Err(e)) => Cell::Text(format!("INVALID: {e}")),
                        (None, _) => Cell::Deadlock,
                    },
                    Err(e) => pool::error_cell(e),
                }
            })
            .collect();
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note(
        "Lower is better. Baseline deadlocks at the first burst; IFP policies absorb all of them.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awg_absorbs_repeated_bursts() {
        let scale = Scale::quick();
        let r = run_bursty(BenchmarkKind::FaMutexGlobal, PolicyKind::Awg, &scale, None);
        assert!(r.outcome.is_completed(), "{:?}", r.outcome);
        r.validated.as_ref().expect("post-conditions across bursts");
        assert!(
            r.outcome.summary().switches_out > 0,
            "bursts must force context switches"
        );
    }

    #[test]
    fn baseline_deadlocks_at_a_burst() {
        let scale = Scale::quick();
        let r = run_bursty(
            BenchmarkKind::FaMutexGlobal,
            PolicyKind::Baseline,
            &scale,
            None,
        );
        assert!(r.deadlocked(), "{:?}", r.outcome);
    }
}
