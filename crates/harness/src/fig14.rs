//! Fig 14: speedup over the Baseline, non-oversubscribed scenario — the
//! paper's headline result (AWG ≈ 12× geomean over busy-waiting).

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::run::{geomean, run_experiment, ExperimentConfig};
use crate::{Cell, Report, Row, Scale};

/// The compared policies, in the paper's legend order.
pub const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Baseline,
    PolicyKind::Sleep,
    PolicyKind::Timeout,
    PolicyKind::MonNrAll,
    PolicyKind::MonNrOne,
    PolicyKind::Awg,
];

/// Runs the Fig 14 comparison.
pub fn run(scale: &Scale) -> Report {
    run_speedups(
        scale,
        ExperimentConfig::NonOversubscribed,
        PolicyKind::Baseline,
        "Fig 14: Speedup normalized to Baseline (non-oversubscribed)",
    )
}

/// Shared implementation for Figs 14/15: speedups of every policy relative
/// to `reference` under `config`.
pub fn run_speedups(
    scale: &Scale,
    config: ExperimentConfig,
    reference: PolicyKind,
    title: &str,
) -> Report {
    let columns: Vec<String> = POLICIES.iter().map(|p| p.label()).collect();
    let mut r = Report::new(title, columns.iter().map(String::as_str).collect());
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
    for kind in BenchmarkKind::heterosync_suite() {
        let reference_cycles = run_experiment(kind, reference, scale, config).cycles();
        let mut cells = Vec::with_capacity(POLICIES.len());
        for (i, &policy) in POLICIES.iter().enumerate() {
            let res = if policy == reference {
                // Re-running the reference would double the cost; its
                // speedup is 1 by definition when it completes.
                match reference_cycles {
                    Some(_) => {
                        per_policy[i].push(1.0);
                        cells.push(Cell::Num(1.0));
                        continue;
                    }
                    None => {
                        cells.push(Cell::Deadlock);
                        continue;
                    }
                }
            } else {
                run_experiment(kind, policy, scale, config)
            };
            match (reference_cycles, res.cycles()) {
                (Some(base), Some(c)) if res.validated.is_ok() => {
                    let speedup = base as f64 / c as f64;
                    per_policy[i].push(speedup);
                    cells.push(Cell::Num(speedup));
                }
                (_, None) => cells.push(Cell::Deadlock),
                (None, Some(_)) => cells.push(Cell::Missing),
                _ => cells.push(Cell::Missing),
            }
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    let geo_cells: Vec<Cell> = per_policy
        .iter()
        .map(|v| {
            if v.is_empty() {
                Cell::Missing
            } else {
                Cell::Num(geomean(v))
            }
        })
        .collect();
    r.push(Row::new("GeoMean", geo_cells));
    r.note("Higher is better. GeoMean over benchmarks that completed and validated.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig14_awg_beats_baseline() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 13); // 12 benchmarks + GeoMean
        let awg = r.cell("GeoMean", "AWG").unwrap().as_num().unwrap();
        assert!(awg > 1.0, "AWG geomean {awg} must beat Baseline");
        let baseline = r.cell("GeoMean", "Baseline").unwrap().as_num().unwrap();
        assert!((baseline - 1.0).abs() < 1e-9);
    }
}
