//! Fig 14: speedup over the Baseline, non-oversubscribed scenario — the
//! paper's headline result (AWG ≈ 12× geomean over busy-waiting).

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::{geomean, ExperimentConfig};
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The compared policies, in the paper's legend order.
pub const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Baseline,
    PolicyKind::Sleep,
    PolicyKind::Timeout,
    PolicyKind::MonNrAll,
    PolicyKind::MonNrOne,
    PolicyKind::Awg,
];

/// Runs the Fig 14 comparison.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 14 comparison under `sup`.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    run_speedups(
        scale,
        ExperimentConfig::NonOversubscribed,
        PolicyKind::Baseline,
        "Fig 14: Speedup normalized to Baseline (non-oversubscribed)",
        sup,
    )
}

/// Shared implementation for Figs 14/15: speedups of every policy relative
/// to `reference` under `config`, one supervised job per (benchmark,
/// policy) cell. The reference runs once per benchmark; its own cell is 1.0
/// by definition when it completes.
pub fn run_speedups(
    scale: &Scale,
    config: ExperimentConfig,
    reference: PolicyKind,
    title: &str,
    sup: &Supervisor,
) -> Report {
    let columns: Vec<String> = POLICIES.iter().map(|p| p.label()).collect();
    let mut r = Report::new(title, columns.iter().map(String::as_str).collect());
    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); POLICIES.len()];
    let mut jobs = Vec::new();
    for kind in BenchmarkKind::heterosync_suite() {
        let key = format!(
            "{title}/{}/{} (reference)",
            kind.abbreviation(),
            reference.label()
        );
        let digest = job_digest(&key, scale, &[]);
        jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
            ctl.run_experiment(kind, reference, scale, config)
        }));
        for &policy in POLICIES.iter().filter(|&&p| p != reference) {
            let key = format!("{title}/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_experiment(kind, policy, scale, config)
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in BenchmarkKind::heterosync_suite() {
        let reference_out = outputs.next().expect("one reference job per benchmark");
        let reference_cycles = reference_out
            .result
            .as_ref()
            .ok()
            .and_then(|res| res.cycles());
        let mut cells = Vec::with_capacity(POLICIES.len());
        for (i, &policy) in POLICIES.iter().enumerate() {
            if policy == reference {
                match (&reference_out.result, reference_cycles) {
                    (Err(e), _) => cells.push(pool::error_cell(e)),
                    (Ok(_), Some(_)) => {
                        per_policy[i].push(1.0);
                        cells.push(Cell::Num(1.0));
                    }
                    (Ok(_), None) => cells.push(Cell::Deadlock),
                }
                continue;
            }
            let out = outputs.next().expect("one job per compared policy");
            let res = match &out.result {
                Ok(res) => res,
                Err(e) => {
                    cells.push(pool::error_cell(e));
                    continue;
                }
            };
            match (reference_cycles, res.cycles()) {
                (Some(base), Some(c)) if res.validated.is_ok() => {
                    let speedup = base as f64 / c as f64;
                    per_policy[i].push(speedup);
                    cells.push(Cell::Num(speedup));
                }
                (_, None) => cells.push(Cell::Deadlock),
                (None, Some(_)) => cells.push(Cell::Missing),
                _ => cells.push(Cell::Missing),
            }
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    let geo_cells: Vec<Cell> = per_policy
        .iter()
        .map(|v| {
            if v.is_empty() {
                Cell::Missing
            } else {
                Cell::Num(geomean(v))
            }
        })
        .collect();
    r.push(Row::new("GeoMean", geo_cells));
    r.note("Higher is better. GeoMean over benchmarks that completed and validated.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig14_awg_beats_baseline() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 13); // 12 benchmarks + GeoMean
        let awg = r.cell("GeoMean", "AWG").unwrap().as_num().unwrap();
        assert!(awg > 1.0, "AWG geomean {awg} must beat Baseline");
        let baseline = r.cell("GeoMean", "Baseline").unwrap().as_num().unwrap();
        assert!((baseline - 1.0).abs() < 1e-9);
    }
}
