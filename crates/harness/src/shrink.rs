//! Delta-debugging shrinker for hanging chaos reproducers.
//!
//! Given a `(benchmark, policy, seed)` triple whose seeded [`FaultPlan`]
//! hangs the simulator, [`shrink`] minimizes the plan while preserving the
//! hang: first ddmin over *fault atoms* (a CU unplug travels with its
//! replug; every other event stands alone), then per-event window
//! narrowing (halve a chaos window or a CU outage while the hang
//! survives). The result is the smallest replayable JSON reproducer this
//! process can certify — every removal and narrowing was re-validated by
//! an actual run.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{FaultEvent, FaultKind, FaultPlan, FaultPlanConfig};
use awg_workloads::BenchmarkKind;

use crate::run::{run_instrumented, ExperimentConfig, Instrumentation};
use crate::Scale;

/// A fault atom: the unit ddmin removes. CU flaps pair an unplug with its
/// replug so partial plans never strand a CU disabled forever by accident
/// of deletion order (a loss-only plan is still reachable — by removing
/// the *pair* and keeping a different one, or when the minimal hang truly
/// needs an unplug with no recovery, via outage narrowing).
#[derive(Debug, Clone)]
enum Atom {
    /// A CuLoss with its matching CuRestore.
    Flap(FaultEvent, FaultEvent),
    /// Any other single event (including an unpaired loss or restore in a
    /// hand-written plan).
    Single(FaultEvent),
}

impl Atom {
    fn events(&self) -> Vec<FaultEvent> {
        match self {
            Atom::Flap(loss, restore) => vec![*loss, *restore],
            Atom::Single(e) => vec![*e],
        }
    }
}

/// Pairs each CuLoss with the next CuRestore of the same CU; everything
/// else becomes a single-event atom.
fn atomize(plan: &FaultPlan) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut consumed = vec![false; plan.events.len()];
    for (i, e) in plan.events.iter().enumerate() {
        if consumed[i] {
            continue;
        }
        if let FaultKind::CuLoss { cu } = e.kind {
            let restore = plan.events.iter().enumerate().skip(i + 1).find(|(j, r)| {
                !consumed[*j] && matches!(r.kind, FaultKind::CuRestore { cu: rcu } if rcu == cu)
            });
            if let Some((j, r)) = restore {
                consumed[j] = true;
                atoms.push(Atom::Flap(*e, *r));
                continue;
            }
        }
        atoms.push(Atom::Single(*e));
    }
    atoms
}

fn assemble(seed: u64, atoms: &[Atom]) -> FaultPlan {
    let mut events: Vec<FaultEvent> = atoms.iter().flat_map(Atom::events).collect();
    events.sort_by_key(|e| e.at);
    FaultPlan { seed, events }
}

/// How one shrink run went.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The benchmark of the reproducer.
    pub kind: BenchmarkKind,
    /// The policy of the reproducer.
    pub policy: PolicyKind,
    /// The full generated plan the shrink started from.
    pub original: FaultPlan,
    /// The minimized plan (still hangs).
    pub minimized: FaultPlan,
    /// Simulator runs spent shrinking.
    pub runs: usize,
}

/// Whether `plan` still hangs `kind`×`policy` at `scale`: the run must
/// fail to reach a validated completion (deadlock, livelock abort, or a
/// completion with corrupted memory all count as reproducing the defect).
pub fn still_hangs(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    plan: &FaultPlan,
) -> bool {
    let r = run_instrumented(
        kind,
        policy,
        build_policy(policy),
        scale,
        ExperimentConfig::NonOversubscribed,
        Some(plan.clone()),
        Instrumentation::none(),
    );
    !r.is_valid_completion()
}

/// The full chaos plan `shrink` starts from: the standard mix (CU loss
/// included — shrink targets exactly the hangs the matrix's
/// resident-safety guard exists to avoid), anchored to the scale's
/// mid-run marker like the chaos matrix.
pub fn full_plan(scale: &Scale, seed: u64) -> FaultPlan {
    let mut cfg = FaultPlanConfig::standard(scale.gpu.num_cus);
    cfg.start = scale.resource_loss_at / 3;
    cfg.horizon = scale.resource_loss_at * 6;
    FaultPlan::generate(seed, &cfg)
}

/// Minimizes the seeded plan for a hanging triple.
///
/// # Errors
///
/// Refuses to shrink when the hang is not actually fault-induced: the
/// clean (fault-free) run must complete and the full plan must hang.
pub fn shrink(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    seed: u64,
) -> Result<ShrinkResult, String> {
    let original = full_plan(scale, seed);
    let mut runs = 0usize;
    let mut check = |plan: &FaultPlan| {
        runs += 1;
        still_hangs(kind, policy, scale, plan)
    };

    if check(&FaultPlan::empty(seed)) {
        return Err(format!(
            "{}/{} hangs with no faults at all — nothing to shrink; \
             this is a plain (non-chaos) failure",
            kind.abbreviation(),
            policy.label()
        ));
    }
    if !check(&original) {
        return Err(format!(
            "{}/{} seed {seed}: the full fault plan does not hang — \
             nothing to reproduce",
            kind.abbreviation(),
            policy.label()
        ));
    }

    // Phase 1: ddmin over atoms.
    let mut atoms = atomize(&original);
    let mut granularity = 2usize;
    while atoms.len() >= 2 {
        let chunk = atoms.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < atoms.len() {
            let end = (start + chunk).min(atoms.len());
            let complement: Vec<Atom> = atoms[..start]
                .iter()
                .chain(atoms[end..].iter())
                .cloned()
                .collect();
            if !complement.is_empty() && check(&assemble(seed, &complement)) {
                atoms = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                start = 0;
            } else {
                start = end;
            }
        }
        if !reduced {
            if granularity >= atoms.len() {
                break;
            }
            granularity = (granularity * 2).min(atoms.len());
        }
    }

    // Phase 2: narrow windows and outages by halving while the hang holds.
    let mut events: Vec<FaultEvent> = assemble(seed, &atoms).events;
    for i in 0..events.len() {
        while let Some(candidate) = halve_extent(&events, i) {
            runs += 1;
            if still_hangs(kind, policy, scale, &candidate) {
                events = candidate.events;
            } else {
                break;
            }
        }
    }

    Ok(ShrinkResult {
        kind,
        policy,
        original,
        minimized: FaultPlan { seed, events },
        runs,
    })
}

/// A copy of the plan with event `i`'s temporal extent halved: chaos
/// windows shrink in place; a CU outage halves by pulling the matching
/// restore closer to its loss. Returns `None` when event `i` has no
/// extent left to narrow.
fn halve_extent(events: &[FaultEvent], i: usize) -> Option<FaultPlan> {
    let mut out = events.to_vec();
    match out[i].kind {
        FaultKind::WakeChaos { mode, window } if window >= 2 => {
            out[i].kind = FaultKind::WakeChaos {
                mode,
                window: window / 2,
            };
        }
        FaultKind::CtxStall { extra, window } if window >= 2 => {
            out[i].kind = FaultKind::CtxStall {
                extra,
                window: window / 2,
            };
        }
        FaultKind::CuLoss { cu } => {
            let at = out[i].at;
            let (j, restore) = events
                .iter()
                .enumerate()
                .find(|(j, r)| {
                    *j > i && matches!(r.kind, FaultKind::CuRestore { cu: rcu } if rcu == cu)
                })
                .map(|(j, r)| (j, *r))?;
            let outage = restore.at - at;
            if outage < 2 {
                return None;
            }
            out[j].at = at + outage / 2;
            out.sort_by_key(|e| e.at);
        }
        _ => return None,
    }
    Some(FaultPlan {
        seed: 0, // the caller re-stamps; extents carry no seed
        events: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at, kind }
    }

    #[test]
    fn atoms_pair_flaps_and_reassemble_sorted() {
        let plan = FaultPlan {
            seed: 1,
            events: vec![
                ev(10, FaultKind::CuLoss { cu: 0 }),
                ev(
                    20,
                    FaultKind::CtxStall {
                        extra: 5,
                        window: 100,
                    },
                ),
                ev(30, FaultKind::CuRestore { cu: 0 }),
            ],
        };
        let atoms = atomize(&plan);
        assert_eq!(atoms.len(), 2);
        assert!(matches!(&atoms[0], Atom::Flap(l, r)
            if l.at == 10 && r.at == 30));
        let back = assemble(1, &atoms);
        assert_eq!(back.events, plan.events, "reassembly preserves order");
    }

    #[test]
    fn unpaired_restore_survives_as_single() {
        let plan = FaultPlan {
            seed: 1,
            events: vec![ev(10, FaultKind::CuRestore { cu: 3 })],
        };
        let atoms = atomize(&plan);
        assert_eq!(atoms.len(), 1);
        assert!(matches!(atoms[0], Atom::Single(_)));
    }

    #[test]
    fn halving_narrows_windows_and_outages() {
        let events = vec![
            ev(
                0,
                FaultKind::WakeChaos {
                    mode: awg_gpu::WakeChaosMode::Drop,
                    window: 1000,
                },
            ),
            ev(100, FaultKind::CuLoss { cu: 0 }),
            ev(900, FaultKind::CuRestore { cu: 0 }),
        ];
        let halved = halve_extent(&events, 0).expect("window halves");
        assert!(matches!(
            halved.events[0].kind,
            FaultKind::WakeChaos { window: 500, .. }
        ));
        let halved = halve_extent(&events, 1).expect("outage halves");
        let restore = halved
            .events
            .iter()
            .find(|e| matches!(e.kind, FaultKind::CuRestore { .. }))
            .unwrap();
        assert_eq!(restore.at, 500, "outage 800 → 400, restore at 100+400");
        assert!(
            halve_extent(&events, 2).is_none(),
            "restores have no extent"
        );
    }

    #[test]
    fn shrink_refuses_non_hanging_triples() {
        // AWG survives the standard plan, so there is nothing to shrink.
        let err = shrink(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &Scale::quick(),
            101,
        )
        .expect_err("AWG survives chaos");
        assert!(err.contains("does not hang"), "{err}");
    }

    #[test]
    fn shrink_minimizes_a_baseline_hang() {
        // Baseline cannot reschedule preempted WGs: any surviving CuLoss
        // strands residents, so the minimal plan is tiny and still hangs.
        let scale = Scale::quick();
        let res = shrink(
            BenchmarkKind::TreeBarrier,
            PolicyKind::Baseline,
            &scale,
            101,
        )
        .expect("Baseline hangs under CU loss");
        assert!(
            res.minimized.events.len() < res.original.events.len(),
            "shrink must remove faults: {} vs {}",
            res.minimized.events.len(),
            res.original.events.len()
        );
        assert!(
            still_hangs(res.kind, res.policy, &scale, &res.minimized),
            "the minimized plan must still reproduce the hang"
        );
        // The reproducer round-trips through its JSON form.
        let replayed = FaultPlan::from_json(&res.minimized.to_json()).unwrap();
        assert_eq!(replayed, res.minimized);
    }
}
