//! Table 2: benchmark synchronization characteristics.

use awg_workloads::BenchmarkKind;

use crate::supervisor::Supervisor;
use crate::{Cell, Report, Row, Scale};

/// Runner-uniform entry: Table 2 is pure characteristics rendering, so the
/// supervisor is unused.
pub fn run_supervised(scale: &Scale, _sup: &Supervisor) -> Report {
    run(scale)
}

/// Renders Table 2: one row per benchmark with its symbolic and concrete
/// characteristics.
pub fn run(scale: &Scale) -> Report {
    let p = &scale.params;
    let mut r = Report::new(
        format!(
            "Table 2: Inter-WG synchronization benchmarks (G={}, L={}, n={} WIs)",
            p.num_wgs,
            p.wgs_per_cluster,
            64 * 4
        ),
        vec![
            "Description",
            "Granularity",
            "# sync vars",
            "(=)",
            "# conds per var",
            "# waiters per cond",
            "# updates until met",
        ],
    );
    for kind in BenchmarkKind::all() {
        let c = kind.characteristics();
        r.push(Row::new(
            kind.abbreviation(),
            vec![
                Cell::Text(kind.description().into()),
                Cell::Text(c.granularity.into()),
                Cell::Text(c.sync_vars.to_string()),
                Cell::Num(c.sync_vars.eval(p) as f64),
                Cell::Text(c.conds_per_var.to_string()),
                Cell::Text(c.waiters_per_cond.to_string()),
                Cell::Text(c.updates_until_met.to_string()),
            ],
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_benchmarks() {
        let r = run(&Scale::paper());
        assert_eq!(r.rows.len(), 16);
        let md = r.to_markdown();
        assert!(md.contains("SPM_G"));
        assert!(md.contains("Test-and-set lock"));
        assert!(md.contains("G/L"));
    }

    #[test]
    fn concrete_values_follow_params() {
        let r = run(&Scale::paper());
        assert_eq!(r.cell("SLM_G", "(=)"), Some(&Cell::Num(80.0)));
        assert_eq!(r.cell("TB_LG", "(=)"), Some(&Cell::Num(8.0)));
    }
}
