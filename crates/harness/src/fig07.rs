//! Fig 7: exponential backoff with `s_sleep`, normalized to the Baseline.
//!
//! Sweeps the maximum backoff interval (`Sleep-1k` … `Sleep-256k`) over the
//! benchmarks the paper modified for software backoff. The paper's shape:
//! backoff helps up to a point, then over-sleeping hurts, and no single
//! interval is best for every primitive.

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::run::{run_experiment, ExperimentConfig};
use crate::{Cell, Report, Row, Scale};

/// The swept maximum backoff intervals, in cycles.
pub const SLEEP_SWEEP: [u64; 9] = [
    1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000,
];

/// Runs the Fig 7 sweep.
pub fn run(scale: &Scale) -> Report {
    let mut columns = vec!["Baseline".to_owned()];
    columns.extend(SLEEP_SWEEP.iter().map(|m| format!("Sleep-{}k", m / 1000)));
    let mut r = Report::new(
        "Fig 7: Exponential backoff with s_sleep (runtime normalized to Baseline)",
        columns.iter().map(String::as_str).collect(),
    );
    for kind in BenchmarkKind::backoff_sweep_suite() {
        let base = run_experiment(
            kind,
            PolicyKind::Baseline,
            scale,
            ExperimentConfig::NonOversubscribed,
        );
        let Some(base_cycles) = base.cycles() else {
            r.push(Row::new(
                kind.abbreviation(),
                vec![Cell::Deadlock; SLEEP_SWEEP.len() + 1],
            ));
            continue;
        };
        let mut cells = vec![Cell::Num(1.0)];
        for max in SLEEP_SWEEP {
            let res = run_experiment(
                kind,
                PolicyKind::SleepMax(max),
                scale,
                ExperimentConfig::NonOversubscribed,
            );
            cells.push(match res.cycles() {
                Some(c) => Cell::Num(c as f64 / base_cycles as f64),
                None => Cell::Deadlock,
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better. Paper shape: helps to a point, then over-sleeping backfires; no single best interval.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert_eq!(row.cells[0], Cell::Num(1.0), "{}", row.label);
            for c in &row.cells {
                assert!(c.as_num().is_some(), "{}: {c:?}", row.label);
            }
        }
    }
}
