//! Fig 7: exponential backoff with `s_sleep`, normalized to the Baseline.
//!
//! Sweeps the maximum backoff interval (`Sleep-1k` … `Sleep-256k`) over the
//! benchmarks the paper modified for software backoff. The paper's shape:
//! backoff helps up to a point, then over-sleeping hurts, and no single
//! interval is best for every primitive.

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The swept maximum backoff intervals, in cycles.
pub const SLEEP_SWEEP: [u64; 9] = [
    1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000,
];

/// Runs the Fig 7 sweep.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 7 sweep under `sup`: one supervised job per (benchmark,
/// interval) cell, merged back in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut columns = vec!["Baseline".to_owned()];
    columns.extend(SLEEP_SWEEP.iter().map(|m| format!("Sleep-{}k", m / 1000)));
    let mut r = Report::new(
        "Fig 7: Exponential backoff with s_sleep (runtime normalized to Baseline)",
        columns.iter().map(String::as_str).collect(),
    );
    let mut jobs = Vec::new();
    for kind in BenchmarkKind::backoff_sweep_suite() {
        let key = format!("fig07/{}/Baseline", kind.abbreviation());
        let digest = job_digest(&key, scale, &[]);
        jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
            ctl.run_experiment(
                kind,
                PolicyKind::Baseline,
                scale,
                ExperimentConfig::NonOversubscribed,
            )
        }));
        for max in SLEEP_SWEEP {
            let key = format!("fig07/{}/Sleep-{}k", kind.abbreviation(), max / 1000);
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_experiment(
                    kind,
                    PolicyKind::SleepMax(max),
                    scale,
                    ExperimentConfig::NonOversubscribed,
                )
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in BenchmarkKind::backoff_sweep_suite() {
        let base = outputs.next().expect("one baseline job per benchmark");
        let swept: Vec<_> = SLEEP_SWEEP
            .iter()
            .map(|_| outputs.next().expect("one job per swept interval"))
            .collect();
        let Some(base_cycles) = base.result.as_ref().ok().and_then(|res| res.cycles()) else {
            r.push(Row::new(
                kind.abbreviation(),
                vec![Cell::Deadlock; SLEEP_SWEEP.len() + 1],
            ));
            continue;
        };
        let mut cells = vec![Cell::Num(1.0)];
        for out in &swept {
            cells.push(match &out.result {
                Ok(res) => match res.cycles() {
                    Some(c) => Cell::Num(c as f64 / base_cycles as f64),
                    None => Cell::Deadlock,
                },
                Err(e) => pool::error_cell(e),
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better. Paper shape: helps to a point, then over-sleeping backfires; no single best interval.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shape() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert_eq!(row.cells[0], Cell::Num(1.0), "{}", row.label);
            for c in &row.cells {
                assert!(c.as_num().is_some(), "{}: {c:?}", row.label);
            }
        }
    }
}
