//! Harness-level checkpoint/restore: crash-survivable single runs.
//!
//! The `awg-gpu` crate owns the snapshot format and the machine overlay
//! (`write_checkpoint`/`read_checkpoint`/`restore_into`); this module wires
//! them into the experiment runner:
//!
//! * [`run_identity`] fingerprints a run's full configuration (benchmark,
//!   policy, scale, scenario, instrumentation, fault plan) into the 64-bit
//!   identity the snapshot header carries, so a restore into a *different*
//!   configuration fails closed before any state is overlaid.
//! * [`run_checkpointed`] is the crash-survivable runner: it arms the
//!   cooperative `--checkpoint-every` poll, and — if a snapshot from an
//!   earlier (killed) process is already on disk — resumes from it instead
//!   of starting over. A corrupt leftover snapshot is reported and the run
//!   starts fresh: a damaged snapshot may cost the saved work, never the
//!   result.
//! * [`restore_run`] is the explicit `restore` subcommand path: overlay a
//!   parsed snapshot, optionally inject a warm `--restore-drop-cu` what-if,
//!   and drive the machine to completion.
//! * [`SnapshotCorruption`] + [`corrupt_snapshot`] are the chaos hooks that
//!   prove restore fails closed: truncation, bit flips, and a stale format
//!   version, applied to a real snapshot file.
//!
//! The acceptance property lives in the harness test suite: a run killed at
//! *any* snapshot boundary and restored from disk must finish with the same
//! digest trail, cycle count, and final stats as an uninterrupted same-seed
//! run (`first_divergence == None` is the proof).

use std::fs;
use std::io;
use std::path::Path;

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{
    read_checkpoint, restore_into, CheckpointImage, CheckpointSpec, FaultPlan, SimError, Watchdog,
    CHECKPOINT_VERSION,
};
use awg_sim::{Cycle, Fingerprint64};
use awg_workloads::BenchmarkKind;

use crate::run::{collect_result, prepare_machine, ExpResult, ExperimentConfig, Instrumentation};
use crate::Scale;

/// Default snapshot interval in simulated cycles: frequent enough that a
/// killed paper-scale run loses little work, coarse enough that the write
/// amortizes to under the 2% overhead budget (see `EXPERIMENTS.md`).
pub const DEFAULT_CHECKPOINT_EVERY: Cycle = 50_000;

/// Fingerprints everything a snapshot is *not allowed* to span: the
/// benchmark, policy, full machine/workload scale, scenario,
/// instrumentation, and the serialized fault plan (if any). Stable across
/// processes, so a `checkpoint` run in one process and a `restore` in
/// another agree; changing any configuration knob changes the identity and
/// the restore fails closed with an identity mismatch.
pub fn run_identity(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    config: ExperimentConfig,
    instr: Instrumentation,
    plan_json: Option<&str>,
) -> u64 {
    let mut f = Fingerprint64::new();
    f.push_bytes(b"awg-checkpoint-run/v1");
    f.push_bytes(kind.abbreviation().as_bytes());
    f.push_bytes(policy.label().as_bytes());
    f.push_bytes(format!("{scale:?}").as_bytes());
    f.push_bytes(format!("{config:?}").as_bytes());
    f.push_bytes(format!("{instr:?}").as_bytes());
    f.push_bytes(plan_json.unwrap_or("-").as_bytes());
    f.finish()
}

/// What [`run_checkpointed`] produced, beyond the experiment result itself.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The experiment outcome (identical to an un-checkpointed run's).
    pub result: ExpResult,
    /// Snapshots this process wrote.
    pub snapshots_written: u64,
    /// The first snapshot-write failure, if the disk misbehaved
    /// (checkpointing disarms itself; the run still completes).
    pub checkpoint_error: Option<String>,
    /// The snapshot cycle this run resumed from, if a snapshot from an
    /// earlier process was found on disk.
    pub resumed_from: Option<Cycle>,
}

/// Runs `kind` under `policy` with cooperative checkpointing armed. If
/// `spec.path` already holds a snapshot — the signature of an earlier
/// process killed mid-run — the run resumes from it; an unusable snapshot
/// is reported on stderr and the run starts fresh.
#[allow(clippy::too_many_arguments)]
pub fn run_checkpointed(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
    instr: Instrumentation,
    watchdog: Option<Watchdog>,
    spec: CheckpointSpec,
) -> CheckpointedRun {
    let build = |spec: CheckpointSpec| {
        let (built, mut gpu) = prepare_machine(
            kind,
            build_policy(policy),
            scale,
            config,
            plan.clone(),
            instr,
            watchdog.clone(),
        );
        gpu.set_checkpoint(spec);
        (built, gpu)
    };
    let (mut built, mut gpu) = build(spec.clone());
    let mut resumed_from = None;
    if spec.path.exists() {
        let restored = read_checkpoint(&spec.path)
            .and_then(|image| restore_into(&mut gpu, &image, spec.identity).map(|()| image.cycle));
        match restored {
            Ok(cycle) => resumed_from = Some(cycle),
            Err(e) => {
                eprintln!(
                    "warning: snapshot {} is unusable ({e}); starting fresh",
                    spec.path.display()
                );
                // A failed overlay may have half-mutated the machine;
                // rebuild it from configuration.
                (built, gpu) = build(spec);
            }
        }
    }
    let outcome = gpu.run();
    CheckpointedRun {
        snapshots_written: gpu.checkpoints_written(),
        checkpoint_error: gpu.checkpoint_error().map(str::to_owned),
        result: collect_result(kind, policy, &built, &gpu, outcome),
        resumed_from,
    }
}

/// Overlays `image` onto a freshly-built machine and drives it to
/// completion: the `restore` subcommand path. `continue_spec` re-arms
/// checkpointing on the resumed run (the boundary grid continues where the
/// snapshot's left off); `drop_cu` injects the warm `--restore-drop-cu`
/// what-if — a CU unplug scheduled into the restored machine's live event
/// calendar.
///
/// # Errors
///
/// [`SimError::CorruptCheckpoint`] if the snapshot does not belong to this
/// configuration or fails machine-level validation, and
/// [`SimError::Config`] for an unschedulable `drop_cu`.
#[allow(clippy::too_many_arguments)]
pub fn restore_run(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
    instr: Instrumentation,
    image: &CheckpointImage,
    identity: u64,
    continue_spec: Option<CheckpointSpec>,
    drop_cu: Option<(usize, Cycle)>,
) -> Result<ExpResult, SimError> {
    let (built, mut gpu) =
        prepare_machine(kind, build_policy(policy), scale, config, plan, instr, None);
    if let Some(spec) = continue_spec {
        gpu.set_checkpoint(spec);
    }
    restore_into(&mut gpu, image, identity)?;
    if let Some((cu, at)) = drop_cu {
        gpu.inject_resource_loss(cu, at)?;
    }
    let outcome = gpu.run();
    Ok(collect_result(kind, policy, &built, &gpu, outcome))
}

/// A compact cross-process fingerprint of a finished run: the summary
/// counters that must be bit-identical between an uninterrupted run and a
/// kill-restore-resume chain, folded together with the full digest trail.
pub fn result_fingerprint(r: &ExpResult) -> u64 {
    let mut f = Fingerprint64::new();
    for v in crate::chaos::fingerprint(r) {
        f.push(v);
    }
    for &d in &r.digest_trail {
        f.push(d);
    }
    f.finish()
}

/// The snapshot-corruption chaos modes: each proves a different layer of
/// the fail-closed contract (framing, checksum, version gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCorruption {
    /// Keep only the first `n` bytes (clamped so the file really shrinks).
    Truncate(usize),
    /// Flip one bit of byte `n` (wrapped into the file).
    BitFlip(usize),
    /// Rewrite the header's format version to an unknown value.
    StaleVersion,
}

impl SnapshotCorruption {
    /// Parses the CLI spelling: `truncate:N`, `bitflip:N`, `stale-version`.
    ///
    /// # Errors
    ///
    /// Describes the accepted forms on any mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let bad =
            || format!("unknown corruption mode '{text}' (truncate:N | bitflip:N | stale-version)");
        if text == "stale-version" {
            return Ok(SnapshotCorruption::StaleVersion);
        }
        let (mode, arg) = text.split_once(':').ok_or_else(bad)?;
        let n: usize = arg.parse().map_err(|_| bad())?;
        match mode {
            "truncate" => Ok(SnapshotCorruption::Truncate(n)),
            "bitflip" => Ok(SnapshotCorruption::BitFlip(n)),
            _ => Err(bad()),
        }
    }
}

impl std::fmt::Display for SnapshotCorruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCorruption::Truncate(n) => write!(f, "truncate:{n}"),
            SnapshotCorruption::BitFlip(n) => write!(f, "bitflip:{n}"),
            SnapshotCorruption::StaleVersion => write!(f, "stale-version"),
        }
    }
}

/// Applies `mode` to the snapshot file at `path` in place. The restore
/// pipeline must subsequently refuse the file with
/// [`SimError::CorruptCheckpoint`]; the corruption smoke tests assert
/// exactly that.
///
/// # Errors
///
/// Propagates I/O errors; an empty file cannot be corrupted further.
pub fn corrupt_snapshot(path: &Path, mode: SnapshotCorruption) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::other("snapshot file is empty"));
    }
    match mode {
        SnapshotCorruption::Truncate(n) => bytes.truncate(n.min(bytes.len() - 1)),
        SnapshotCorruption::BitFlip(n) => {
            let i = n % bytes.len();
            bytes[i] ^= 1 << (n % 8);
        }
        SnapshotCorruption::StaleVersion => {
            if bytes.len() < 12 {
                return Err(io::Error::other("file too short to carry a version field"));
            }
            bytes[8..12].copy_from_slice(&(CHECKPOINT_VERSION + 999).to_le_bytes());
        }
    }
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("awg-ckpt-harness-{}-{name}", std::process::id()))
    }

    #[test]
    fn identity_separates_every_knob() {
        let quick = Scale::quick();
        let paper = Scale::paper();
        let id = |kind, policy, scale: &Scale, config, plan: Option<&str>| {
            run_identity(
                kind,
                policy,
                scale,
                config,
                Instrumentation::checked(),
                plan,
            )
        };
        let base = id(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &quick,
            ExperimentConfig::NonOversubscribed,
            None,
        );
        assert_eq!(
            base,
            id(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::Awg,
                &quick,
                ExperimentConfig::NonOversubscribed,
                None,
            ),
            "identity must be stable"
        );
        for other in [
            id(
                BenchmarkKind::FaMutexGlobal,
                PolicyKind::Awg,
                &quick,
                ExperimentConfig::NonOversubscribed,
                None,
            ),
            id(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::Timeout,
                &quick,
                ExperimentConfig::NonOversubscribed,
                None,
            ),
            id(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::Awg,
                &paper,
                ExperimentConfig::NonOversubscribed,
                None,
            ),
            id(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::Awg,
                &quick,
                ExperimentConfig::Oversubscribed,
                None,
            ),
            id(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::Awg,
                &quick,
                ExperimentConfig::NonOversubscribed,
                Some("{\"events\":[]}"),
            ),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn corruption_modes_parse_and_roundtrip() {
        for (text, mode) in [
            ("truncate:40", SnapshotCorruption::Truncate(40)),
            ("bitflip:7", SnapshotCorruption::BitFlip(7)),
            ("stale-version", SnapshotCorruption::StaleVersion),
        ] {
            let parsed = SnapshotCorruption::parse(text).unwrap();
            assert_eq!(parsed, mode);
            assert_eq!(parsed.to_string(), text);
        }
        assert!(SnapshotCorruption::parse("nonsense").is_err());
        assert!(SnapshotCorruption::parse("truncate:x").is_err());
        assert!(SnapshotCorruption::parse("bitflip").is_err());
    }

    #[test]
    fn checkpointed_run_matches_plain_and_leftover_snapshot_resumes() {
        let scale = Scale::quick();
        let kind = BenchmarkKind::SpinMutexGlobal;
        let policy = PolicyKind::Awg;
        let config = ExperimentConfig::NonOversubscribed;
        let instr = Instrumentation::checked();
        let identity = run_identity(kind, policy, &scale, config, instr, None);

        let reference = crate::run::run_instrumented(
            kind,
            policy,
            build_policy(policy),
            &scale,
            config,
            None,
            instr,
        );
        assert!(reference.is_valid_completion());

        let path = tmp("inline-resume.ckpt");
        std::fs::remove_file(&path).ok();
        let spec = CheckpointSpec {
            path: path.clone(),
            every: 2_000,
            identity,
            kill_after: None,
        };
        let first = run_checkpointed(
            kind,
            policy,
            &scale,
            config,
            None,
            instr,
            None,
            spec.clone(),
        );
        assert!(first.resumed_from.is_none());
        assert!(
            first.snapshots_written >= 1,
            "{:?}",
            first.snapshots_written
        );
        assert!(first.checkpoint_error.is_none());
        assert_eq!(
            result_fingerprint(&first.result),
            result_fingerprint(&reference),
            "checkpointing must not perturb the run"
        );

        // The final snapshot is still on disk: a re-run resumes from it
        // (the killed-process restart path) and must converge on the same
        // fingerprint.
        let second = run_checkpointed(kind, policy, &scale, config, None, instr, None, spec);
        assert!(second.resumed_from.is_some());
        assert_eq!(
            result_fingerprint(&second.result),
            result_fingerprint(&reference)
        );

        // A corrupted leftover falls back to a fresh, still-correct run.
        corrupt_snapshot(&path, SnapshotCorruption::BitFlip(64)).unwrap();
        let third = run_checkpointed(
            kind,
            policy,
            &scale,
            config,
            None,
            instr,
            None,
            CheckpointSpec {
                path: path.clone(),
                every: 2_000,
                identity,
                kill_after: None,
            },
        );
        assert!(
            third.resumed_from.is_none(),
            "corrupt snapshot must not resume"
        );
        assert_eq!(
            result_fingerprint(&third.result),
            result_fingerprint(&reference)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_refuses_foreign_identity_and_runs_drop_cu_what_if() {
        let scale = Scale::quick();
        let kind = BenchmarkKind::SpinMutexGlobal;
        let config = ExperimentConfig::NonOversubscribed;
        let instr = Instrumentation::checked();
        let identity = run_identity(kind, PolicyKind::Awg, &scale, config, instr, None);

        let path = tmp("restore.ckpt");
        std::fs::remove_file(&path).ok();
        let run = run_checkpointed(
            kind,
            PolicyKind::Awg,
            &scale,
            config,
            None,
            instr,
            None,
            CheckpointSpec {
                path: path.clone(),
                every: 2_000,
                identity,
                kill_after: None,
            },
        );
        assert!(run.result.is_valid_completion());
        let image = read_checkpoint(&path).unwrap();

        // A Timeout machine computes a different identity; the overlay must
        // refuse up front.
        let wrong = run_identity(kind, PolicyKind::Timeout, &scale, config, instr, None);
        let err = restore_run(
            kind,
            PolicyKind::Timeout,
            &scale,
            config,
            None,
            instr,
            &image,
            wrong,
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::CorruptCheckpoint(_)), "{err}");

        // Warm what-if: drop a CU shortly after the snapshot point. AWG
        // must still complete and validate (the paper's §VI claim).
        let what_if = restore_run(
            kind,
            PolicyKind::Awg,
            &scale,
            config,
            None,
            instr,
            &image,
            identity,
            None,
            Some((scale.lost_cu, image.cycle + 500)),
        )
        .unwrap();
        assert!(
            what_if.is_valid_completion(),
            "{} / {:?}",
            what_if.outcome,
            what_if.validated
        );
        std::fs::remove_file(&path).ok();
    }
}
