//! The campaign supervisor: durable, deadline-bounded, retrying job
//! execution on top of the work-stealing [`Pool`].
//!
//! Every campaign (fig05–fig15, the tables, ablations, fairness, sweep,
//! priority, chaos) submits its jobs through a [`Supervisor`] instead of
//! the raw pool, gaining four guarantees:
//!
//! 1. **Durability.** With a journal attached, each finished job is
//!    appended (and flushed) to a JSONL file keyed by the content digest of
//!    its full identity. `--resume` decodes completed jobs from the journal
//!    and re-merges them in enumeration order, so the resumed CSV is
//!    byte-identical to an uninterrupted run.
//! 2. **Deadlines.** Each attempt runs under a [`Watchdog`] (wall-clock
//!    deadline and/or simulated-cycle budget); a wedged simulation becomes
//!    a typed [`SimError::JobTimeout`] row instead of a hung campaign.
//! 3. **Retries.** Retryable failures (panics; timeouts, with an escalated
//!    cycle budget) are re-attempted a bounded number of times with
//!    deterministic exponential backoff; attempt counts are journaled.
//! 4. **Graceful degradation.** On SIGINT/SIGTERM the front end raises the
//!    global cancel flag: in-flight runs stop at the next event boundary,
//!    unstarted jobs return [`SimError::JobCancelled`] immediately, and the
//!    journal already holds everything that finished. Jobs that exhaust
//!    retries are counted so the front end can exit with the
//!    partial-completion code.
//! 5. **Checkpoint-resume.** With a [`CheckpointPolicy`] attached, each
//!    job's attempts write machine snapshots (keyed by the job digest) and
//!    a retry resumes from the last snapshot instead of starting over.
//!    A retry that made snapshot progress since the previous attempt does
//!    *not* consume a `--retries` slot: resuming saved work is continuing
//!    the same attempt, not a new gamble. Only attempts that fail without
//!    advancing the snapshot — a deterministically wedged job — burn
//!    through `max_attempts`, so the loop still terminates.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{
    global_cancelled, read_checkpoint, CancelCause, CheckpointSpec, FaultPlan, SimError, Watchdog,
};
use awg_sim::{Cycle, Fingerprint64};
use awg_workloads::BenchmarkKind;

use crate::checkpointing;
use crate::journal::{JobStatus, Journal, JournalRecord, ResumeState};
use crate::pool::{self, JobOutput, Pool};
use crate::run::{self, ExpResult, ExperimentConfig, Instrumentation};
use crate::{Artifact, Scale};

/// Per-job execution limits and retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLimits {
    /// Host wall-clock deadline per attempt (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Simulated-cycle budget per attempt (`None` = unbounded).
    pub cycle_budget: Option<u64>,
    /// Maximum attempts per job (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base × 2^(n−2)` (deterministic,
    /// so reruns behave identically).
    pub backoff_base: Duration,
    /// Each timeout retry multiplies the cycle budget by this factor, so a
    /// retry distinguishes "slow" from "wedged".
    pub budget_escalation: u32,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            deadline: None,
            cycle_budget: None,
            max_attempts: 2,
            backoff_base: Duration::from_millis(25),
            budget_escalation: 4,
        }
    }
}

/// Computes a job's content digest from its stable key, the scale (which
/// carries the full machine configuration and workload parameters), and any
/// extra identity strings (e.g. a serialized fault plan).
///
/// The digest is what the journal is keyed by: two jobs collide only if
/// they would simulate the same thing, which is exactly when reusing the
/// cached result is correct. The key itself participates so that two arms
/// of a determinism comparison (same computation, different keys) journal
/// separately.
pub fn job_digest(key: &str, scale: &Scale, extras: &[&str]) -> u64 {
    let mut f = Fingerprint64::new();
    f.push_bytes(key.as_bytes());
    f.push_bytes(format!("{scale:?}").as_bytes());
    for extra in extras {
        f.push_bytes(extra.as_bytes());
    }
    f.finish()
}

/// Where (and how often) supervised jobs snapshot their machines. Attached
/// to a [`Supervisor`] via [`Supervisor::with_checkpoints`]; each job's
/// snapshot lives in `dir` under a name derived from its content digest, so
/// concurrent jobs never collide and a restarted campaign finds exactly its
/// own snapshots.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Directory the per-job snapshot files live in (must exist).
    pub dir: PathBuf,
    /// Snapshot interval in simulated cycles.
    pub every: u64,
}

impl CheckpointPolicy {
    /// The snapshot file for the job with the given content digest.
    pub fn snapshot_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("job-{digest:016x}.ckpt"))
    }

    /// The [`CheckpointSpec`] a job with this digest runs under: the
    /// digest doubles as the snapshot identity, so a snapshot can only be
    /// restored by the exact same job.
    pub fn spec_for(&self, digest: u64) -> CheckpointSpec {
        CheckpointSpec {
            path: self.snapshot_path(digest),
            every: self.every,
            identity: digest,
            kill_after: None,
        }
    }
}

/// A supervised task: re-runnable (for retries), handed a [`JobCtl`] to
/// thread the attempt's watchdog into its simulations.
pub type SimTask<'scope, T> = Box<dyn Fn(&JobCtl) -> T + Send + 'scope>;

/// One supervised unit of campaign work.
pub struct SimJob<'scope, T> {
    key: String,
    digest: u64,
    task: SimTask<'scope, T>,
}

/// Creates a supervised job. `digest` should come from [`job_digest`].
pub fn sim_job<'scope, T>(
    key: impl Into<String>,
    digest: u64,
    task: impl Fn(&JobCtl) -> T + Send + 'scope,
) -> SimJob<'scope, T> {
    SimJob {
        key: key.into(),
        digest,
        task: Box::new(task),
    }
}

/// Handle a supervised task receives: carries the current attempt's
/// watchdog and mirrors the `run` module's entry points with the watchdog
/// threaded through.
#[derive(Debug)]
pub struct JobCtl {
    watchdog: Watchdog,
    checkpoint: Option<CheckpointSpec>,
}

impl JobCtl {
    /// A control block with the given watchdog (tests; campaigns get theirs
    /// from the supervisor).
    pub fn with_watchdog(watchdog: Watchdog) -> Self {
        JobCtl {
            watchdog,
            checkpoint: None,
        }
    }

    /// A fresh clone of this attempt's watchdog, for driving a
    /// [`Gpu`](awg_gpu::Gpu) directly.
    pub fn watchdog(&self) -> Watchdog {
        self.watchdog.clone()
    }

    /// The snapshot spec this job runs under, when the supervisor has a
    /// [`CheckpointPolicy`] attached.
    pub fn checkpoint_spec(&self) -> Option<&CheckpointSpec> {
        self.checkpoint.as_ref()
    }

    /// [`run::run_experiment`] with this attempt's watchdog.
    pub fn run_experiment(
        &self,
        kind: BenchmarkKind,
        policy: PolicyKind,
        scale: &Scale,
        config: ExperimentConfig,
    ) -> ExpResult {
        self.run_instrumented(
            kind,
            policy,
            build_policy(policy),
            scale,
            config,
            None,
            Instrumentation::none(),
        )
    }

    /// [`run::run_with_policy`] with this attempt's watchdog.
    pub fn run_with_policy(
        &self,
        kind: BenchmarkKind,
        label: PolicyKind,
        policy_box: Box<dyn awg_gpu::SchedPolicy>,
        scale: &Scale,
        config: ExperimentConfig,
    ) -> ExpResult {
        self.run_instrumented(
            kind,
            label,
            policy_box,
            scale,
            config,
            None,
            Instrumentation::none(),
        )
    }

    /// [`run::run_instrumented`] with this attempt's watchdog.
    #[allow(clippy::too_many_arguments)]
    pub fn run_instrumented(
        &self,
        kind: BenchmarkKind,
        label: PolicyKind,
        policy_box: Box<dyn awg_gpu::SchedPolicy>,
        scale: &Scale,
        config: ExperimentConfig,
        plan: Option<FaultPlan>,
        instr: Instrumentation,
    ) -> ExpResult {
        run::run_watched(
            kind,
            label,
            policy_box,
            scale,
            config,
            plan,
            instr,
            Some(self.watchdog()),
        )
    }

    /// Like [`JobCtl::run_instrumented`], but crash-survivable: when the
    /// supervisor carries a [`CheckpointPolicy`], the run snapshots
    /// periodically and — on a retry after a kill, panic, or timeout —
    /// resumes from the last snapshot instead of starting over. Without a
    /// policy this is exactly `run_instrumented`.
    pub fn run_checkpointed(
        &self,
        kind: BenchmarkKind,
        policy: PolicyKind,
        scale: &Scale,
        config: ExperimentConfig,
        plan: Option<FaultPlan>,
        instr: Instrumentation,
    ) -> ExpResult {
        match &self.checkpoint {
            Some(spec) => {
                checkpointing::run_checkpointed(
                    kind,
                    policy,
                    scale,
                    config,
                    plan,
                    instr,
                    Some(self.watchdog()),
                    spec.clone(),
                )
                .result
            }
            None => self.run_instrumented(
                kind,
                policy,
                build_policy(policy),
                scale,
                config,
                plan,
                instr,
            ),
        }
    }
}

/// The resilience layer around the pool. See the module docs.
pub struct Supervisor {
    pool: Pool,
    limits: JobLimits,
    journal: Option<Mutex<Journal>>,
    resumed: HashMap<u64, JournalRecord>,
    resume_command: Option<String>,
    incomplete: AtomicUsize,
    resumed_hits: AtomicUsize,
    checkpoints: Option<CheckpointPolicy>,
    checkpoint_resumes: AtomicUsize,
}

impl Supervisor {
    /// A supervisor with no journal and default limits: behaves like the
    /// bare pool plus panic retries.
    pub fn bare(pool: Pool) -> Self {
        Supervisor::new(pool, JobLimits::default())
    }

    /// A supervisor with no journal and the given limits.
    pub fn new(pool: Pool, limits: JobLimits) -> Self {
        Supervisor {
            pool,
            limits,
            journal: None,
            resumed: HashMap::new(),
            resume_command: None,
            incomplete: AtomicUsize::new(0),
            resumed_hits: AtomicUsize::new(0),
            checkpoints: None,
            checkpoint_resumes: AtomicUsize::new(0),
        }
    }

    /// Attaches a snapshot policy: jobs run through
    /// [`JobCtl::run_checkpointed`] become crash-survivable, and a retry
    /// that advanced its snapshot does not consume a retry slot.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some(policy);
        self
    }

    /// The attached snapshot policy, if any.
    pub fn checkpoints(&self) -> Option<&CheckpointPolicy> {
        self.checkpoints.as_ref()
    }

    /// Number of retries that resumed from an advanced snapshot (and were
    /// therefore not charged against `max_attempts`).
    pub fn checkpoint_resumes(&self) -> usize {
        self.checkpoint_resumes.load(Ordering::Relaxed)
    }

    /// A supervisor journaling to `path`. With `resume` set, an existing
    /// journal is loaded first: its completed jobs are served from the
    /// journal instead of re-running, and new results are appended to the
    /// same file. Without `resume`, the file is created fresh (truncated).
    ///
    /// `command` is recorded in the header so an interrupted campaign can
    /// print the exact resume command.
    ///
    /// # Errors
    ///
    /// Propagates journal I/O and corruption errors.
    pub fn with_journal(
        pool: Pool,
        limits: JobLimits,
        path: &Path,
        resume: bool,
        command: &str,
    ) -> std::io::Result<Self> {
        let mut sup = Supervisor::new(pool, limits);
        if resume && path.exists() {
            let (journal, state) = Journal::open_resume(path)?;
            let ResumeState {
                command: recorded, ..
            } = &state;
            sup.resume_command = recorded.clone();
            for record in state.records {
                // Only completed jobs short-circuit; failed jobs get a
                // fresh chance on resume.
                if record.status == JobStatus::Ok {
                    sup.resumed.insert(record.digest, record);
                }
            }
            sup.journal = Some(Mutex::new(journal));
        } else {
            sup.journal = Some(Mutex::new(Journal::create(path, command)?));
        }
        Ok(sup)
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The configured per-job limits.
    pub fn limits(&self) -> &JobLimits {
        &self.limits
    }

    /// Number of jobs that exhausted their retries (timeout or panic) so
    /// far. Non-zero means the campaign's report is partial and the front
    /// end should exit with the partial-completion code.
    pub fn incomplete(&self) -> usize {
        self.incomplete.load(Ordering::Relaxed)
    }

    /// Number of jobs served from the resume journal instead of re-run.
    pub fn resumed_jobs(&self) -> usize {
        self.resumed_hits.load(Ordering::Relaxed)
    }

    /// Number of completed records loaded from the resume journal (an
    /// upper bound on [`Supervisor::resumed_jobs`]: a loaded record only
    /// counts as a hit when a matching job is actually enumerated).
    pub fn resumed_records(&self) -> usize {
        self.resumed.len()
    }

    /// Runs every job under supervision and returns outputs in job order
    /// (same merge contract as [`Pool::run`]).
    pub fn run<'scope, T>(&'scope self, jobs: Vec<SimJob<'scope, T>>) -> Vec<JobOutput<T>>
    where
        T: Artifact + Send,
    {
        let pool_jobs = jobs
            .into_iter()
            .map(|job| {
                let key = job.key.clone();
                pool::job(key, move || self.run_one(job))
            })
            .collect();
        self.pool
            .run(pool_jobs)
            .into_iter()
            .map(|out| match out.result {
                // run_one returns the per-job verdict; flatten it into the
                // pool's output slot. The outer Err only fires if the
                // supervisor itself panicked.
                Ok(inner) => JobOutput {
                    key: out.key,
                    wall: inner.wall,
                    result: inner.result,
                },
                Err(e) => JobOutput {
                    key: out.key,
                    wall: out.wall,
                    result: Err(e),
                },
            })
            .collect()
    }

    fn run_one<T: Artifact>(&self, job: SimJob<'_, T>) -> Verdict<T> {
        // Resume cache: a journaled ok record for this digest short-circuits
        // the attempt loop entirely (and is not re-journaled).
        if let Some(record) = self.resumed.get(&job.digest) {
            let stored = record.value.as_ref().expect("ok records carry a value");
            match T::from_json(stored) {
                Ok(value) => {
                    self.resumed_hits.fetch_add(1, Ordering::Relaxed);
                    return Verdict {
                        wall: Duration::from_nanos(record.wall_ns),
                        result: Ok(value),
                    };
                }
                Err(e) => {
                    eprintln!(
                        "warning: journaled result for '{}' is undecodable ({e}); re-running",
                        job.key
                    );
                }
            }
        }

        let ckpt = self
            .checkpoints
            .as_ref()
            .map(|policy| policy.spec_for(job.digest));
        let ckpt_path = ckpt.as_ref().map(|spec| spec.path.display().to_string());
        // The newest snapshot cycle seen so far: seeded from any snapshot a
        // killed earlier process left behind, advanced after each failed
        // attempt. A retry only counts against `max_attempts` when this did
        // NOT move — strict progress is what guarantees termination.
        let mut snapshot_cycle = ckpt.as_ref().and_then(|spec| peek_cycle(&spec.path));

        let started = Instant::now();
        let mut budget = self.limits.cycle_budget;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if global_cancelled() {
                // Not journaled: an interrupted job is neither done nor
                // failed; it simply runs on resume.
                return Verdict {
                    wall: started.elapsed(),
                    result: Err(SimError::JobCancelled {
                        job: job.key.clone(),
                    }),
                };
            }
            let ctl = JobCtl {
                watchdog: Watchdog::new(self.limits.deadline, budget),
                checkpoint: ckpt.clone(),
            };
            match catch_unwind(AssertUnwindSafe(|| (job.task)(&ctl))) {
                Ok(value) => match value.cancelled() {
                    None => {
                        let wall = started.elapsed();
                        self.journal_append(
                            &job,
                            attempt,
                            wall,
                            JobStatus::Ok,
                            &value,
                            None,
                            ckpt_path.clone(),
                        );
                        // The snapshot has served its purpose; a stale one
                        // must not shadow a future same-digest campaign.
                        if let Some(spec) = &ckpt {
                            std::fs::remove_file(&spec.path).ok();
                        }
                        return Verdict {
                            wall,
                            result: Ok(value),
                        };
                    }
                    Some((_, CancelCause::Interrupt)) => {
                        // Snapshot intentionally left on disk: the resumed
                        // campaign continues this job from it.
                        return Verdict {
                            wall: started.elapsed(),
                            result: Err(SimError::JobCancelled {
                                job: job.key.clone(),
                            }),
                        };
                    }
                    Some((at, cause)) => {
                        if self.snapshot_advanced(&ckpt, &mut snapshot_cycle) {
                            // The attempt timed out but banked new work; the
                            // retry resumes from the snapshot and continues
                            // the *same* attempt.
                            attempt -= 1;
                            self.checkpoint_resumes.fetch_add(1, Ordering::Relaxed);
                        } else if attempt >= self.limits.max_attempts {
                            let err = SimError::JobTimeout {
                                job: job.key.clone(),
                                at,
                                cause,
                            };
                            let wall = started.elapsed();
                            self.journal_error(
                                &job,
                                attempt,
                                wall,
                                JobStatus::Timeout,
                                &err,
                                ckpt_path.clone(),
                            );
                            self.incomplete.fetch_add(1, Ordering::Relaxed);
                            return Verdict {
                                wall,
                                result: Err(err),
                            };
                        }
                        // A timeout retry escalates the cycle budget: a
                        // merely slow job completes, a wedged one times
                        // out again.
                        budget = budget
                            .map(|b| b.saturating_mul(u64::from(self.limits.budget_escalation)));
                        self.backoff(attempt.max(1));
                    }
                },
                Err(payload) => {
                    if self.snapshot_advanced(&ckpt, &mut snapshot_cycle) {
                        attempt -= 1;
                        self.checkpoint_resumes.fetch_add(1, Ordering::Relaxed);
                    } else if attempt >= self.limits.max_attempts {
                        let message = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_owned()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_owned()
                        };
                        let err = SimError::JobPanic {
                            job: job.key.clone(),
                            message,
                        };
                        let wall = started.elapsed();
                        self.journal_error(
                            &job,
                            attempt,
                            wall,
                            JobStatus::Panic,
                            &err,
                            ckpt_path.clone(),
                        );
                        self.incomplete.fetch_add(1, Ordering::Relaxed);
                        return Verdict {
                            wall,
                            result: Err(err),
                        };
                    }
                    self.backoff(attempt.max(1));
                }
            }
        }
    }

    /// Whether the job's snapshot advanced past the newest cycle seen so
    /// far (strictly — an unreadable or unmoved snapshot is *not*
    /// progress, so a deterministically wedged job still burns attempts).
    fn snapshot_advanced(&self, spec: &Option<CheckpointSpec>, newest: &mut Option<Cycle>) -> bool {
        let Some(spec) = spec else { return false };
        let Some(cycle) = peek_cycle(&spec.path) else {
            return false;
        };
        let advanced = newest.is_none_or(|seen| cycle > seen);
        if advanced {
            *newest = Some(cycle);
        }
        advanced
    }

    /// Deterministic exponential backoff before retry `attempt + 1`,
    /// shortened when an interrupt is pending.
    fn backoff(&self, attempt: u32) {
        if global_cancelled() {
            return;
        }
        let factor = 1u32 << (attempt.saturating_sub(1)).min(10);
        std::thread::sleep(self.limits.backoff_base * factor);
    }

    #[allow(clippy::too_many_arguments)]
    fn journal_append<T: Artifact>(
        &self,
        job: &SimJob<'_, T>,
        attempts: u32,
        wall: Duration,
        status: JobStatus,
        value: &T,
        error: Option<String>,
        checkpoint: Option<String>,
    ) {
        let Some(journal) = &self.journal else { return };
        let record = JournalRecord {
            key: job.key.clone(),
            digest: job.digest,
            attempts,
            wall_ns: wall.as_nanos() as u64,
            status,
            value: (status == JobStatus::Ok).then(|| value.to_json()),
            error,
            checkpoint,
        };
        let mut journal = journal.lock().expect("journal lock poisoned");
        if let Err(e) = journal.append(&record) {
            eprintln!(
                "warning: failed to journal job '{}' to {}: {e}",
                job.key,
                journal.path().display()
            );
        }
    }

    fn journal_error<T: Artifact>(
        &self,
        job: &SimJob<'_, T>,
        attempts: u32,
        wall: Duration,
        status: JobStatus,
        err: &SimError,
        checkpoint: Option<String>,
    ) {
        let Some(journal) = &self.journal else { return };
        let record = JournalRecord {
            key: job.key.clone(),
            digest: job.digest,
            attempts,
            wall_ns: wall.as_nanos() as u64,
            status,
            value: None,
            error: Some(err.to_string()),
            checkpoint,
        };
        let mut journal = journal.lock().expect("journal lock poisoned");
        if let Err(e) = journal.append(&record) {
            eprintln!(
                "warning: failed to journal job '{}' to {}: {e}",
                job.key,
                journal.path().display()
            );
        }
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("pool", &self.pool)
            .field("limits", &self.limits)
            .field("journaled", &self.journal.is_some())
            .field("resumed", &self.resumed.len())
            .finish()
    }
}

/// The machine cycle a snapshot file holds, if the file parses. Cheap
/// relative to an attempt (one read + CRC), and run only on the failure
/// path.
fn peek_cycle(path: &Path) -> Option<Cycle> {
    read_checkpoint(path).ok().map(|image| image.cycle)
}

/// One job's flattened outcome inside the pool task.
struct Verdict<T> {
    wall: Duration,
    result: Result<T, SimError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    use awg_sim::json::Value;

    use crate::report::Cell;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("awg-supervisor-{tag}-{}.jsonl", std::process::id()))
    }

    fn fast_limits() -> JobLimits {
        JobLimits {
            backoff_base: Duration::from_millis(1),
            ..JobLimits::default()
        }
    }

    /// A tiny artifact whose cancellation status is scripted, for driving
    /// the retry machinery without real simulations.
    #[derive(Debug, Clone, PartialEq)]
    struct Probe {
        n: u64,
        cancelled_at: Option<u64>,
    }

    impl Artifact for Probe {
        fn to_json(&self) -> Value {
            Value::Num(self.n as f64)
        }
        fn from_json(value: &Value) -> Result<Self, String> {
            value
                .as_f64()
                .map(|n| Probe {
                    n: n as u64,
                    cancelled_at: None,
                })
                .ok_or_else(|| "not a probe".to_owned())
        }
        fn cancelled(&self) -> Option<(u64, CancelCause)> {
            self.cancelled_at
                .map(|at| (at, CancelCause::CycleBudget(at)))
        }
    }

    #[test]
    fn digest_separates_key_scale_and_extras() {
        let quick = Scale::quick();
        let paper = Scale::paper();
        let d = |key, scale, extras| job_digest(key, scale, extras);
        assert_eq!(d("a", &quick, &[]), d("a", &quick, &[]));
        assert_ne!(d("a", &quick, &[]), d("b", &quick, &[]));
        assert_ne!(d("a", &quick, &[]), d("a", &paper, &[]));
        assert_ne!(d("a", &quick, &["plan1"]), d("a", &quick, &["plan2"]));
    }

    #[test]
    fn panicking_job_retries_then_succeeds() {
        awg_gpu::reset_global_cancel();
        let sup = Supervisor::new(Pool::serial(), fast_limits());
        let calls = AtomicU32::new(0);
        let outputs = sup.run(vec![sim_job("flaky", 1, |_ctl| {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient failure");
            }
            Probe {
                n: 7,
                cancelled_at: None,
            }
        })]);
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].result.as_ref().unwrap().n, 7);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "one retry");
        assert_eq!(sup.incomplete(), 0);
    }

    #[test]
    fn exhausted_panics_become_typed_rows_and_count_incomplete() {
        awg_gpu::reset_global_cancel();
        let sup = Supervisor::new(Pool::serial(), fast_limits());
        let calls = AtomicU32::new(0);
        let outputs = sup.run(vec![sim_job("doomed", 2, |_ctl| -> Probe {
            calls.fetch_add(1, Ordering::Relaxed);
            panic!("permanent failure");
        })]);
        match &outputs[0].result {
            Err(SimError::JobPanic { job, message }) => {
                assert_eq!(job, "doomed");
                assert!(message.contains("permanent"), "{message}");
            }
            other => panic!("expected JobPanic, got {other:?}"),
        }
        assert_eq!(calls.load(Ordering::Relaxed), 2, "max_attempts respected");
        assert_eq!(sup.incomplete(), 1);
    }

    #[test]
    fn timeout_retry_escalates_the_budget_then_reports_job_timeout() {
        awg_gpu::reset_global_cancel();
        let limits = JobLimits {
            cycle_budget: Some(100),
            max_attempts: 2,
            budget_escalation: 4,
            ..fast_limits()
        };
        let sup = Supervisor::new(Pool::serial(), limits);
        let budgets = Mutex::new(Vec::new());
        let outputs = sup.run(vec![sim_job("wedged", 3, |ctl: &JobCtl| {
            let budget = ctl.watchdog().cycle_budget().unwrap();
            budgets.lock().unwrap().push(budget);
            // Simulate a run that always exceeds its budget.
            Probe {
                n: 0,
                cancelled_at: Some(budget),
            }
        })]);
        assert_eq!(*budgets.lock().unwrap(), vec![100, 400], "budget escalates");
        match &outputs[0].result {
            Err(SimError::JobTimeout { job, at, cause }) => {
                assert_eq!(job, "wedged");
                assert_eq!(*at, 400);
                assert_eq!(*cause, CancelCause::CycleBudget(400));
            }
            other => panic!("expected JobTimeout, got {other:?}"),
        }
        assert_eq!(sup.incomplete(), 1);
    }

    #[test]
    fn journal_records_attempt_counts() {
        awg_gpu::reset_global_cancel();
        let path = temp_path("attempts");
        {
            let sup =
                Supervisor::with_journal(Pool::serial(), fast_limits(), &path, false, "test-cmd")
                    .unwrap();
            let calls = AtomicU32::new(0);
            sup.run(vec![
                sim_job("steady", 10, |_ctl| Probe {
                    n: 1,
                    cancelled_at: None,
                }),
                sim_job("flaky", 11, |_ctl| {
                    if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                        panic!("transient");
                    }
                    Probe {
                        n: 2,
                        cancelled_at: None,
                    }
                }),
                sim_job("doomed", 12, |_ctl| -> Probe { panic!("permanent") }),
            ]);
        }
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert_eq!(state.command.as_deref(), Some("test-cmd"));
        assert_eq!(state.records.len(), 3);
        let by_key: HashMap<&str, &JournalRecord> =
            state.records.iter().map(|r| (r.key.as_str(), r)).collect();
        assert_eq!(by_key["steady"].attempts, 1);
        assert_eq!(by_key["steady"].status, JobStatus::Ok);
        assert_eq!(by_key["flaky"].attempts, 2);
        assert_eq!(by_key["flaky"].status, JobStatus::Ok);
        assert_eq!(by_key["doomed"].attempts, 2);
        assert_eq!(by_key["doomed"].status, JobStatus::Panic);
        assert!(by_key["doomed"].error.as_deref().unwrap().contains("panic"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_serves_ok_records_without_rerunning() {
        awg_gpu::reset_global_cancel();
        let path = temp_path("resume");
        {
            let sup =
                Supervisor::with_journal(Pool::serial(), fast_limits(), &path, false, "test-cmd")
                    .unwrap();
            sup.run(vec![sim_job("done", 42, |_ctl| {
                vec![Cell::Num(8.0), Cell::Text("x".into())]
            })]);
        }
        let sup = Supervisor::with_journal(Pool::serial(), fast_limits(), &path, true, "test-cmd")
            .unwrap();
        let ran = AtomicU32::new(0);
        let outputs = sup.run(vec![
            sim_job("done", 42, |_ctl| {
                ran.fetch_add(1, Ordering::Relaxed);
                vec![Cell::Num(8.0), Cell::Text("x".into())]
            }),
            sim_job("new", 43, |_ctl| vec![Cell::Deadlock]),
        ]);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "cached job must not re-run");
        assert_eq!(sup.resumed_jobs(), 1);
        assert_eq!(
            outputs[0].result.as_ref().unwrap(),
            &vec![Cell::Num(8.0), Cell::Text("x".into())]
        );
        assert_eq!(outputs[1].result.as_ref().unwrap(), &vec![Cell::Deadlock]);
        // The journal now also holds the new job.
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert_eq!(state.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_records_rerun_on_resume() {
        awg_gpu::reset_global_cancel();
        let path = temp_path("failed-rerun");
        {
            let sup =
                Supervisor::with_journal(Pool::serial(), fast_limits(), &path, false, "test-cmd")
                    .unwrap();
            sup.run(vec![sim_job("crashy", 5, |_ctl| -> Probe {
                panic!("always, at first")
            })]);
            assert_eq!(sup.incomplete(), 1);
        }
        let sup = Supervisor::with_journal(Pool::serial(), fast_limits(), &path, true, "test-cmd")
            .unwrap();
        let outputs = sup.run(vec![sim_job("crashy", 5, |_ctl| Probe {
            n: 9,
            cancelled_at: None,
        })]);
        assert_eq!(outputs[0].result.as_ref().unwrap().n, 9, "got a fresh run");
        assert_eq!(sup.resumed_jobs(), 0);
        assert_eq!(sup.incomplete(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupt_cancels_pending_jobs_without_journaling() {
        let path = temp_path("interrupt");
        {
            let sup =
                Supervisor::with_journal(Pool::serial(), fast_limits(), &path, false, "test-cmd")
                    .unwrap();
            awg_gpu::request_global_cancel();
            let outputs = sup.run(vec![sim_job("never-ran", 77, |_ctl| Probe {
                n: 1,
                cancelled_at: None,
            })]);
            awg_gpu::reset_global_cancel();
            match &outputs[0].result {
                Err(SimError::JobCancelled { job }) => assert_eq!(job, "never-ran"),
                other => panic!("expected JobCancelled, got {other:?}"),
            }
        }
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert!(
            state.records.is_empty(),
            "cancelled jobs must not be journaled as done"
        );
        std::fs::remove_file(&path).ok();
    }
}
