//! The experiment runner: one benchmark × one policy × one scenario.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{CancelCause, FaultPlan, Gpu, HotReport, InvariantViolation, RunOutcome, Watchdog};
use awg_sim::{Cycle, MetricSnapshot, ProfileReport, TelemetryConfig, ATTRIBUTION_CAUSES};
use awg_workloads::{BenchmarkKind, BuiltWorkload};

use crate::scale::Scale;

/// Self-checking and observability knobs for a run: the invariant oracle,
/// the per-window state-digest trail, and the telemetry hub.
/// [`Instrumentation::none`] is the plain timing run; the chaos harness
/// runs everything under [`Instrumentation::checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Instrumentation {
    /// Validate machine-wide invariants at every scheduling event.
    pub oracle: bool,
    /// Record a state digest every this-many cycles (for same-seed
    /// divergence localization).
    pub digest_window: Option<Cycle>,
    /// Enable the telemetry hub (per-WG progress accounting, windowed
    /// metric snapshots, host self-profiling).
    pub telemetry: Option<TelemetryConfig>,
    /// Enable the event-loop hot profile (per-lane dispatch counts and
    /// wall time, calendar high-water, wake/dispatch scan counts). Like the
    /// telemetry hub it is a pure observer: digest trails and outcomes
    /// are unchanged.
    pub hot_profile: bool,
}

/// The digest window the chaos harness records at: fine enough to pin a
/// divergence to a few scheduling events, coarse enough to stay cheap.
pub const DIGEST_WINDOW: Cycle = 5_000;

impl Instrumentation {
    /// No self-checking (the plain timing configuration).
    pub fn none() -> Self {
        Self::default()
    }

    /// Oracle on, digests every [`DIGEST_WINDOW`] cycles.
    pub fn checked() -> Self {
        Instrumentation {
            oracle: true,
            digest_window: Some(DIGEST_WINDOW),
            telemetry: None,
            hot_profile: false,
        }
    }

    /// Everything [`checked`](Self::checked) records plus host
    /// self-profiling (no windowed snapshots): campaigns run under this so
    /// the CLI can report aggregate simulated-cycles-per-host-second
    /// across jobs. Telemetry is a pure observer, so the digest trail and
    /// oracle verdicts are identical to `checked`.
    pub fn profiled() -> Self {
        Instrumentation {
            oracle: true,
            digest_window: Some(DIGEST_WINDOW),
            telemetry: Some(TelemetryConfig {
                snapshot_window: None,
                profiling: true,
            }),
            hot_profile: false,
        }
    }

    /// Telemetry only: progress accounting, snapshots every
    /// [`DIGEST_WINDOW`] cycles, and self-profiling.
    pub fn observed() -> Self {
        Instrumentation {
            oracle: false,
            digest_window: None,
            telemetry: Some(TelemetryConfig {
                snapshot_window: Some(DIGEST_WINDOW),
                profiling: true,
            }),
            hot_profile: false,
        }
    }

    /// The performance-observatory configuration: everything
    /// [`observed`](Self::observed) records plus the event-loop hot
    /// profile. `awg-repro profile` runs under this so a single run
    /// yields both the ranked host hotspot table and the per-WG
    /// cycle-attribution ledger.
    pub fn hotspot() -> Self {
        Instrumentation {
            hot_profile: true,
            ..Self::observed()
        }
    }
}

/// A scenario: constant resources, or the §VI mid-kernel resource loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentConfig {
    /// Resources constant for the kernel's lifetime (Fig 14).
    NonOversubscribed,
    /// One CU is removed mid-run (Fig 15).
    Oversubscribed,
}

/// The outcome of one experiment run.
#[derive(Debug)]
pub struct ExpResult {
    /// Which benchmark ran.
    pub kind: BenchmarkKind,
    /// Which policy scheduled it.
    pub policy: PolicyKind,
    /// The raw simulation outcome.
    pub outcome: RunOutcome,
    /// Post-condition validation against the final memory. Runs even for
    /// aborted runs, distinguishing "stalled but memory consistent" from
    /// silent corruption (incomplete runs may legitimately fail
    /// completion-counting checks).
    pub validated: Result<(), String>,
    /// Per-WG `(running, waiting)` cycles at the end of the run.
    pub wg_breakdown: Vec<(u64, u64)>,
    /// Invariant violations the oracle recorded (empty when the oracle was
    /// off — or when the machine really is self-consistent).
    pub violations: Vec<InvariantViolation>,
    /// Per-window state digests (empty unless a digest window was set).
    pub digest_trail: Vec<u64>,
    /// Windowed metric snapshots (empty unless telemetry snapshots were on).
    pub snapshots: Vec<MetricSnapshot>,
    /// Host self-profiling summary (present only when telemetry profiling
    /// was on).
    pub profile: Option<ProfileReport>,
    /// Event-loop hot profile (present only when
    /// [`Instrumentation::hot_profile`] was set).
    pub hot: Option<HotReport>,
    /// Per-WG cycle-attribution ledger, indexed by WG id then
    /// [`AttributionCause`](awg_sim::AttributionCause) index (empty unless
    /// telemetry was on). Each row sums to the run's elapsed cycles.
    pub attribution: Vec<[Cycle; ATTRIBUTION_CAUSES]>,
}

impl ExpResult {
    /// Completion cycles, if the kernel completed.
    pub fn cycles(&self) -> Option<Cycle> {
        self.outcome.completed_cycles()
    }

    /// Whether the run deadlocked.
    pub fn deadlocked(&self) -> bool {
        self.outcome.is_deadlocked()
    }

    /// Dynamic atomic instruction count (the Fig 9 metric).
    pub fn atomics(&self) -> u64 {
        self.outcome.summary().atomics
    }

    /// `(running, waiting)` cycles summed over WGs (the Fig 11 metric).
    pub fn breakdown(&self) -> (u64, u64) {
        let s = self.outcome.summary();
        (s.running_cycles, s.waiting_cycles)
    }

    /// Whether the run completed *and* its post-conditions held.
    pub fn is_valid_completion(&self) -> bool {
        self.outcome.is_completed() && self.validated.is_ok()
    }

    /// The cancellation point and cause, if a watchdog cancelled the run.
    pub fn cancelled(&self) -> Option<(Cycle, CancelCause)> {
        self.outcome.cancelled()
    }

    /// Column sums of the attribution ledger: total cycles spent in each
    /// [`AttributionCause`](awg_sim::AttributionCause) across all WGs.
    pub fn attribution_totals(&self) -> [Cycle; ATTRIBUTION_CAUSES] {
        let mut totals = [0; ATTRIBUTION_CAUSES];
        for row in &self.attribution {
            for (t, c) in totals.iter_mut().zip(row) {
                *t += c;
            }
        }
        totals
    }
}

/// Runs `kind` under `policy` at the given scale and scenario.
///
/// The benchmark is emitted in the policy's required sync style, executed
/// on the timing simulator, and its post-conditions (mutual exclusion,
/// barrier ordering, money conservation, …) are validated against the
/// final memory.
pub fn run_experiment(
    kind: BenchmarkKind,
    policy: PolicyKind,
    scale: &Scale,
    config: ExperimentConfig,
) -> ExpResult {
    run_with_policy(kind, policy, build_policy(policy), scale, config)
}

/// Like [`run_experiment`], but with an explicitly constructed policy
/// instance (ablations, custom SyncMon geometries, chaos wrappers). The
/// `label` is only used in the result.
pub fn run_with_policy(
    kind: BenchmarkKind,
    label: PolicyKind,
    policy_box: Box<dyn awg_gpu::SchedPolicy>,
    scale: &Scale,
    config: ExperimentConfig,
) -> ExpResult {
    run_with_policy_under_plan(kind, label, policy_box, scale, config, None)
}

/// Like [`run_with_policy`], but optionally installing a seeded
/// [`FaultPlan`] the machine injects while the kernel runs (the chaos
/// harness's faulted arm).
pub fn run_with_policy_under_plan(
    kind: BenchmarkKind,
    label: PolicyKind,
    policy_box: Box<dyn awg_gpu::SchedPolicy>,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
) -> ExpResult {
    run_instrumented(
        kind,
        label,
        policy_box,
        scale,
        config,
        plan,
        Instrumentation::none(),
    )
}

/// Like [`run_instrumented`], with no watchdog.
pub fn run_instrumented(
    kind: BenchmarkKind,
    label: PolicyKind,
    policy_box: Box<dyn awg_gpu::SchedPolicy>,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
    instr: Instrumentation,
) -> ExpResult {
    run_watched(kind, label, policy_box, scale, config, plan, instr, None)
}

/// The fully-general runner: scenario, optional fault plan, self-checking
/// instrumentation, and an optional cooperative-cancellation watchdog (the
/// supervisor arms one per job attempt).
#[allow(clippy::too_many_arguments)]
pub fn run_watched(
    kind: BenchmarkKind,
    label: PolicyKind,
    policy_box: Box<dyn awg_gpu::SchedPolicy>,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
    instr: Instrumentation,
    watchdog: Option<Watchdog>,
) -> ExpResult {
    let (built, mut gpu) = prepare_machine(kind, policy_box, scale, config, plan, instr, watchdog);
    let outcome = gpu.run();
    collect_result(kind, label, &built, &gpu, outcome)
}

/// Builds the benchmark and a fully-configured machine for it — scenario,
/// fault plan, instrumentation, and watchdog installed but not yet run.
/// [`run_watched`] drives this machine to completion directly; the
/// checkpointing entry points overlay a snapshot onto it first.
#[allow(clippy::too_many_arguments)]
pub fn prepare_machine(
    kind: BenchmarkKind,
    policy_box: Box<dyn awg_gpu::SchedPolicy>,
    scale: &Scale,
    config: ExperimentConfig,
    plan: Option<FaultPlan>,
    instr: Instrumentation,
    watchdog: Option<Watchdog>,
) -> (BuiltWorkload, Gpu) {
    let mut params = scale.params;
    params.iterations = params.iterations.saturating_mul(kind.episode_weight());
    let built = kind.build(&params, policy_box.style());
    let kernel = built.kernel();
    let mut gpu = Gpu::new(scale.gpu.clone(), kernel, policy_box);
    if config == ExperimentConfig::Oversubscribed {
        gpu.schedule_resource_loss(scale.lost_cu, scale.resource_loss_at);
    }
    if let Some(plan) = plan {
        gpu.install_fault_plan(plan);
    }
    if instr.oracle {
        gpu.enable_invariant_oracle();
    }
    if let Some(window) = instr.digest_window {
        gpu.enable_digest_trail(window);
    }
    if let Some(config) = instr.telemetry {
        gpu.enable_telemetry(config);
    }
    if instr.hot_profile {
        gpu.enable_hot_profile();
    }
    if let Some(watchdog) = watchdog {
        gpu.set_watchdog(watchdog);
    }
    (built, gpu)
}

/// Packages a finished machine into an [`ExpResult`] — the common epilogue
/// of [`run_watched`] and the checkpoint/restore entry points.
pub fn collect_result(
    kind: BenchmarkKind,
    label: PolicyKind,
    built: &BuiltWorkload,
    gpu: &Gpu,
    outcome: RunOutcome,
) -> ExpResult {
    let validated = built.validate(gpu.backing());
    let wg_breakdown = gpu.wg_breakdown();
    let attribution = gpu
        .telemetry()
        .map(|h| {
            (0..wg_breakdown.len())
                .map(|wg| h.wg_cause_times(wg).unwrap_or([0; ATTRIBUTION_CAUSES]))
                .collect()
        })
        .unwrap_or_default();
    ExpResult {
        kind,
        policy: label,
        outcome,
        validated,
        wg_breakdown,
        violations: gpu.violations().to_vec(),
        digest_trail: gpu.digest_trail().to_vec(),
        snapshots: gpu
            .telemetry()
            .map(|h| h.snapshots().to_vec())
            .unwrap_or_default(),
        profile: gpu.profile_report(),
        hot: gpu.hot_report(),
        attribution,
    }
}

/// Geometric mean of strictly positive values (empty input → 1.0).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn baseline_completes_spin_mutex_quick() {
        let scale = Scale::quick();
        let r = run_experiment(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Baseline,
            &scale,
            ExperimentConfig::NonOversubscribed,
        );
        assert!(
            r.is_valid_completion(),
            "{:?} / {:?}",
            r.outcome,
            r.validated
        );
        assert!(r.atomics() > 0);
    }

    #[test]
    fn awg_completes_and_validates_quick() {
        let scale = Scale::quick();
        for kind in [
            BenchmarkKind::SpinMutexGlobal,
            BenchmarkKind::FaMutexGlobal,
            BenchmarkKind::TreeBarrier,
        ] {
            let r = run_experiment(
                kind,
                PolicyKind::Awg,
                &scale,
                ExperimentConfig::NonOversubscribed,
            );
            assert!(
                r.is_valid_completion(),
                "{kind}: {:?} / {:?}",
                r.outcome,
                r.validated
            );
        }
    }

    #[test]
    fn baseline_deadlocks_oversubscribed_quick() {
        let scale = Scale::quick();
        let r = run_experiment(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Baseline,
            &scale,
            ExperimentConfig::Oversubscribed,
        );
        assert!(r.deadlocked(), "expected deadlock, got {:?}", r.outcome);
    }

    #[test]
    fn aborted_runs_still_validate_memory() {
        let scale = Scale::quick();
        let r = run_experiment(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Baseline,
            &scale,
            ExperimentConfig::Oversubscribed,
        );
        assert!(r.deadlocked(), "{}", r.outcome);
        assert!(
            r.validated.is_err(),
            "a deadlocked mutex run leaves its counters short; validation must say so"
        );
        assert!(!r.is_valid_completion());
    }

    #[test]
    fn awg_survives_oversubscription_quick() {
        let scale = Scale::quick();
        let r = run_experiment(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::Oversubscribed,
        );
        assert!(
            r.is_valid_completion(),
            "{:?} / {:?}",
            r.outcome,
            r.validated
        );
    }
}
