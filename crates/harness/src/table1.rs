//! Table 1: the baseline GPU model.

use crate::supervisor::Supervisor;
use crate::{Cell, Report, Row, Scale};

/// Runner-uniform entry: Table 1 is pure configuration rendering, so the
/// supervisor is unused.
pub fn run_supervised(scale: &Scale, _sup: &Supervisor) -> Report {
    run(scale)
}

/// Renders the machine configuration as the paper's Table 1.
pub fn run(scale: &Scale) -> Report {
    let g = &scale.gpu;
    let mut r = Report::new("Table 1: Baseline GPU model", vec!["Value"]);
    let rows: Vec<(String, String)> = vec![
        ("Compute Units".into(), g.num_cus.to_string()),
        ("Clock".into(), "2 GHz".into()),
        ("SIMD units / CU".into(), g.simds_per_cu.to_string()),
        ("SIMD width".into(), g.simd_width.to_string()),
        (
            "Wavefronts per SIMD".into(),
            g.wavefronts_per_simd.to_string(),
        ),
        (
            "Instruction cache (per 4 CUs)".into(),
            "32 KB, 8-way, 4 cycles".into(),
        ),
        (
            "Scalar cache (per 4 CUs)".into(),
            "16 KB, 8-way, 4 cycles".into(),
        ),
        (
            "L1 cache / CU".into(),
            format!(
                "{} KB, {}-way, {} cycles",
                g.l1.capacity_bytes() / 1024,
                g.l1.ways,
                g.l1.latency
            ),
        ),
        (
            "L2 cache shared".into(),
            format!(
                "{} KB, {}-way, {} cycles, {} banks",
                g.l2.cache.capacity_bytes() / 1024,
                g.l2.cache.ways,
                g.l2.cache.latency,
                g.l2.banks
            ),
        ),
        (
            "DRAM".into(),
            format!(
                "DDR3, {} channels, {}-cycle latency",
                g.dram.channels, g.dram.latency
            ),
        ),
    ];
    for (name, value) in rows {
        r.push(Row::new(name, vec![Cell::Text(value)]));
    }
    r.note("Matches ISCA 2020 Table 1; bank count and DRAM latency are this reproduction's refinements.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_table1() {
        let r = run(&Scale::paper());
        assert_eq!(
            r.cell("Compute Units", "Value"),
            Some(&Cell::Text("8".into()))
        );
        let md = r.to_markdown();
        assert!(md.contains("512 KB"));
        assert!(md.contains("32 KB, 16-way, 30 cycles"));
        assert!(md.contains("DDR3, 4 channels"));
    }
}
