//! Fig 9: wait efficiency — dynamic atomic instruction count normalized to
//! the MinResume oracle (log scale in the paper).
//!
//! Paper shape: sporadic MonRS-All wastes up to two orders of magnitude
//! more atomics on unnecessary resumes; condition-checking MonR/MonNR come
//! much closer to the oracle; decentralized primitives are barely affected
//! (their variables see at most one meaningful update).

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The policies Fig 9 compares against the oracle.
pub const POLICIES: [PolicyKind; 3] = [
    PolicyKind::MonRsAll,
    PolicyKind::MonRAll,
    PolicyKind::MonNrAll,
];

/// Runs the Fig 9 comparison.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 9 comparison under `sup`: one supervised job per
/// (benchmark, policy) cell including the MinResume oracle, merged back in
/// enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Fig 9: Wait efficiency (dynamic atomics normalized to MinResume)",
        vec!["MinResume", "MonRS-All", "MonR-All", "MonNR-All"],
    );
    let mut jobs = Vec::new();
    for kind in BenchmarkKind::heterosync_suite() {
        let key = format!("fig09/{}/MinResume", kind.abbreviation());
        let digest = job_digest(&key, scale, &[]);
        jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
            ctl.run_experiment(
                kind,
                PolicyKind::MinResume,
                scale,
                ExperimentConfig::NonOversubscribed,
            )
        }));
        for policy in POLICIES {
            let key = format!("fig09/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_experiment(kind, policy, scale, ExperimentConfig::NonOversubscribed)
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in BenchmarkKind::heterosync_suite() {
        let oracle = outputs.next().expect("one oracle job per benchmark");
        let base = oracle
            .result
            .as_ref()
            .map(|res| res.atomics().max(1))
            .unwrap_or(1);
        let mut cells = vec![match &oracle.result {
            Ok(_) => Cell::Num(1.0),
            Err(e) => pool::error_cell(e),
        }];
        for _ in POLICIES {
            let out = outputs.next().expect("one job per compared policy");
            cells.push(match &out.result {
                Ok(res) if res.outcome.is_completed() => {
                    Cell::Num(res.atomics() as f64 / base as f64)
                }
                Ok(_) => Cell::Deadlock,
                Err(e) => pool::error_cell(e),
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better (1.0 = oracle). Paper shape: MonRS-All up to ~100x; MonR/MonNR near the oracle.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ratios_are_sane() {
        let r = run(&Scale::quick());
        for row in &r.rows {
            let monrs = row.cells[1].as_num();
            let monnr = row.cells[3].as_num();
            if let (Some(a), Some(b)) = (monrs, monnr) {
                assert!(a > 0.0 && b > 0.0, "{}", row.label);
            }
        }
        // FAM_G has one sync variable with many distinct waiting values:
        // sporadic notifications wake every waiter on each poll while the
        // condition-checking monitor wakes only the matching ticket, so the
        // separation is structural even at quick scale.
        let fam_monrs = r.cell("FAM_G", "MonRS-All").unwrap().as_num().unwrap();
        let fam_monnr = r.cell("FAM_G", "MonNR-All").unwrap().as_num().unwrap();
        assert!(
            fam_monrs > fam_monnr,
            "sporadic {fam_monrs} <= checked {fam_monnr}"
        );
    }
}
