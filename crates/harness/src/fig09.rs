//! Fig 9: wait efficiency — dynamic atomic instruction count normalized to
//! the MinResume oracle (log scale in the paper).
//!
//! Paper shape: sporadic MonRS-All wastes up to two orders of magnitude
//! more atomics on unnecessary resumes; condition-checking MonR/MonNR come
//! much closer to the oracle; decentralized primitives are barely affected
//! (their variables see at most one meaningful update).

use awg_core::policies::PolicyKind;
use awg_workloads::BenchmarkKind;

use crate::run::{run_experiment, ExperimentConfig};
use crate::{Cell, Report, Row, Scale};

/// The policies Fig 9 compares against the oracle.
pub const POLICIES: [PolicyKind; 3] = [
    PolicyKind::MonRsAll,
    PolicyKind::MonRAll,
    PolicyKind::MonNrAll,
];

/// Runs the Fig 9 comparison.
pub fn run(scale: &Scale) -> Report {
    let mut r = Report::new(
        "Fig 9: Wait efficiency (dynamic atomics normalized to MinResume)",
        vec!["MinResume", "MonRS-All", "MonR-All", "MonNR-All"],
    );
    for kind in BenchmarkKind::heterosync_suite() {
        let oracle = run_experiment(
            kind,
            PolicyKind::MinResume,
            scale,
            ExperimentConfig::NonOversubscribed,
        );
        let base = oracle.atomics().max(1);
        let mut cells = vec![Cell::Num(1.0)];
        for policy in POLICIES {
            let res = run_experiment(kind, policy, scale, ExperimentConfig::NonOversubscribed);
            cells.push(if res.outcome.is_completed() {
                Cell::Num(res.atomics() as f64 / base as f64)
            } else {
                Cell::Deadlock
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("Lower is better (1.0 = oracle). Paper shape: MonRS-All up to ~100x; MonR/MonNR near the oracle.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ratios_are_sane() {
        let r = run(&Scale::quick());
        for row in &r.rows {
            let monrs = row.cells[1].as_num();
            let monnr = row.cells[3].as_num();
            if let (Some(a), Some(b)) = (monrs, monnr) {
                assert!(a > 0.0 && b > 0.0, "{}", row.label);
            }
        }
        // FAM_G has one sync variable with many distinct waiting values:
        // sporadic notifications wake every waiter on each poll while the
        // condition-checking monitor wakes only the matching ticket, so the
        // separation is structural even at quick scale.
        let fam_monrs = r.cell("FAM_G", "MonRS-All").unwrap().as_num().unwrap();
        let fam_monnr = r.cell("FAM_G", "MonNR-All").unwrap().as_num().unwrap();
        assert!(
            fam_monrs > fam_monnr,
            "sporadic {fam_monrs} <= checked {fam_monnr}"
        );
    }
}
