//! The fairness study the paper leaves for future work (§V.A).
//!
//! "The Monitor Log may contain younger waiting conditions than the SyncMon
//! Cache. This can lead to fairness issues that can be addressed with
//! different replacement policies." With a deliberately tiny SyncMon most
//! registrations spill to the CP, and the CP's condition-check order
//! becomes the fairness lever: address-sorted checks systematically favour
//! low addresses, while oldest-first checks release spilled waiters in
//! arrival order.
//!
//! The metric is the spread of per-WG waiting time (max/mean): a fair
//! scheduler keeps it low even when every waiter takes the slow path.

use awg_core::policies::{AwgPolicy, PolicyKind};
use awg_core::{CheckOrder, SyncMonConfig};
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::{ExpResult, ExperimentConfig};
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

fn tiny_syncmon() -> SyncMonConfig {
    SyncMonConfig {
        sets: 4,
        ways: 2,
        waiter_slots: 16,
        bloom_filters: 16,
    }
}

/// `(max, mean)` waiting cycles across WGs.
fn waiting_spread(result: &ExpResult) -> (u64, f64) {
    let waits: Vec<u64> = result.wg_breakdown.iter().map(|&(_, w)| w).collect();
    let max = waits.iter().copied().max().unwrap_or(0);
    let mean = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    };
    (max, mean)
}

fn run_order(kind: BenchmarkKind, order: CheckOrder, scale: &Scale, ctl: &JobCtl) -> ExpResult {
    ctl.run_with_policy(
        kind,
        PolicyKind::Awg,
        Box::new(
            AwgPolicy::new()
                .with_monitor_config(tiny_syncmon(), 4096)
                .with_check_order(order),
        ),
        scale,
        ExperimentConfig::NonOversubscribed,
    )
}

/// The benchmarks the fairness study sweeps.
pub fn benchmarks() -> [BenchmarkKind; 4] {
    [
        BenchmarkKind::SleepMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::LfTreeBarrier,
        BenchmarkKind::SpinMutexGlobal,
    ]
}

/// Runs the fairness comparison.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the fairness comparison under `sup`: one supervised job per
/// (benchmark, check-order) cell, merged in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Fairness: CP check order with a spill-heavy (tiny) SyncMon",
        vec![
            "sorted: cycles",
            "sorted: max/mean wait",
            "oldest-first: cycles",
            "oldest-first: max/mean wait",
        ],
    );
    const ORDERS: [(CheckOrder, &str); 2] = [
        (CheckOrder::AddressSorted, "sorted"),
        (CheckOrder::OldestFirst, "oldest-first"),
    ];
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for (order, name) in ORDERS {
            let key = format!("fairness/{}/{name}", kind.abbreviation());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                run_order(kind, order, scale, ctl)
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        let mut cells = Vec::new();
        for _ in ORDERS {
            let out = outputs.next().expect("one job per check order");
            match &out.result {
                Ok(res) => match res.cycles() {
                    Some(c) if res.validated.is_ok() => {
                        let (max, mean) = waiting_spread(res);
                        cells.push(Cell::Num(c as f64));
                        cells.push(Cell::Num(if mean > 0.0 { max as f64 / mean } else { 0.0 }));
                    }
                    _ => {
                        cells.push(Cell::Deadlock);
                        cells.push(Cell::Missing);
                    }
                },
                Err(e) => {
                    cells.push(pool::error_cell(e));
                    cells.push(Cell::Missing);
                }
            }
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note(
        "max/mean waiting ratio closer to 1.0 = fairer. Both orders must complete and validate.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_orders_complete_and_validate() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            for cell in &row.cells {
                assert!(cell.as_num().is_some(), "{}: {cell:?}", row.label);
            }
        }
    }

    #[test]
    fn spread_metric_behaves() {
        let r = run(&Scale::quick());
        for row in &r.rows {
            let sorted_ratio = row.cells[1].as_num().unwrap();
            let oldest_ratio = row.cells[3].as_num().unwrap();
            assert!(sorted_ratio >= 0.9, "{}: {sorted_ratio}", row.label);
            assert!(oldest_ratio >= 0.9, "{}: {oldest_ratio}", row.label);
        }
    }
}
