//! Ablations of AWG's design choices (beyond the paper's figures).
//!
//! The paper motivates each component of AWG qualitatively (§V.D); this
//! module quantifies them by disabling one at a time in the oversubscribed
//! scenario, where every mechanism is exercised:
//!
//! * **no resume prediction** — always resume all waiters (degrades toward
//!   MonNR-All's mutex behaviour),
//! * **no stall prediction** — context switch immediately on every wait
//!   (pays save/restore traffic even for short waits),
//! * **tiny SyncMon** — 8 conditions / 16 waiter slots, so most
//!   registrations spill through the Monitor Log to the CP's periodic
//!   checks (the virtualization path, §V.A),
//! * **tiny Monitor Log** — 4 entries on top of the tiny SyncMon, so
//!   overflow degenerates to Mesa retries.

use awg_core::policies::{AwgPolicy, PolicyKind};
use awg_core::SyncMonConfig;
use awg_gpu::SchedPolicy;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, Pool};
use crate::run::ExperimentConfig;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The ablated variants, in report order.
pub const VARIANTS: [&str; 5] = [
    "AWG",
    "no resume pred.",
    "no stall pred.",
    "tiny SyncMon",
    "tiny SyncMon+Log",
];

fn tiny_syncmon() -> SyncMonConfig {
    SyncMonConfig {
        sets: 4,
        ways: 2,
        waiter_slots: 16,
        bloom_filters: 16,
    }
}

fn build_variant(index: usize) -> Box<dyn SchedPolicy> {
    match index {
        0 => Box::new(AwgPolicy::new()),
        1 => Box::new(AwgPolicy::new().without_resume_prediction()),
        2 => Box::new(AwgPolicy::new().without_stall_prediction()),
        3 => Box::new(AwgPolicy::new().with_monitor_config(tiny_syncmon(), 4096)),
        4 => Box::new(AwgPolicy::new().with_monitor_config(tiny_syncmon(), 4)),
        _ => unreachable!("variant index"),
    }
}

/// The benchmarks the ablation sweeps (one per behaviour class).
pub fn benchmarks() -> [BenchmarkKind; 4] {
    [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::SleepMutexGlobal,
        BenchmarkKind::TreeBarrier,
    ]
}

/// Runs the ablation study (oversubscribed scenario; runtime normalized to
/// full AWG).
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the ablation study under `sup`: one supervised job per (benchmark,
/// variant) cell. Variants are constructed inside their jobs (policy boxes
/// are not shared across threads — and each retry needs a fresh one), and
/// results merge in enumeration order.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = Report::new(
        "Ablations: AWG components disabled one at a time (runtime / full AWG, oversubscribed)",
        VARIANTS.to_vec(),
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for (v, name) in VARIANTS.iter().enumerate() {
            let key = format!("ablations/{}/{name}", kind.abbreviation());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_with_policy(
                    kind,
                    PolicyKind::Awg,
                    build_variant(v),
                    scale,
                    ExperimentConfig::Oversubscribed,
                )
            }));
        }
    }
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        let results: Vec<_> = VARIANTS
            .iter()
            .map(|_| outputs.next().expect("one job per ablated variant"))
            .collect();
        let Some(base) = results[0]
            .result
            .as_ref()
            .ok()
            .and_then(|full| full.cycles())
        else {
            r.push(Row::new(
                kind.abbreviation(),
                vec![Cell::Deadlock; VARIANTS.len()],
            ));
            continue;
        };
        let mut cells = vec![Cell::Num(1.0)];
        for out in &results[1..] {
            cells.push(match &out.result {
                Ok(res) => match (res.cycles(), &res.validated) {
                    (Some(c), Ok(())) => Cell::Num(c as f64 / base as f64),
                    (Some(_), Err(e)) => Cell::Text(format!("INVALID: {e}")),
                    (None, _) => Cell::Deadlock,
                },
                Err(e) => pool::error_cell(e),
            });
        }
        r.push(Row::new(kind.abbreviation(), cells));
    }
    r.note("1.0 = full AWG; higher = slower. Every variant must still complete (IFP is preserved by the fallback timeouts even with a 4-entry Monitor Log).");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_preserve_forward_progress_and_correctness() {
        let r = run(&Scale::quick());
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            for (col, cell) in r.columns.iter().zip(&row.cells) {
                assert!(
                    cell.as_num().is_some(),
                    "{} under '{}' did not complete cleanly: {cell:?}",
                    row.label,
                    col
                );
            }
        }
    }

    #[test]
    fn virtualization_path_costs_time_but_works() {
        // The tiny SyncMon must spill; spilled waiters resume via the CP's
        // periodic checks, which is slower than the fast path.
        let r = run(&Scale::quick());
        let slm_tiny = r
            .cell("SLM_G", "tiny SyncMon")
            .and_then(Cell::as_num)
            .expect("completed");
        assert!(
            slm_tiny >= 1.0,
            "the Monitor Log slow path should not be faster: {slm_tiny}"
        );
    }
}
