//! Fig 15: speedup over Timeout in the oversubscribed scenario (one CU is
//! removed at 50 µs).
//!
//! Paper shape: Baseline and Sleep DEADLOCK on every benchmark; AWG beats
//! Timeout by ~2.5× geomean but can trail it on some latency-sensitive tree
//! barriers because of stall-time misprediction.

use awg_core::policies::PolicyKind;

use crate::fig14::run_speedups;
use crate::pool::Pool;
use crate::run::ExperimentConfig;
use crate::supervisor::Supervisor;
use crate::{Report, Scale};

/// Runs the Fig 15 comparison.
pub fn run(scale: &Scale) -> Report {
    run_supervised(scale, &Supervisor::bare(Pool::serial()))
}

/// Runs the Fig 15 comparison under `sup`.
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> Report {
    let mut r = run_speedups(
        scale,
        ExperimentConfig::Oversubscribed,
        PolicyKind::Timeout,
        "Fig 15: Speedup normalized to Timeout (oversubscribed: one CU lost mid-run)",
        sup,
    );
    r.note("Baseline and Sleep cannot reschedule preempted WGs and deadlock, as in the paper.");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cell;

    #[test]
    fn quick_fig15_baseline_deadlocks_and_awg_survives() {
        let r = run(&Scale::quick());
        let mut baseline_deadlocks = 0;
        for row in &r.rows {
            if row.label == "GeoMean" {
                continue;
            }
            if row.cells[0] == Cell::Deadlock {
                baseline_deadlocks += 1;
            }
            // AWG must complete everywhere.
            assert!(
                row.cells[5].as_num().is_some(),
                "{}: AWG cell {:?}",
                row.label,
                row.cells[5]
            );
        }
        assert!(
            baseline_deadlocks >= 10,
            "Baseline must deadlock on (nearly) all benchmarks, got {baseline_deadlocks}"
        );
    }
}
