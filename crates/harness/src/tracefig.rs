//! Fig 6-style policy timelines: a traced run of a contended lock under a
//! chosen policy, rendered as an event table.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{Gpu, TraceEvent};
use awg_workloads::{BenchmarkKind, WorkloadParams};

use crate::{Cell, Report, Row, Scale};

/// Maximum rendered trace rows.
pub const MAX_ROWS: usize = 60;

/// Traces `policy` on a tiny contended spin mutex and renders the first
/// scheduling events (the Fig 6 timeline signature of that policy).
pub fn run_policy(scale: &Scale, policy: PolicyKind) -> Report {
    let params = WorkloadParams {
        num_wgs: 4,
        wgs_per_cluster: 2,
        iterations: 1,
        ..scale.params
    };
    let policy_box = build_policy(policy);
    let style = policy_box.style();
    let built = BenchmarkKind::SpinMutexGlobal.build(&params, style);
    let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
    gpu.enable_trace();
    let outcome = gpu.run();

    let mut r = Report::new(
        format!("Fig 6 timeline: SPM under {}", policy.label()),
        vec!["WG", "Event"],
    );
    for rec in gpu
        .trace_records()
        .iter()
        .filter(|rec| {
            !matches!(
                rec.event,
                TraceEvent::AtomicIssue { .. } | TraceEvent::AtomicDone { .. }
            )
        })
        .take(MAX_ROWS)
    {
        r.push(Row::new(
            format!("{}", rec.cycle),
            vec![
                Cell::Num(rec.wg as f64),
                Cell::Text(format!("{:?}", rec.event)),
            ],
        ));
    }
    r.note(format!(
        "Outcome: {}",
        if outcome.is_completed() {
            "completed"
        } else {
            "did not complete"
        }
    ));
    r
}

/// Default trace (AWG).
pub fn run(scale: &Scale) -> Report {
    run_policy(scale, PolicyKind::Awg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awg_trace_shows_scheduling_events() {
        let r = run(&Scale::quick());
        assert!(!r.rows.is_empty());
        let md = r.to_markdown();
        assert!(md.contains("Dispatch"), "{md}");
        assert!(md.contains("completed"));
    }

    #[test]
    fn baseline_trace_has_no_stalls() {
        let r = run_policy(&Scale::quick(), PolicyKind::Baseline);
        let md = r.to_markdown();
        assert!(!md.contains("Stall"), "busy-waiting never stalls: {md}");
    }
}

/// One character of Gantt state per WG per time bucket:
/// `.` pending/finished, `R` running, `s` stalled, `z` sleeping,
/// `o` saving context, `w` swapped out waiting, `i` restoring context.
pub fn render_gantt(
    records: &[awg_gpu::TraceRecord],
    num_wgs: u32,
    total_cycles: u64,
    buckets: usize,
) -> String {
    use std::fmt::Write as _;
    #[derive(Clone, Copy, PartialEq)]
    enum S {
        Pending,
        Running,
        Stalled,
        Sleeping,
        SwapOut,
        Swapped,
        SwapIn,
        Done,
    }
    let glyph = |s: S| match s {
        S::Pending | S::Done => '.',
        S::Running => 'R',
        S::Stalled => 's',
        S::Sleeping => 'z',
        S::SwapOut => 'o',
        S::Swapped => 'w',
        S::SwapIn => 'i',
    };
    let buckets = buckets.max(1);
    let total = total_cycles.max(1);
    let mut rows = vec![vec![glyph(S::Pending); buckets]; num_wgs as usize];
    let mut state = vec![S::Pending; num_wgs as usize];
    let mut since = vec![0u64; num_wgs as usize];

    let fill = |wg: usize, from: u64, to: u64, s: S, rows: &mut Vec<Vec<char>>| {
        let b0 = (from * buckets as u64 / total) as usize;
        let b1 = ((to * buckets as u64).div_ceil(total) as usize).min(buckets);
        for cell in rows[wg][b0..b1].iter_mut() {
            *cell = glyph(s);
        }
    };

    for rec in records {
        let wg = rec.wg as usize;
        if wg >= state.len() {
            continue;
        }
        let next = match rec.event {
            TraceEvent::Dispatch { .. } | TraceEvent::Resume => Some(S::Running),
            TraceEvent::Stall => Some(S::Stalled),
            TraceEvent::Sleep { .. } => Some(S::Sleeping),
            TraceEvent::SwapOutStart => Some(S::SwapOut),
            TraceEvent::SwapOutDone => Some(S::Swapped),
            TraceEvent::SwapInStart { .. } => Some(S::SwapIn),
            TraceEvent::Finish => Some(S::Done),
            _ => None,
        };
        if let Some(next) = next {
            fill(wg, since[wg], rec.cycle, state[wg], &mut rows);
            state[wg] = next;
            since[wg] = rec.cycle;
        }
    }
    for wg in 0..state.len() {
        fill(wg, since[wg], total, state[wg], &mut rows);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycles 0..{total} in {buckets} buckets  (R run, s stall, z sleep, o save, w swapped, i restore, . idle)"
    );
    for (wg, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "wg{wg:<3} |{}|", row.iter().collect::<String>());
    }
    out
}

/// Runs a tiny contended lock under `policy` and returns the ASCII Gantt.
pub fn gantt_for(scale: &Scale, policy: PolicyKind) -> String {
    let params = WorkloadParams {
        num_wgs: 4,
        wgs_per_cluster: 2,
        iterations: 2,
        ..scale.params
    };
    let policy_box = build_policy(policy);
    let style = policy_box.style();
    let built = BenchmarkKind::SpinMutexGlobal.build(&params, style);
    let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
    gpu.enable_trace();
    let _ = gpu.run();
    format!(
        "SPM x4 under {}\n{}",
        policy.label(),
        render_gantt(&gpu.trace_records(), 4, gpu.now(), 72)
    )
}

#[cfg(test)]
mod gantt_tests {
    use super::*;

    #[test]
    fn gantt_shows_running_and_finishing() {
        let g = gantt_for(&Scale::quick(), PolicyKind::Baseline);
        assert!(g.contains('R'), "{g}");
        assert_eq!(g.lines().filter(|l| l.starts_with("wg")).count(), 4);
    }

    #[test]
    fn awg_gantt_shows_hardware_waiting() {
        let g = gantt_for(&Scale::quick(), PolicyKind::Awg);
        assert!(
            g.contains('s') || g.contains('w'),
            "no waiting states:\n{g}"
        );
    }

    #[test]
    fn timeout_policy_gantt_differs_from_baseline() {
        let a = gantt_for(&Scale::quick(), PolicyKind::Baseline);
        let b = gantt_for(&Scale::quick(), PolicyKind::Timeout);
        assert_ne!(a, b);
    }
}
