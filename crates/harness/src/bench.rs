//! Host-performance campaign: how fast does the simulator itself run?
//!
//! Runs a (benchmark × policy) matrix with the telemetry hub's
//! self-profiling on and reports, per job, the simulated cycle count, the
//! job's host wall-clock, and the resulting simulation rate — plus the
//! campaign aggregate via [`CampaignProfile`]. This is the `awg-repro
//! bench` subcommand: the number to watch when changing the event loop or
//! the sweep pool's scheduling.
//!
//! Wall-clocks vary run to run, so this report is *not* byte-deterministic
//! across invocations — only its row/column structure and the simulated
//! cycle counts are.

use awg_core::policies::{build_policy, PolicyKind};
use awg_workloads::BenchmarkKind;

use crate::pool::{self, CampaignProfile, Pool};
use crate::run::{run_instrumented, ExperimentConfig, Instrumentation};
use crate::{Cell, Report, Row, Scale};

/// The benchmark arm (one spin lock, one ticket lock, one barrier — the
/// chaos matrix's suite, so `bench` and `chaos` numbers are comparable).
pub fn benchmarks() -> [BenchmarkKind; 3] {
    crate::chaos::benchmarks()
}

/// The policy arm (the chaos matrix's IFP designs).
pub fn policies() -> [PolicyKind; 5] {
    crate::chaos::policies()
}

/// Runs the host-performance matrix on `pool`. Returns the per-job report
/// and the campaign aggregate (total wall-clock, absorbed run stats, and
/// simulated cycles per host-second).
pub fn run_pooled(scale: &Scale, pool: &Pool) -> (Report, CampaignProfile) {
    let mut r = Report::new(
        "Bench: simulator host performance (self-profile per job)",
        vec!["sim Mcycles", "host ms", "Mcycles/s"],
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in policies() {
            jobs.push(pool::job(
                format!("bench/{}/{}", kind.abbreviation(), policy.label()),
                move || {
                    run_instrumented(
                        kind,
                        policy,
                        build_policy(policy),
                        scale,
                        ExperimentConfig::NonOversubscribed,
                        None,
                        Instrumentation::profiled(),
                    )
                },
            ));
        }
    }
    let mut profile = CampaignProfile::default();
    let mut outputs = pool.run(jobs).into_iter();
    for kind in benchmarks() {
        for policy in policies() {
            let out = outputs.next().expect("one job per matrix cell");
            profile.absorb_job(&out);
            let label = format!("{}/{}", kind.abbreviation(), policy.label());
            let cells = match &out.result {
                Ok(res) => match &res.profile {
                    Some(p) => {
                        let secs = p.total_wall.as_secs_f64();
                        vec![
                            Cell::Num(p.sim_cycles as f64 / 1e6),
                            Cell::Num(secs * 1e3),
                            Cell::Num(if secs > 0.0 {
                                p.sim_cycles as f64 / secs / 1e6
                            } else {
                                0.0
                            }),
                        ]
                    }
                    None => vec![Cell::Missing; 3],
                },
                Err(e) => vec![pool::error_cell(e); 3],
            };
            r.push(Row::new(label, cells));
        }
    }
    r.note(format!("Aggregate: {}", profile.summary_line(pool.jobs())));
    r.note("Host wall-clocks vary run to run; only the simulated cycle counts are deterministic.");
    (r, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_matrix_profiles_every_cell() {
        let (r, profile) = run_pooled(&Scale::quick(), &Pool::new(2));
        assert_eq!(r.rows.len(), benchmarks().len() * policies().len());
        for row in &r.rows {
            let mcycles = row.cells[0].as_num().unwrap_or(0.0);
            assert!(mcycles > 0.0, "{}: {:?}", row.label, row.cells);
        }
        assert_eq!(profile.timings.len(), r.rows.len());
        assert!(profile.sim_cycles > 0);
        assert!(profile.cycles_per_sec() > 0.0);
        assert!(
            profile.stats.counters().count() > 0,
            "absorbed run stats must be non-empty"
        );
    }
}
