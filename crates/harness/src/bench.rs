//! Host-performance campaign: how fast does the simulator itself run?
//!
//! Runs a (benchmark × policy) matrix with the telemetry hub's
//! self-profiling on and reports, per job, the simulated cycle count, the
//! job's host wall-clock, and the resulting simulation rate — plus the
//! campaign aggregate via [`CampaignProfile`]. This is the `awg-repro
//! bench` subcommand: the number to watch when changing the event loop or
//! the sweep pool's scheduling.
//!
//! Wall-clocks vary run to run, so this report is *not* byte-deterministic
//! across invocations — only its row/column structure and the simulated
//! cycle counts are.

use std::path::{Path, PathBuf};

use awg_core::policies::PolicyKind;
use awg_sim::json::Value;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, CampaignProfile};
use crate::run::{ExperimentConfig, Instrumentation};
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The benchmark arm (one spin lock, one ticket lock, one barrier — the
/// chaos matrix's suite, so `bench` and `chaos` numbers are comparable).
pub fn benchmarks() -> [BenchmarkKind; 3] {
    crate::chaos::benchmarks()
}

/// The policy arm (the chaos matrix's IFP designs).
pub fn policies() -> [PolicyKind; 5] {
    crate::chaos::policies()
}

/// Runs the host-performance matrix under `sup`. Returns the per-job
/// report and the campaign aggregate (total wall-clock, absorbed run
/// stats, and simulated cycles per host-second).
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> (Report, CampaignProfile) {
    let mut r = Report::new(
        "Bench: simulator host performance (self-profile per job)",
        vec!["sim Mcycles", "host ms", "Mcycles/s"],
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in policies() {
            let key = format!("bench/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_checkpointed(
                    kind,
                    policy,
                    scale,
                    ExperimentConfig::NonOversubscribed,
                    None,
                    Instrumentation::profiled(),
                )
            }));
        }
    }
    let mut profile = CampaignProfile::default();
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        for policy in policies() {
            let out = outputs.next().expect("one job per matrix cell");
            profile.absorb_job(&out);
            let label = format!("{}/{}", kind.abbreviation(), policy.label());
            let cells = match &out.result {
                Ok(res) => match &res.profile {
                    Some(p) => {
                        let secs = p.total_wall.as_secs_f64();
                        vec![
                            Cell::Num(p.sim_cycles as f64 / 1e6),
                            Cell::Num(secs * 1e3),
                            Cell::Num(if secs > 0.0 {
                                p.sim_cycles as f64 / secs / 1e6
                            } else {
                                0.0
                            }),
                        ]
                    }
                    None => vec![Cell::Missing; 3],
                },
                Err(e) => vec![pool::error_cell(e); 3],
            };
            r.push(Row::new(label, cells));
        }
    }
    r.note(format!(
        "Aggregate: {}",
        profile.summary_line(sup.pool().jobs())
    ));
    r.note("Host wall-clocks vary run to run; only the simulated cycle counts are deterministic.");
    (r, profile)
}

/// Host provenance recorded in a bench snapshot, so a trajectory of
/// `BENCH_*.json` files can be read without guessing what machine and
/// build produced each point. Absent from snapshots written before the
/// field existed (they still parse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMeta {
    /// Logical cores available to the host process.
    pub host_cores: usize,
    /// Short git revision of the working tree (`"unknown"` outside a
    /// checkout).
    pub git_rev: String,
    /// `"release"` or `"debug"` — comparing across profiles is
    /// meaningless, and the trajectory table makes that visible.
    pub cargo_profile: String,
    /// Number of jobs in the campaign matrix.
    pub jobs: usize,
}

impl BenchMeta {
    /// Captures the current host/build environment for a `jobs`-cell
    /// campaign.
    pub fn capture(jobs: usize) -> Self {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        BenchMeta {
            host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            git_rev,
            cargo_profile: if cfg!(debug_assertions) {
                "debug".to_owned()
            } else {
                "release".to_owned()
            },
            jobs,
        }
    }

    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("host_cores".to_owned(), Value::Num(self.host_cores as f64)),
            ("git_rev".to_owned(), Value::Str(self.git_rev.clone())),
            (
                "cargo_profile".to_owned(),
                Value::Str(self.cargo_profile.clone()),
            ),
            ("jobs".to_owned(), Value::Num(self.jobs as f64)),
        ])
    }

    fn from_json(v: &Value) -> Option<Self> {
        Some(BenchMeta {
            host_cores: v.get("host_cores")?.as_f64()? as usize,
            git_rev: v.get("git_rev")?.as_str()?.to_owned(),
            cargo_profile: v.get("cargo_profile")?.as_str()?.to_owned(),
            jobs: v.get("jobs")?.as_f64()? as usize,
        })
    }
}

/// Serializes a bench campaign's aggregate as a machine-readable snapshot:
/// the job list with per-job wall-clocks, the campaign totals, the
/// aggregate simulation rate, and the host provenance [`BenchMeta`].
pub fn profile_to_json(profile: &CampaignProfile, workers: usize) -> Value {
    let jobs: Vec<Value> = profile
        .timings
        .iter()
        .map(|(key, wall)| {
            Value::Object(vec![
                ("key".to_owned(), Value::Str(key.clone())),
                ("wall_ns".to_owned(), Value::Num(wall.as_nanos() as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("bench".to_owned(), Value::Str("awg-sim".to_owned())),
        ("workers".to_owned(), Value::Num(workers as f64)),
        (
            "meta".to_owned(),
            BenchMeta::capture(profile.timings.len()).to_json(),
        ),
        ("jobs".to_owned(), Value::Array(jobs)),
        (
            "total_wall_ns".to_owned(),
            Value::Num(profile.total_wall().as_nanos() as f64),
        ),
        (
            "sim_cycles".to_owned(),
            Value::Num(profile.sim_cycles as f64),
        ),
        ("events".to_owned(), Value::Num(profile.events as f64)),
        (
            "mcycles_per_sec".to_owned(),
            Value::Num(profile.cycles_per_sec() / 1e6),
        ),
        (
            "events_per_sec".to_owned(),
            Value::Num(profile.events_per_sec()),
        ),
    ])
}

/// Writes the bench snapshot to `dir/BENCH_<timestamp>.json` (the timestamp
/// is seconds since the Unix epoch) and returns the path.
///
/// # Errors
///
/// Propagates directory-creation and write errors.
pub fn write_bench_json(
    profile: &CampaignProfile,
    workers: usize,
    dir: &Path,
) -> std::io::Result<PathBuf> {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{stamp}.json"));
    let mut text = profile_to_json(profile, workers).to_json();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

/// A parsed `BENCH_*.json` snapshot — the subset of the document the
/// trajectory tools need. Snapshots written before [`BenchMeta`] existed
/// parse with `meta: None`.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Worker-thread count of the campaign pool.
    pub workers: usize,
    /// Per-job `(key, wall_ns)` timings.
    pub jobs: Vec<(String, f64)>,
    /// Campaign wall-clock, nanoseconds.
    pub total_wall_ns: f64,
    /// Total simulated cycles across jobs.
    pub sim_cycles: f64,
    /// Total scheduled events across jobs.
    pub events: f64,
    /// The headline aggregate: simulated megacycles per host second.
    pub mcycles_per_sec: f64,
    /// Host provenance, when the snapshot recorded it.
    pub meta: Option<BenchMeta>,
}

impl BenchSnapshot {
    /// Parses a snapshot document produced by [`profile_to_json`].
    pub fn from_json(v: &Value) -> Result<Self, String> {
        if v.get("bench").and_then(Value::as_str) != Some("awg-sim") {
            return Err("not an awg-sim bench snapshot (missing bench:\"awg-sim\")".into());
        }
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("snapshot field {key:?} missing or non-numeric"))
        };
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or("snapshot field \"jobs\" missing")?
            .iter()
            .map(|j| {
                let key = j
                    .get("key")
                    .and_then(Value::as_str)
                    .unwrap_or("?")
                    .to_owned();
                let wall = j.get("wall_ns").and_then(Value::as_f64).unwrap_or(0.0);
                (key, wall)
            })
            .collect();
        Ok(BenchSnapshot {
            workers: num("workers")? as usize,
            jobs,
            total_wall_ns: num("total_wall_ns")?,
            sim_cycles: num("sim_cycles")?,
            events: num("events")?,
            mcycles_per_sec: num("mcycles_per_sec")?,
            meta: v.get("meta").and_then(BenchMeta::from_json),
        })
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Reports unreadable files, invalid JSON, and schema mismatches, each
    /// prefixed with the path.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let v = awg_sim::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&v).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The verdict of `bench --compare`: the current aggregate rate against a
/// baseline snapshot under a regression budget.
#[derive(Debug, Clone)]
pub struct CompareVerdict {
    /// Aggregate Mcycles/s of the run being judged.
    pub current_mcps: f64,
    /// Aggregate Mcycles/s of the baseline snapshot.
    pub baseline_mcps: f64,
    /// Relative delta in percent (positive = faster than baseline).
    pub delta_pct: f64,
    /// The regression budget the comparison ran under, in percent.
    pub max_regress_pct: f64,
    /// Whether the current rate fell below
    /// `baseline * (1 - max_regress_pct/100)`.
    pub regressed: bool,
}

impl CompareVerdict {
    /// One-line human rendering (the CLI prints this verbatim).
    pub fn summary_line(&self) -> String {
        let verdict = if self.regressed { "REGRESSION" } else { "ok" };
        if self.max_regress_pct < 0.0 {
            // A negative budget is an inverted gate: the run must *beat*
            // the baseline by at least |budget| percent.
            format!(
                "compare: {:.2} Mcycles/s vs baseline {:.2} Mcycles/s ({:+.1}%, required \
                 speedup {:.2}x): {verdict}",
                self.current_mcps,
                self.baseline_mcps,
                self.delta_pct,
                1.0 - self.max_regress_pct / 100.0,
            )
        } else {
            format!(
                "compare: {:.2} Mcycles/s vs baseline {:.2} Mcycles/s ({:+.1}%, budget \
                 -{:.1}%): {verdict}",
                self.current_mcps, self.baseline_mcps, self.delta_pct, self.max_regress_pct,
            )
        }
    }
}

/// Judges `current_mcps` against `baseline` with a `max_regress_pct`
/// budget. A run is a regression iff it is more than `max_regress_pct`
/// percent slower than the baseline aggregate; being faster never trips.
///
/// A *negative* budget inverts the gate into a required speedup: with
/// `max_regress_pct = -200` the run must reach at least
/// `baseline * 3.0` (that is, `1 - (-200)/100`) to pass. CI uses this to
/// pin a deliberate optimisation so it cannot silently erode back to the
/// old engine's rate.
pub fn compare(
    current_mcps: f64,
    baseline: &BenchSnapshot,
    max_regress_pct: f64,
) -> CompareVerdict {
    let baseline_mcps = baseline.mcycles_per_sec;
    let delta_pct = if baseline_mcps > 0.0 {
        (current_mcps - baseline_mcps) / baseline_mcps * 100.0
    } else {
        0.0
    };
    CompareVerdict {
        current_mcps,
        baseline_mcps,
        delta_pct,
        max_regress_pct,
        regressed: current_mcps < baseline_mcps * (1.0 - max_regress_pct / 100.0),
    }
}

/// Lists `BENCH_*.json` files under `dir`, sorted by filename — the epoch
/// timestamp in the name makes that chronological order.
pub fn snapshot_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// Renders the host-performance trajectory under `dir` as a markdown
/// table, one row per `BENCH_*.json` snapshot in chronological order.
/// Unparseable snapshots become a row noting the error rather than
/// aborting the whole table.
///
/// # Errors
///
/// Reports an unreadable directory or an empty trajectory.
pub fn history_table(dir: &Path) -> Result<String, String> {
    let paths = snapshot_paths(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if paths.is_empty() {
        return Err(format!("{}: no BENCH_*.json snapshots", dir.display()));
    }
    let mut out = String::from(
        "| snapshot | Mcycles/s | sim Mcycles | wall ms | workers | jobs | rev | profile |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for path in &paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match BenchSnapshot::read(path) {
            Ok(s) => {
                let (rev, profile) = match &s.meta {
                    Some(m) => (m.git_rev.clone(), m.cargo_profile.clone()),
                    None => ("-".to_owned(), "-".to_owned()),
                };
                out.push_str(&format!(
                    "| {name} | {:.2} | {:.2} | {:.1} | {} | {} | {rev} | {profile} |\n",
                    s.mcycles_per_sec,
                    s.sim_cycles / 1e6,
                    s.total_wall_ns / 1e6,
                    s.workers,
                    s.jobs.len(),
                ));
            }
            Err(e) => out.push_str(&format!("| {name} | unparseable: {e} | | | | | | |\n")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn bench_matrix_profiles_every_cell() {
        let (r, profile) = run_supervised(&Scale::quick(), &Supervisor::bare(Pool::new(2)));
        assert_eq!(r.rows.len(), benchmarks().len() * policies().len());
        for row in &r.rows {
            let mcycles = row.cells[0].as_num().unwrap_or(0.0);
            assert!(mcycles > 0.0, "{}: {:?}", row.label, row.cells);
        }
        assert_eq!(profile.timings.len(), r.rows.len());
        assert!(profile.sim_cycles > 0);
        assert!(profile.cycles_per_sec() > 0.0);
        assert!(
            profile.stats.counters().count() > 0,
            "absorbed run stats must be non-empty"
        );
    }

    #[test]
    fn bench_snapshot_serializes_and_writes() {
        let mut profile = CampaignProfile::default();
        profile.timings.push((
            "bench/SPM_G/AWG".into(),
            std::time::Duration::from_millis(3),
        ));
        profile.sim_cycles = 1_000_000;
        profile.profiled_wall = std::time::Duration::from_millis(2);
        profile.events = 500;
        let v = profile_to_json(&profile, 4);
        let text = v.to_json();
        assert!(text.contains("\"bench\":\"awg-sim\""), "{text}");
        assert!(text.contains("\"workers\":4"), "{text}");
        assert!(text.contains("bench/SPM_G/AWG"), "{text}");
        let parsed = awg_sim::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("sim_cycles").and_then(Value::as_f64),
            Some(1_000_000.0)
        );

        let dir = std::env::temp_dir().join(format!("awg-bench-{}", std::process::id()));
        let path = write_bench_json(&profile, 4, &dir).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("BENCH_") && name.ends_with(".json"),
            "{name}"
        );
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.ends_with('\n'));
        awg_sim::json::parse(&on_disk).expect("written snapshot parses");

        let snap = BenchSnapshot::read(&path).expect("snapshot round-trips");
        assert_eq!(snap.workers, 4);
        assert_eq!(snap.jobs.len(), 1);
        assert_eq!(snap.sim_cycles, 1_000_000.0);
        let meta = snap.meta.expect("fresh snapshots carry host meta");
        assert!(meta.host_cores >= 1);
        assert_eq!(meta.jobs, 1);
        assert!(meta.cargo_profile == "debug" || meta.cargo_profile == "release");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_meta_snapshots_still_parse() {
        // The schema before this PR: no "meta" object.
        let text = r#"{"bench":"awg-sim","workers":2,"jobs":[{"key":"bench/SPM_G/AWG","wall_ns":3000000}],"total_wall_ns":3000000,"sim_cycles":1000000,"events":500,"mcycles_per_sec":333.3,"events_per_sec":166666.0}"#;
        let v = awg_sim::json::parse(text).unwrap();
        let snap = BenchSnapshot::from_json(&v).expect("old snapshots stay parseable");
        assert!(snap.meta.is_none());
        assert_eq!(snap.workers, 2);
        assert!((snap.mcycles_per_sec - 333.3).abs() < 1e-9);
    }

    #[test]
    fn compare_trips_only_past_the_budget() {
        let baseline = BenchSnapshot {
            workers: 2,
            jobs: Vec::new(),
            total_wall_ns: 1e9,
            sim_cycles: 1e9,
            events: 1e6,
            mcycles_per_sec: 100.0,
            meta: None,
        };
        // 5% slower under a 10% budget: fine.
        let v = compare(95.0, &baseline, 10.0);
        assert!(!v.regressed, "{}", v.summary_line());
        assert!((v.delta_pct + 5.0).abs() < 1e-9);
        // 20% slower under a 10% budget: regression.
        let v = compare(80.0, &baseline, 10.0);
        assert!(v.regressed, "{}", v.summary_line());
        assert!(v.summary_line().contains("REGRESSION"));
        // Faster never trips, even with a zero budget.
        assert!(!compare(150.0, &baseline, 0.0).regressed);
    }

    #[test]
    fn negative_budget_is_a_required_speedup_gate() {
        let baseline = BenchSnapshot {
            workers: 1,
            jobs: Vec::new(),
            total_wall_ns: 1e9,
            sim_cycles: 1e9,
            events: 1e6,
            mcycles_per_sec: 100.0,
            meta: None,
        };
        // -200% budget demands current >= 3x baseline.
        let v = compare(299.0, &baseline, -200.0);
        assert!(
            v.regressed,
            "2.99x must fail the 3x gate: {}",
            v.summary_line()
        );
        assert!(v.summary_line().contains("required speedup 3.00x"));
        let v = compare(301.0, &baseline, -200.0);
        assert!(
            !v.regressed,
            "3.01x must pass the 3x gate: {}",
            v.summary_line()
        );
        // Merely matching the baseline is a regression under any
        // negative budget.
        assert!(compare(100.0, &baseline, -0.5).regressed);
    }

    #[test]
    fn history_table_orders_snapshots_and_tolerates_junk() {
        let dir = std::env::temp_dir().join(format!("awg-hist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (stamp, rate) in [(100u64, 10.0), (200, 20.0)] {
            let text = format!(
                r#"{{"bench":"awg-sim","workers":1,"jobs":[],"total_wall_ns":1.0,"sim_cycles":1.0,"events":1.0,"mcycles_per_sec":{rate},"events_per_sec":1.0}}"#
            );
            std::fs::write(dir.join(format!("BENCH_{stamp}.json")), text).unwrap();
        }
        std::fs::write(dir.join("BENCH_150.json"), "not json at all").unwrap();
        std::fs::write(dir.join("unrelated.txt"), "ignored").unwrap();
        let table = history_table(&dir).unwrap();
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 2 + 3, "header + separator + three snapshots");
        assert!(rows[2].contains("BENCH_100.json") && rows[2].contains("10.00"));
        assert!(rows[3].contains("BENCH_150.json") && rows[3].contains("unparseable"));
        assert!(rows[4].contains("BENCH_200.json") && rows[4].contains("20.00"));
        std::fs::remove_dir_all(&dir).ok();

        assert!(history_table(Path::new("/nonexistent-awg")).is_err());
    }
}
