//! Host-performance campaign: how fast does the simulator itself run?
//!
//! Runs a (benchmark × policy) matrix with the telemetry hub's
//! self-profiling on and reports, per job, the simulated cycle count, the
//! job's host wall-clock, and the resulting simulation rate — plus the
//! campaign aggregate via [`CampaignProfile`]. This is the `awg-repro
//! bench` subcommand: the number to watch when changing the event loop or
//! the sweep pool's scheduling.
//!
//! Wall-clocks vary run to run, so this report is *not* byte-deterministic
//! across invocations — only its row/column structure and the simulated
//! cycle counts are.

use std::path::{Path, PathBuf};

use awg_core::policies::PolicyKind;
use awg_sim::json::Value;
use awg_workloads::BenchmarkKind;

use crate::pool::{self, CampaignProfile};
use crate::run::{ExperimentConfig, Instrumentation};
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// The benchmark arm (one spin lock, one ticket lock, one barrier — the
/// chaos matrix's suite, so `bench` and `chaos` numbers are comparable).
pub fn benchmarks() -> [BenchmarkKind; 3] {
    crate::chaos::benchmarks()
}

/// The policy arm (the chaos matrix's IFP designs).
pub fn policies() -> [PolicyKind; 5] {
    crate::chaos::policies()
}

/// Runs the host-performance matrix under `sup`. Returns the per-job
/// report and the campaign aggregate (total wall-clock, absorbed run
/// stats, and simulated cycles per host-second).
pub fn run_supervised(scale: &Scale, sup: &Supervisor) -> (Report, CampaignProfile) {
    let mut r = Report::new(
        "Bench: simulator host performance (self-profile per job)",
        vec!["sim Mcycles", "host ms", "Mcycles/s"],
    );
    let mut jobs = Vec::new();
    for kind in benchmarks() {
        for policy in policies() {
            let key = format!("bench/{}/{}", kind.abbreviation(), policy.label());
            let digest = job_digest(&key, scale, &[]);
            jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                ctl.run_checkpointed(
                    kind,
                    policy,
                    scale,
                    ExperimentConfig::NonOversubscribed,
                    None,
                    Instrumentation::profiled(),
                )
            }));
        }
    }
    let mut profile = CampaignProfile::default();
    let mut outputs = sup.run(jobs).into_iter();
    for kind in benchmarks() {
        for policy in policies() {
            let out = outputs.next().expect("one job per matrix cell");
            profile.absorb_job(&out);
            let label = format!("{}/{}", kind.abbreviation(), policy.label());
            let cells = match &out.result {
                Ok(res) => match &res.profile {
                    Some(p) => {
                        let secs = p.total_wall.as_secs_f64();
                        vec![
                            Cell::Num(p.sim_cycles as f64 / 1e6),
                            Cell::Num(secs * 1e3),
                            Cell::Num(if secs > 0.0 {
                                p.sim_cycles as f64 / secs / 1e6
                            } else {
                                0.0
                            }),
                        ]
                    }
                    None => vec![Cell::Missing; 3],
                },
                Err(e) => vec![pool::error_cell(e); 3],
            };
            r.push(Row::new(label, cells));
        }
    }
    r.note(format!(
        "Aggregate: {}",
        profile.summary_line(sup.pool().jobs())
    ));
    r.note("Host wall-clocks vary run to run; only the simulated cycle counts are deterministic.");
    (r, profile)
}

/// Serializes a bench campaign's aggregate as a machine-readable snapshot:
/// the job list with per-job wall-clocks, the campaign totals, and the
/// aggregate simulation rate.
pub fn profile_to_json(profile: &CampaignProfile, workers: usize) -> Value {
    let jobs: Vec<Value> = profile
        .timings
        .iter()
        .map(|(key, wall)| {
            Value::Object(vec![
                ("key".to_owned(), Value::Str(key.clone())),
                ("wall_ns".to_owned(), Value::Num(wall.as_nanos() as f64)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("bench".to_owned(), Value::Str("awg-sim".to_owned())),
        ("workers".to_owned(), Value::Num(workers as f64)),
        ("jobs".to_owned(), Value::Array(jobs)),
        (
            "total_wall_ns".to_owned(),
            Value::Num(profile.total_wall().as_nanos() as f64),
        ),
        (
            "sim_cycles".to_owned(),
            Value::Num(profile.sim_cycles as f64),
        ),
        ("events".to_owned(), Value::Num(profile.events as f64)),
        (
            "mcycles_per_sec".to_owned(),
            Value::Num(profile.cycles_per_sec() / 1e6),
        ),
        (
            "events_per_sec".to_owned(),
            Value::Num(profile.events_per_sec()),
        ),
    ])
}

/// Writes the bench snapshot to `dir/BENCH_<timestamp>.json` (the timestamp
/// is seconds since the Unix epoch) and returns the path.
///
/// # Errors
///
/// Propagates directory-creation and write errors.
pub fn write_bench_json(
    profile: &CampaignProfile,
    workers: usize,
    dir: &Path,
) -> std::io::Result<PathBuf> {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{stamp}.json"));
    let mut text = profile_to_json(profile, workers).to_json();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;

    #[test]
    fn bench_matrix_profiles_every_cell() {
        let (r, profile) = run_supervised(&Scale::quick(), &Supervisor::bare(Pool::new(2)));
        assert_eq!(r.rows.len(), benchmarks().len() * policies().len());
        for row in &r.rows {
            let mcycles = row.cells[0].as_num().unwrap_or(0.0);
            assert!(mcycles > 0.0, "{}: {:?}", row.label, row.cells);
        }
        assert_eq!(profile.timings.len(), r.rows.len());
        assert!(profile.sim_cycles > 0);
        assert!(profile.cycles_per_sec() > 0.0);
        assert!(
            profile.stats.counters().count() > 0,
            "absorbed run stats must be non-empty"
        );
    }

    #[test]
    fn bench_snapshot_serializes_and_writes() {
        let mut profile = CampaignProfile::default();
        profile.timings.push((
            "bench/SPM_G/AWG".into(),
            std::time::Duration::from_millis(3),
        ));
        profile.sim_cycles = 1_000_000;
        profile.profiled_wall = std::time::Duration::from_millis(2);
        profile.events = 500;
        let v = profile_to_json(&profile, 4);
        let text = v.to_json();
        assert!(text.contains("\"bench\":\"awg-sim\""), "{text}");
        assert!(text.contains("\"workers\":4"), "{text}");
        assert!(text.contains("bench/SPM_G/AWG"), "{text}");
        let parsed = awg_sim::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("sim_cycles").and_then(Value::as_f64),
            Some(1_000_000.0)
        );

        let dir = std::env::temp_dir().join(format!("awg-bench-{}", std::process::id()));
        let path = write_bench_json(&profile, 4, &dir).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.starts_with("BENCH_") && name.ends_with(".json"),
            "{name}"
        );
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.ends_with('\n'));
        awg_sim::json::parse(&on_disk).expect("written snapshot parses");
        std::fs::remove_dir_all(&dir).ok();
    }
}
