//! The `profile` workflow: one benchmark × policy run under the full
//! performance observatory ([`Instrumentation::hotspot`]) — the event-loop
//! hot profile on the host side and the per-WG cycle-attribution ledger on
//! the simulated side — rendered as one human-readable report and one
//! machine-readable JSON document.
//!
//! This is the measurement the ROADMAP's event-core rewrite is gated on:
//! the ranked hotspot table says where the host's time goes, and the
//! attribution ledger says where the *simulated* cycles go, so a rewrite
//! (or a policy change) can be judged on both sides from a single run.

use awg_core::policies::{build_policy, PolicyKind};
use awg_sim::json::Value;
use awg_sim::{AttributionCause, Cycle};
use awg_workloads::BenchmarkKind;

use crate::run::{run_instrumented, ExpResult, ExperimentConfig, Instrumentation};
use crate::scale::Scale;

/// Everything a profile run produces.
#[derive(Debug)]
pub struct ProfileRun {
    /// The underlying experiment result (hot report and ledger attached).
    pub result: ExpResult,
    /// Human-readable report: the ranked hotspot table followed by the
    /// cycle-attribution ledger.
    pub text: String,
    /// Machine-readable document (hand-rolled codec, deterministic key
    /// order).
    pub json: Value,
}

/// Runs `kind` under `policy` with the observatory on and assembles both
/// renderings.
pub fn run_profile(kind: BenchmarkKind, policy: PolicyKind, scale: &Scale) -> ProfileRun {
    let result = run_instrumented(
        kind,
        policy,
        build_policy(policy),
        scale,
        ExperimentConfig::NonOversubscribed,
        None,
        Instrumentation::hotspot(),
    );
    let text = render_text(kind, policy, &result);
    let json = to_json(kind, policy, &result);
    ProfileRun { result, text, json }
}

/// The ledger's elapsed cycles: every WG row sums to this (the hub closes
/// at the retirement of the last instruction). Zero when telemetry was
/// off.
fn ledger_elapsed(result: &ExpResult) -> Cycle {
    result.attribution.first().map_or(0, |row| row.iter().sum())
}

fn render_text(kind: BenchmarkKind, policy: PolicyKind, result: &ExpResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {} under {} — {}",
        kind.abbreviation(),
        policy.label(),
        result.outcome
    );
    match &result.hot {
        Some(hot) => {
            let _ = write!(out, "{hot}");
        }
        None => {
            let _ = writeln!(out, "  (hot profile unavailable)");
        }
    }
    let elapsed = ledger_elapsed(result);
    let wgs = result.attribution.len();
    let grand = elapsed.saturating_mul(wgs as Cycle);
    let totals = result.attribution_totals();
    let _ = writeln!(
        out,
        "cycle attribution: {wgs} WGs x {elapsed} cycles (ledger sums to elapsed per WG)"
    );
    let _ = writeln!(out, "  {:<12} {:>16} {:>7}", "cause", "cycles", "share");
    for cause in AttributionCause::ALL {
        let cycles = totals[cause.index()];
        let share = if grand > 0 {
            cycles as f64 / grand as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(out, "  {:<12} {cycles:>16} {share:>6.1}%", cause.name());
    }
    out
}

fn to_json(kind: BenchmarkKind, policy: PolicyKind, result: &ExpResult) -> Value {
    let totals = result.attribution_totals();
    let attribution = Value::Object(vec![
        (
            "elapsed_cycles".to_owned(),
            Value::Num(ledger_elapsed(result) as f64),
        ),
        (
            "wgs".to_owned(),
            Value::Num(result.attribution.len() as f64),
        ),
        (
            "totals".to_owned(),
            Value::Object(
                AttributionCause::ALL
                    .iter()
                    .map(|c| (c.name().to_owned(), Value::Num(totals[c.index()] as f64)))
                    .collect(),
            ),
        ),
    ]);
    Value::Object(vec![
        ("profile".to_owned(), Value::Str("awg-profile".to_owned())),
        (
            "bench".to_owned(),
            Value::Str(kind.abbreviation().to_owned()),
        ),
        ("policy".to_owned(), Value::Str(policy.label())),
        (
            "hotspot".to_owned(),
            result
                .hot
                .as_ref()
                .map(|h| h.to_json())
                .unwrap_or(Value::Null),
        ),
        ("attribution".to_owned(), attribution),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_sim::json;

    #[test]
    fn profile_run_renders_and_serializes() {
        let p = run_profile(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &Scale::quick(),
        );
        assert!(p.result.is_valid_completion(), "{:?}", p.result.outcome);
        assert!(p.text.contains("hot-profile:"), "{}", p.text);
        assert!(p.text.contains("cycle attribution:"), "{}", p.text);
        // Lane shares are normalized, so the rendered table covers 100%.
        let hot = p.result.hot.as_ref().expect("hot profile on");
        let share: f64 = hot.lanes.iter().map(|l| l.fraction).sum();
        assert!((share - 1.0).abs() < 1e-9);

        let text = p.json.to_json();
        let parsed = json::parse(&text).expect("profile document parses");
        assert_eq!(
            parsed.get("profile").and_then(Value::as_str),
            Some("awg-profile")
        );
        let elapsed = parsed
            .get("attribution")
            .and_then(|a| a.get("elapsed_cycles"))
            .and_then(Value::as_f64)
            .expect("elapsed present");
        assert!(elapsed > 0.0);
        let totals = parsed
            .get("attribution")
            .and_then(|a| a.get("totals"))
            .expect("totals present");
        let wgs = parsed
            .get("attribution")
            .and_then(|a| a.get("wgs"))
            .and_then(Value::as_f64)
            .unwrap();
        let sum: f64 = AttributionCause::ALL
            .iter()
            .filter_map(|c| totals.get(c.name()).and_then(Value::as_f64))
            .sum();
        assert_eq!(sum, elapsed * wgs, "ledger grand total is exact");
        // Serialization is deterministic.
        assert_eq!(text, p.json.to_json());
    }
}
