//! The durable JSONL job journal.
//!
//! One line per record, appended and flushed as each job finishes, so a
//! crash loses at most the line being written. The first line is a header
//! naming the command that produced the journal; every later line is one
//! job's outcome, keyed by the content digest of (benchmark, policy, seed,
//! config, fault plan) — see [`crate::supervisor::job_digest`]. On
//! `--resume`, completed jobs are decoded from their journaled value and
//! re-merged in enumeration order, so the resumed CSV is byte-identical to
//! an uninterrupted run.
//!
//! A torn tail — a partial last line from a crash mid-write — is discarded
//! with a warning and truncated from the file before appending resumes, so
//! a re-run record never concatenates onto the torn bytes; corruption
//! *before* the last line is a hard error, since it means the file is not
//! an append-crashed journal but something else.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

use awg_sim::json::{self, Value};

/// Journal schema version; bump on incompatible record changes.
const JOURNAL_VERSION: u64 = 1;

/// How a journaled job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The job produced a value (stored in the record).
    Ok,
    /// The job exhausted its retries on watchdog timeouts.
    Timeout,
    /// The job exhausted its retries on panics.
    Panic,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Timeout => "timeout",
            JobStatus::Panic => "panic",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "ok" => JobStatus::Ok,
            "timeout" => JobStatus::Timeout,
            "panic" => JobStatus::Panic,
            other => return Err(format!("unknown job status {other:?}")),
        })
    }
}

/// One journaled job outcome.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// The job's stable key (human-readable; the digest is authoritative).
    pub key: String,
    /// Content digest of the job's full identity.
    pub digest: u64,
    /// How many attempts the job took (retries included).
    pub attempts: u32,
    /// Host wall-clock the job took, nanoseconds summed over attempts.
    pub wall_ns: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// The job's serialized value (`status == Ok` only).
    pub value: Option<Value>,
    /// The terminal error's rendering (`status != Ok` only).
    pub error: Option<String>,
    /// The machine-snapshot path the job ran under, when the campaign had
    /// a checkpoint policy attached (absent otherwise; optional in the
    /// on-disk format, so old journals resume unchanged).
    pub checkpoint: Option<String>,
}

impl JournalRecord {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("v".to_owned(), Value::Num(JOURNAL_VERSION as f64)),
            ("key".to_owned(), Value::Str(self.key.clone())),
            (
                "digest".to_owned(),
                Value::Str(format!("{:#018x}", self.digest)),
            ),
            ("attempts".to_owned(), Value::Num(f64::from(self.attempts))),
            ("wall_ns".to_owned(), Value::Num(self.wall_ns as f64)),
            (
                "status".to_owned(),
                Value::Str(self.status.as_str().to_owned()),
            ),
        ];
        if let Some(value) = &self.value {
            fields.push(("value".to_owned(), value.clone()));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_owned(), Value::Str(error.clone())));
        }
        if let Some(checkpoint) = &self.checkpoint {
            fields.push(("checkpoint".to_owned(), Value::Str(checkpoint.clone())));
        }
        Value::Object(fields)
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let version = value
            .get("v")
            .and_then(Value::as_f64)
            .ok_or_else(|| "record has no version".to_owned())?;
        if version != JOURNAL_VERSION as f64 {
            return Err(format!("unsupported journal record version {version}"));
        }
        let key = value
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| "record has no key".to_owned())?
            .to_owned();
        let digest_text = value
            .get("digest")
            .and_then(Value::as_str)
            .ok_or_else(|| "record has no digest".to_owned())?;
        let digest = digest_text
            .strip_prefix("0x")
            .and_then(|d| u64::from_str_radix(d, 16).ok())
            .ok_or_else(|| format!("bad digest {digest_text:?}"))?;
        let attempts = value
            .get("attempts")
            .and_then(Value::as_f64)
            .ok_or_else(|| "record has no attempt count".to_owned())? as u32;
        let wall_ns = value
            .get("wall_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| "record has no wall_ns".to_owned())? as u64;
        let status = JobStatus::from_str(
            value
                .get("status")
                .and_then(Value::as_str)
                .ok_or_else(|| "record has no status".to_owned())?,
        )?;
        let stored = value.get("value").cloned();
        if status == JobStatus::Ok && stored.is_none() {
            return Err(format!("ok record {key:?} carries no value"));
        }
        Ok(JournalRecord {
            key,
            digest,
            attempts,
            wall_ns,
            status,
            value: stored,
            error: value
                .get("error")
                .and_then(Value::as_str)
                .map(str::to_owned),
            checkpoint: value
                .get("checkpoint")
                .and_then(Value::as_str)
                .map(str::to_owned),
        })
    }
}

/// An open journal: an append-mode writer that flushes after every record.
#[derive(Debug)]
pub struct Journal {
    writer: BufWriter<File>,
    path: PathBuf,
}

/// What [`Journal::open_resume`] recovered from an existing journal file.
#[derive(Debug)]
pub struct ResumeState {
    /// The command line recorded in the header, if the header survived.
    pub command: Option<String>,
    /// Every fully-written record, in file order.
    pub records: Vec<JournalRecord>,
    /// Whether a torn last line was discarded.
    pub torn_tail: bool,
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: &Path, command: &str) -> std::io::Result<Journal> {
        let file = File::create(path)?;
        let mut journal = Journal {
            writer: BufWriter::new(file),
            path: path.to_owned(),
        };
        let header = Value::Object(vec![
            ("v".to_owned(), Value::Num(JOURNAL_VERSION as f64)),
            ("journal".to_owned(), Value::Str("awg-jobs".to_owned())),
            ("command".to_owned(), Value::Str(command.to_owned())),
        ]);
        journal.write_line(&header)?;
        Ok(journal)
    }

    /// Reads an existing journal for resume, then reopens it for appending.
    ///
    /// A torn (partial) last line is discarded with a warning on stderr and
    /// truncated off the file, so records appended by the resumed run start
    /// on a clean line instead of concatenating onto the torn bytes.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a missing/foreign header, or corruption before
    /// the last line.
    pub fn open_resume(path: &Path) -> std::io::Result<(Journal, ResumeState)> {
        let mut text = String::new();
        File::open(path)?.read_to_string(&mut text)?;
        let (state, retain) = parse_journal_text(&text).map_err(std::io::Error::other)?;
        if state.torn_tail {
            eprintln!(
                "warning: journal {} has a torn last line (crash mid-write); discarding it",
                path.display()
            );
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(retain as u64)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Journal {
                writer: BufWriter::new(file),
                path: path.to_owned(),
            },
            state,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, record: &JournalRecord) -> std::io::Result<()> {
        self.write_line(&record.to_json())
    }

    fn write_line(&mut self, value: &Value) -> std::io::Result<()> {
        let mut line = value.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }
}

/// Parses journal text into its header and records, tolerating a torn
/// tail. Also returns the byte length of the intact prefix (header plus
/// every accepted record, newlines included), so the caller can truncate
/// torn bytes off the file before appending to it.
fn parse_journal_text(text: &str) -> Result<(ResumeState, usize), String> {
    // Lines are complete iff terminated by '\n'; split keeps the unfinished
    // tail (if any) as the last fragment. Each complete line carries the
    // byte offset just past its newline.
    let mut complete: Vec<(&str, usize)> = Vec::new();
    let mut tail: Option<&str> = None;
    let mut pos = 0usize;
    let mut rest = text;
    while let Some(nl) = rest.find('\n') {
        complete.push((&rest[..nl], pos + nl + 1));
        pos += nl + 1;
        rest = &rest[nl + 1..];
    }
    if !rest.is_empty() {
        tail = Some(rest);
    }
    // A complete-looking last line that fails to parse is also a torn write
    // (e.g. truncated mid-escape yet ending in '\n' is impossible, but a
    // crash can leave a line whose JSON is cut short with no newline — that
    // is the `tail` case — or partially flushed bytes; be lenient only at
    // the very end).
    let mut torn_tail = tail.is_some_and(|t| !t.trim().is_empty());
    if let Some(t) = tail {
        if let Ok(value) = json::parse(t.trim()) {
            // The final flush wrote a full record but the newline was lost;
            // accept it rather than re-running the job.
            if JournalRecord::from_json(&value).is_ok() {
                complete.push((t, text.len()));
                torn_tail = false;
            }
        }
    }

    let mut lines = complete
        .iter()
        .map(|&(l, end)| (l.trim(), end))
        .filter(|(l, _)| !l.is_empty())
        .peekable();
    let (header_line, header_end) = lines.next().ok_or("journal is empty")?;
    let header =
        json::parse(header_line).map_err(|e| format!("journal header is not JSON: {e}"))?;
    if header.get("journal").and_then(Value::as_str) != Some("awg-jobs") {
        return Err("not an awg job journal (bad header)".into());
    }
    let command = header
        .get("command")
        .and_then(Value::as_str)
        .map(str::to_owned);

    let mut records = Vec::new();
    let mut retain = header_end;
    while let Some((line, end)) = lines.next() {
        let is_last = lines.peek().is_none();
        let parsed = json::parse(line).and_then(|v| JournalRecord::from_json(&v));
        match parsed {
            Ok(record) => {
                records.push(record);
                retain = end;
            }
            Err(e) if is_last => {
                // The final complete line can still be a torn write when the
                // crash landed between the payload and its newline on a
                // previous run's partial flush.
                eprintln!("warning: discarding unreadable final journal record: {e}");
                torn_tail = true;
            }
            Err(e) => return Err(format!("corrupt journal record (not at tail): {e}")),
        }
    }
    Ok((
        ResumeState {
            command,
            records,
            torn_tail,
        },
        retain,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn record(key: &str, digest: u64) -> JournalRecord {
        JournalRecord {
            key: key.to_owned(),
            digest,
            attempts: 1,
            wall_ns: 12_345,
            status: JobStatus::Ok,
            value: Some(Value::Array(vec![Value::Num(1.0)])),
            error: None,
            checkpoint: None,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("awg-journal-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn create_append_resume_round_trip() {
        let path = temp_path("roundtrip");
        {
            let mut j = Journal::create(&path, "fig5 --quick").unwrap();
            j.append(&record("a", 0xAAAA_BBBB_CCCC_DDDD)).unwrap();
            j.append(&JournalRecord {
                status: JobStatus::Timeout,
                value: None,
                error: Some("job 'b' timed out".into()),
                attempts: 2,
                ..record("b", 2)
            })
            .unwrap();
        }
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert_eq!(state.command.as_deref(), Some("fig5 --quick"));
        assert!(!state.torn_tail);
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.records[0].key, "a");
        assert_eq!(state.records[0].digest, 0xAAAA_BBBB_CCCC_DDDD);
        assert_eq!(state.records[0].status, JobStatus::Ok);
        assert!(state.records[0].value.is_some());
        assert_eq!(state.records[1].status, JobStatus::Timeout);
        assert_eq!(state.records[1].attempts, 2);
        assert!(state.records[1].error.as_deref().unwrap().contains("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_appends_rather_than_truncating() {
        let path = temp_path("append");
        {
            let mut j = Journal::create(&path, "fig5").unwrap();
            j.append(&record("a", 1)).unwrap();
        }
        {
            let (mut j, state) = Journal::open_resume(&path).unwrap();
            assert_eq!(state.records.len(), 1);
            j.append(&record("b", 2)).unwrap();
        }
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert_eq!(state.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_discarded_with_survivors_kept() {
        let path = temp_path("torn");
        {
            let mut j = Journal::create(&path, "chaos").unwrap();
            j.append(&record("a", 1)).unwrap();
            j.append(&record("b", 2)).unwrap();
        }
        // Simulate a crash mid-write: chop the file mid-way through the
        // last record.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 17;
        std::fs::write(&path, &text[..keep]).unwrap();
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.records.len(), 1);
        assert_eq!(state.records[0].key, "a");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_record_missing_only_its_newline_is_kept() {
        let path = temp_path("nonewline");
        {
            let mut j = Journal::create(&path, "fig5").unwrap();
            j.append(&record("a", 1)).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        text.pop();
        std::fs::write(&path, &text).unwrap();
        let (_j, state) = Journal::open_resume(&path).unwrap();
        assert!(!state.torn_tail, "full record with no newline is not torn");
        assert_eq!(state.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let path = temp_path("corrupt");
        {
            let mut j = Journal::create(&path, "fig5").unwrap();
            j.append(&record("a", 1)).unwrap();
            j.append(&record("b", 2)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"key\":\"a\"", "\"key\":####", 1);
        std::fs::write(&path, corrupted).unwrap();
        assert!(Journal::open_resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = temp_path("foreign");
        std::fs::write(&path, "{\"not\":\"a journal\"}\n").unwrap();
        assert!(Journal::open_resume(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(Journal::open_resume(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;

    #[test]
    fn append_after_torn_tail_resume_keeps_journal_parseable() {
        let path = std::env::temp_dir().join(format!(
            "awg-journal-reviewprobe-{}.jsonl",
            std::process::id()
        ));
        {
            let mut j = Journal::create(&path, "cmd").unwrap();
            j.append(&tests::record("a", 1)).unwrap();
            j.append(&tests::record("b", 2)).unwrap();
        }
        // Crash mid-write of record "b": torn tail.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep = text.len() - 17;
        std::fs::write(&path, &text[..keep]).unwrap();
        // Resume and append two new records (re-run of "b", then "c").
        {
            let (mut j, state) = Journal::open_resume(&path).unwrap();
            assert!(state.torn_tail);
            j.append(&tests::record("b", 2)).unwrap();
            j.append(&tests::record("c", 3)).unwrap();
        }
        // A second resume must still parse the journal.
        let result = Journal::open_resume(&path);
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        match result {
            Ok((_j, state)) => {
                assert_eq!(state.records.len(), 3, "file was:\n{contents}");
            }
            Err(e) => panic!("second resume failed: {e}\nfile was:\n{contents}"),
        }
    }
}
