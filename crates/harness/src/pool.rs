//! Work-stealing job pool for sweep campaigns.
//!
//! Every figure in the paper is a sweep over (benchmark × policy × seed)
//! triples; each triple is an independent, deterministic simulation. This
//! module runs those triples as jobs on a pool of std threads — no external
//! dependencies — with three guarantees the campaigns rely on:
//!
//! 1. **Deterministic merge.** Jobs carry stable keys (their enumeration
//!    order); the merge sorts results by key, so a campaign's report — and
//!    hence its CSV — is byte-identical to the serial run regardless of
//!    `--jobs` and of which worker ran which job.
//! 2. **Panic isolation.** A panicking job becomes a typed
//!    [`SimError::JobPanic`] result instead of killing the whole campaign;
//!    the remaining jobs still run and merge.
//! 3. **No shared simulator state.** Each job builds its own policy,
//!    kernel, and [`Gpu`](awg_gpu::Gpu), so a run's `Fingerprint64` digest
//!    trail and invariant-oracle verdict are identical whether it executed
//!    on one worker or sixteen.
//!
//! Scheduling is work-stealing: jobs are dealt round-robin into per-worker
//! deques; a worker pops from the front of its own deque and, when empty,
//! steals from the back of its neighbours'. Campaign cells have wildly
//! different costs (a deadlock detection runs ~600k cycles of spinning;
//! a Fig 5 row is pure arithmetic), so stealing keeps all cores busy
//! without any cost model.
//!
//! # Example
//!
//! ```
//! use awg_harness::pool::{self, Pool};
//!
//! let pool = Pool::new(4);
//! let outputs = pool.run(vec![
//!     pool::job("double/21", || 21 * 2),
//!     pool::job("double/0", || 0),
//! ]);
//! // Results come back in job order, not completion order.
//! assert_eq!(*outputs[0].result.as_ref().unwrap(), 42);
//! assert_eq!(outputs[0].key, "double/21");
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use awg_gpu::SimError;
use awg_sim::Stats;

use crate::report::Cell;
use crate::run::ExpResult;

/// A boxed campaign task: one independent simulation (or computation).
pub type Task<'scope, T> = Box<dyn FnOnce() -> T + Send + 'scope>;

/// A worker's deque of `(enumeration index, job)` pairs.
type JobQueue<'scope, T> = Mutex<VecDeque<(usize, Job<'scope, T>)>>;

/// One keyed unit of campaign work.
pub struct Job<'scope, T> {
    key: String,
    task: Task<'scope, T>,
}

/// Creates a [`Job`] with a stable key.
///
/// The key names the job in panic rows and per-job timing reports; result
/// *ordering* is by enumeration position, so two distinct jobs may share a
/// key without ambiguity in the merge.
pub fn job<'scope, T>(
    key: impl Into<String>,
    task: impl FnOnce() -> T + Send + 'scope,
) -> Job<'scope, T> {
    Job {
        key: key.into(),
        task: Box::new(task),
    }
}

/// The outcome of one job: its key, host wall-clock, and either the task's
/// value or the typed panic.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// The job's stable key.
    pub key: String,
    /// Host wall-clock the job took on its worker.
    pub wall: Duration,
    /// The task's value, or [`SimError::JobPanic`] if it panicked.
    pub result: Result<T, SimError>,
}

/// Renders a failed job as a report cell (the typed `JobPanic` row).
pub fn error_cell(e: &SimError) -> Cell {
    Cell::Text(format!("ERROR: {e}"))
}

/// A bounded-concurrency job pool.
///
/// `jobs == 1` is the serial path: tasks run inline on the caller's thread,
/// in order, with the same panic isolation and output type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool running at most `jobs` tasks concurrently (clamped to ≥ 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// The serial pool: tasks run inline, in order.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// A pool sized to the host (`std::thread::available_parallelism`),
    /// falling back to serial when the host won't say.
    pub fn auto() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Maximum concurrency of this pool.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every job and returns the outputs **in job order** (the stable
    /// keys are the enumeration positions; the merge sorts by them).
    ///
    /// A panicking job yields `Err(SimError::JobPanic)` in its slot; the
    /// remaining jobs are unaffected.
    pub fn run<'scope, T: Send>(&self, jobs: Vec<Job<'scope, T>>) -> Vec<JobOutput<T>> {
        let n = jobs.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(execute).collect();
        }

        // Deal jobs round-robin into per-worker deques. Workers pop their
        // own front (cache-warm, in enumeration order) and steal from a
        // neighbour's back when idle.
        let queues: Vec<JobQueue<'scope, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (index, job) in jobs.into_iter().enumerate() {
            queues[index % workers]
                .lock()
                .expect("job queue poisoned")
                .push_back((index, job));
        }

        let (tx, rx) = mpsc::channel::<(usize, JobOutput<T>)>();
        let queues = &queues;
        let mut slots: Vec<Option<JobOutput<T>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let claimed = queues[me]
                        .lock()
                        .expect("job queue poisoned")
                        .pop_front()
                        .or_else(|| {
                            (1..workers).find_map(|d| {
                                queues[(me + d) % workers]
                                    .lock()
                                    .expect("job queue poisoned")
                                    .pop_back()
                            })
                        });
                    let Some((index, job)) = claimed else { break };
                    if tx.send((index, execute(job))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Collect inside the scope so result reception overlaps
            // execution; the channel closes when the last worker exits.
            for (index, output) in rx {
                slots[index] = Some(output);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every claimed job reports exactly once"))
            .collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

fn execute<T>(job: Job<'_, T>) -> JobOutput<T> {
    let Job { key, task } = job;
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        SimError::JobPanic {
            job: key.clone(),
            message,
        }
    });
    JobOutput {
        key,
        wall: start.elapsed(),
        result,
    }
}

/// Aggregate host-side accounting for a campaign: per-job wall-clock plus
/// the telemetry hub's self-profile, absorbed across workers with the
/// existing [`Stats::absorb`] (bucketwise, name-sorted, so the merged
/// registry is independent of worker scheduling).
#[derive(Debug, Clone, Default)]
pub struct CampaignProfile {
    /// `(key, wall)` per job, in job order.
    pub timings: Vec<(String, Duration)>,
    /// Simulated cycles summed over jobs that carried a self-profile.
    pub sim_cycles: u64,
    /// Host wall-clock summed over the jobs' self-profiles.
    pub profiled_wall: Duration,
    /// Events handled, summed over the jobs' self-profiles.
    pub events: u64,
    /// Every job's run-level [`Stats`] registry, absorbed.
    pub stats: Stats,
}

impl CampaignProfile {
    /// Folds one job's timing and (when present) self-profile into the
    /// campaign totals.
    pub fn absorb_job(&mut self, output: &JobOutput<ExpResult>) {
        self.timings.push((output.key.clone(), output.wall));
        let Ok(res) = &output.result else { return };
        if let Some(p) = &res.profile {
            self.sim_cycles += p.sim_cycles;
            self.profiled_wall += p.total_wall;
            self.events += p.events;
        }
        self.stats.absorb(&res.outcome.summary().stats);
    }

    /// Sum of all per-job wall-clocks (CPU time, not elapsed time).
    pub fn total_wall(&self) -> Duration {
        self.timings.iter().map(|&(_, w)| w).sum()
    }

    /// Aggregate simulated cycles per host-second across the campaign's
    /// self-profiled jobs (0.0 when nothing was profiled).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.profiled_wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregate events per host-second (0.0 when nothing was profiled).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.profiled_wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }

    /// One-line summary for the CLI's stderr reporting.
    pub fn summary_line(&self, workers: usize) -> String {
        format!(
            "{} job(s) on {} worker(s): {:.2?} total job wall-clock{}",
            self.timings.len(),
            workers,
            self.total_wall(),
            if self.sim_cycles > 0 {
                format!(
                    ", {} simulated cycles at {:.2} Mcycles/s aggregate ({:.0} events/s)",
                    self.sim_cycles,
                    self.cycles_per_sec() / 1e6,
                    self.events_per_sec()
                )
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_job_order() {
        let pool = Pool::new(4);
        // Uneven costs force out-of-order completion; the merge re-sorts.
        let jobs: Vec<Job<'_, usize>> = (0..32)
            .map(|i| {
                job(format!("j{i}"), move || {
                    if i % 3 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i * i
                })
            })
            .collect();
        let outputs = pool.run(jobs);
        assert_eq!(outputs.len(), 32);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.key, format!("j{i}"));
            assert_eq!(*out.result.as_ref().unwrap(), i * i);
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let tasks = || {
            (0..17)
                .map(|i| job(format!("t{i}"), move || i * 7))
                .collect()
        };
        let serial: Vec<i32> = Pool::serial()
            .run(tasks())
            .into_iter()
            .map(|o| o.result.unwrap())
            .collect();
        let parallel: Vec<i32> = Pool::new(8)
            .run(tasks())
            .into_iter()
            .map(|o| o.result.unwrap())
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let outputs: Vec<JobOutput<u8>> = Pool::new(8).run(Vec::new());
        assert!(outputs.is_empty());
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = Pool::new(2);
        let outputs = pool.run(vec![
            job("fine", || 1u32),
            job("boom", || panic!("deliberate pool test panic")),
            job("also-fine", || 3u32),
        ]);
        assert_eq!(*outputs[0].result.as_ref().unwrap(), 1);
        match &outputs[1].result {
            Err(SimError::JobPanic { job, message }) => {
                assert_eq!(job, "boom");
                assert!(message.contains("deliberate"), "{message}");
            }
            other => panic!("expected JobPanic, got {other:?}"),
        }
        assert_eq!(*outputs[2].result.as_ref().unwrap(), 3);
    }

    #[test]
    fn error_cell_renders_typed_panic() {
        let e = SimError::JobPanic {
            job: "fig14/SPM_G/AWG".into(),
            message: "index out of bounds".into(),
        };
        match error_cell(&e) {
            Cell::Text(t) => {
                assert!(t.starts_with("ERROR: "), "{t}");
                assert!(t.contains("fig14/SPM_G/AWG"), "{t}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn auto_pool_is_at_least_serial() {
        assert!(Pool::auto().jobs() >= 1);
        assert_eq!(Pool::new(0).jobs(), 1, "zero clamps to serial");
    }
}
