//! The conformance campaign: every policy × progress model × litmus cell
//! under the supervised pool, aggregated into the classification matrix.
//!
//! Cells enumerate in strict matrix order (policy → model → litmus) with
//! stable keys, so the merged report — and the regression CSV — is
//! byte-identical at any `--jobs` and across a killed-and-`--resume`d
//! campaign. Each cell's journal digest covers the serialized litmus spec
//! and adversary plan, so a generator or adversary change invalidates
//! journaled verdicts instead of silently resuming stale ones.
//!
//! The litmus set per model is the fixed per-pattern anchors plus a
//! seeded batch ([`ConformanceConfig::count`], `--count`), filtered to
//! the litmuses whose termination *demands* that model; the Fair set
//! additionally carries the three hand-written litmus kernels from
//! `awg_workloads::litmus`. The committed golden matrix lives at
//! `results/conformance_expected.csv`; [`run_supervised`] returns the
//! diff against whatever expected text the caller loaded.

use awg_conformance::generator::{anchor_specs, generate_batch, LitmusSpec};
use awg_conformance::matrix::ConformanceMatrix;
use awg_conformance::model::{adversary_plan, ProgressModel, ALL_MODELS};
use awg_conformance::{run_cell, CellOutcome};
use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::CancelCause;
use awg_sim::json::Value;
use awg_sim::{Cycle, Fingerprint64};
use awg_workloads::litmus::{self, Litmus, LitmusBuilder};

use crate::artifact::{
    as_u64, cause_from_json, cause_to_json, field, get_arr, get_u64, num, obj, Artifact,
};
use crate::pool;
use crate::supervisor::{job_digest, sim_job, JobCtl, Supervisor};
use crate::{Cell, Report, Row, Scale};

/// Default size of the seeded litmus batch (`--count`).
pub const DEFAULT_COUNT: usize = 8;

/// Default master seed of the batch (`--gen-seed`).
pub const DEFAULT_GEN_SEED: u64 = 0xC04F;

/// Campaign knobs, filled from `conformance` subcommand flags.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Seeded litmuses generated on top of the fixed anchors.
    pub count: usize,
    /// Master seed of the generated batch.
    pub gen_seed: u64,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            count: DEFAULT_COUNT,
            gen_seed: DEFAULT_GEN_SEED,
        }
    }
}

/// The policy arm: every fixed [`PolicyKind`], baseline and IFP designs
/// alike — the matrix is exactly about *not* assuming who conforms.
pub fn policies() -> [PolicyKind; 9] {
    [
        PolicyKind::Baseline,
        PolicyKind::Sleep,
        PolicyKind::Timeout,
        PolicyKind::MonRsAll,
        PolicyKind::MonRAll,
        PolicyKind::MonNrAll,
        PolicyKind::MonNrOne,
        PolicyKind::Awg,
        PolicyKind::MinResume,
    ]
}

/// One litmus in a model's test set: a generated spec or one of the
/// hand-written kernels.
#[derive(Clone)]
enum Case {
    Generated(LitmusSpec),
    Hand(&'static str, LitmusBuilder),
}

impl Case {
    fn name(&self) -> String {
        match self {
            Case::Generated(spec) => spec.name(),
            Case::Hand(name, _) => (*name).to_owned(),
        }
    }

    /// The serialized identity that participates in the job digest.
    fn identity(&self) -> String {
        match self {
            Case::Generated(spec) => spec.to_json(),
            Case::Hand(name, _) => format!("hand:{name}"),
        }
    }

    /// A stable per-litmus adversary seed ([`adversary_plan`] already
    /// salts per model).
    fn adversary_seed(&self) -> u64 {
        match self {
            Case::Generated(spec) => spec.seed,
            Case::Hand(name, _) => {
                let mut f = Fingerprint64::new();
                f.push_bytes(name.as_bytes());
                f.finish()
            }
        }
    }

    fn build(&self, policy: PolicyKind) -> (Litmus, u64) {
        let style = build_policy(policy).style();
        match self {
            Case::Generated(spec) => (spec.build(style), spec.num_wgs),
            Case::Hand(_, builder) => (builder(style), litmus::NUM_WGS),
        }
    }
}

/// The litmus test set for `model`: anchors and generated specs whose
/// demand is exactly `model`, plus (for Fair) the hand-written kernels.
fn cases_for(model: ProgressModel, generated: &[LitmusSpec]) -> Vec<Case> {
    let mut cases = Vec::new();
    if model == ProgressModel::Fair {
        for (name, builder) in litmus::all() {
            cases.push(Case::Hand(name, builder));
        }
    }
    for spec in anchor_specs().into_iter().chain(generated.iter().copied()) {
        if spec.demand() == model {
            cases.push(Case::Generated(spec));
        }
    }
    cases
}

/// One journaled cell verdict: the policy/model/litmus coordinates plus
/// everything the matrix and report need from the run.
#[derive(Debug, Clone)]
pub struct CellRun {
    /// The observations [`run_cell`] distilled.
    pub outcome: CellOutcome,
}

impl Artifact for CellRun {
    fn to_json(&self) -> Value {
        let o = &self.outcome;
        let mut fields = vec![
            ("completed", num(o.completed as u64)),
            ("deadlocked", num(o.deadlocked as u64)),
            ("cycles", num(o.cycles)),
            ("switches_out", num(o.switches_out)),
            ("oracle_violations", num(o.oracle_violations)),
            ("post_failures", num(o.post_failures)),
            ("obligation_ok", num(o.obligation_ok as u64)),
            (
                "notes",
                Value::Array(o.notes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ];
        if let Some((at, cause)) = o.cancelled {
            fields.push(("cancelled_at", num(at)));
            fields.push(("cancel_cause", cause_to_json(cause)));
        }
        obj(fields)
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let flag = |key: &str| -> Result<bool, String> { Ok(get_u64(value, key)? != 0) };
        let cancelled = match value.get("cancelled_at") {
            None | Some(Value::Null) => None,
            Some(at) => Some((
                as_u64(at, "cancelled_at")?,
                cause_from_json(field(value, "cancel_cause")?)?,
            )),
        };
        let notes = get_arr(value, "notes")?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "note is not a string".to_owned())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CellRun {
            outcome: CellOutcome {
                completed: flag("completed")?,
                deadlocked: flag("deadlocked")?,
                cancelled,
                cycles: get_u64(value, "cycles")?,
                switches_out: get_u64(value, "switches_out")?,
                oracle_violations: get_u64(value, "oracle_violations")?,
                post_failures: get_u64(value, "post_failures")?,
                obligation_ok: flag("obligation_ok")?,
                notes,
            },
        })
    }

    fn cancelled(&self) -> Option<(Cycle, CancelCause)> {
        self.outcome.cancelled
    }
}

/// The assembled campaign result.
#[derive(Debug)]
pub struct ConformanceOutcome {
    /// The human-facing matrix report (markdown + notes).
    pub report: Report,
    /// The machine-facing matrix ([`ConformanceMatrix::to_csv`] is the
    /// golden regression surface).
    pub matrix: ConformanceMatrix,
    /// Campaign-health failures: job panics, watchdog cancellations, and
    /// invariant-oracle violations. A deadlocking Baseline cell is a
    /// matrix *verdict*, not a failure; a cell that cannot produce a
    /// verdict is.
    pub failures: usize,
    /// Distinct litmus names per model set, for the report footer.
    pub litmus_counts: [usize; 3],
}

/// Runs the full conformance matrix under `sup`. Deterministic at any
/// pool width: jobs enumerate and merge in strict (policy, model, litmus)
/// order.
pub fn run_supervised(
    scale: &Scale,
    cfg: &ConformanceConfig,
    sup: &Supervisor,
) -> ConformanceOutcome {
    let generated = generate_batch(cfg.gen_seed, cfg.count);
    let sets: Vec<(ProgressModel, Vec<Case>)> = ALL_MODELS
        .iter()
        .map(|&m| (m, cases_for(m, &generated)))
        .collect();

    let mut jobs = Vec::new();
    for policy in policies() {
        for (model, cases) in &sets {
            let model = *model;
            for case in cases {
                let key = format!(
                    "conformance/{}/{}/{}",
                    policy.label(),
                    model.label(),
                    case.name()
                );
                let plan = adversary_plan(model, case.adversary_seed());
                let digest = job_digest(&key, scale, &[&case.identity(), &plan.to_json()]);
                let case = case.clone();
                jobs.push(sim_job(key, digest, move |ctl: &JobCtl| {
                    let (litmus, num_wgs) = case.build(policy);
                    CellRun {
                        outcome: run_cell(
                            policy,
                            model,
                            &litmus,
                            num_wgs,
                            plan.clone(),
                            Some(ctl.watchdog()),
                        ),
                    }
                }));
            }
        }
    }

    let mut outputs = sup.run(jobs).into_iter();
    let mut report = Report {
        title: "Conformance matrix: policy × progress model".into(),
        columns: vec![
            "claimed".into(),
            "OBE".into(),
            "LOBE".into(),
            "Fair".into(),
            "classified".into(),
        ],
        rows: Vec::new(),
        notes: Vec::new(),
    };
    let mut matrix = ConformanceMatrix::new(&policies());
    let mut failures = 0usize;

    for policy in policies() {
        for (model, cases) in &sets {
            for case in cases {
                let out = outputs.next().expect("one output per enumerated job");
                let label = format!("{}/{}/{}", policy.label(), model.label(), case.name());
                let run = match &out.result {
                    Ok(run) => run,
                    Err(e) => {
                        failures += 1;
                        report.note(format!("{label}: job failed: {e}"));
                        matrix
                            .row_mut(policy)
                            .verdict_mut(*model)
                            .record(false, false);
                        continue;
                    }
                };
                let o = &run.outcome;
                if o.oracle_violations > 0 {
                    failures += 1;
                    report.note(format!(
                        "{label}: ORACLE: {} invariant violation(s)",
                        o.oracle_violations
                    ));
                }
                if let Some((at, cause)) = o.cancelled {
                    failures += 1;
                    report.note(format!("{label}: cancelled at cycle {at} ({cause})"));
                }
                matrix
                    .row_mut(policy)
                    .verdict_mut(*model)
                    .record(o.sat(), o.deadlocked);
                // Expected failures (Baseline stranded by the CU flap) are
                // matrix content; note only the *diagnosis* for unsat
                // cells so the report explains every non-sat verdict.
                if !o.sat() {
                    let why = if o.deadlocked {
                        "deadlocked".to_owned()
                    } else if !o.completed {
                        "did not complete".to_owned()
                    } else if o.post_failures > 0 {
                        format!("{} post-condition failure(s)", o.post_failures)
                    } else if !o.obligation_ok {
                        "schedule obligation violated".to_owned()
                    } else {
                        "oracle violation".to_owned()
                    };
                    let detail = o
                        .notes
                        .first()
                        .map(|n| format!("; {n}"))
                        .unwrap_or_default();
                    report.note(format!("{label}: {why}{detail}"));
                }
            }
        }
    }

    for row in &matrix.rows {
        let claimed = row.policy.progress_claim();
        let classified = row.classified();
        let mut cells = vec![Cell::Text(claimed.label().into())];
        for v in &row.verdicts {
            cells.push(match v.word() {
                "deadlock" => Cell::Deadlock,
                word => Cell::Text(word.into()),
            });
        }
        cells.push(Cell::Text(row.classified_label().into()));
        report.push(Row::new(row.policy.label(), cells));
        if classified.is_none_or(|c| c < claimed) {
            report.note(format!(
                "{}: claims {} but classified {} (informational)",
                row.policy.label(),
                claimed.label(),
                row.classified().map_or("none", |c| c.label()),
            ));
        }
    }
    let litmus_counts = [sets[0].1.len(), sets[1].1.len(), sets[2].1.len()];
    report.note(format!(
        "test sets: {} OBE, {} LOBE, {} Fair litmus(es); gen seed {:#x}, count {}",
        litmus_counts[0], litmus_counts[1], litmus_counts[2], cfg.gen_seed, cfg.count
    ));
    report.note(if failures == 0 {
        "campaign healthy: no panics, cancellations, or oracle violations.".into()
    } else {
        format!("{failures} campaign failure(s).")
    });

    ConformanceOutcome {
        report,
        matrix,
        failures,
        litmus_counts,
    }
}

/// Serial, unjournaled entry point (tests and quick scripting).
pub fn run_checked(scale: &Scale, cfg: &ConformanceConfig) -> ConformanceOutcome {
    run_supervised(scale, cfg, &Supervisor::bare(pool::Pool::serial()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ConformanceConfig {
        ConformanceConfig {
            count: 0, // anchors + hand-written only
            gen_seed: DEFAULT_GEN_SEED,
        }
    }

    #[test]
    fn cell_run_round_trips_through_the_journal_codec() {
        let run = CellRun {
            outcome: CellOutcome {
                completed: true,
                deadlocked: false,
                cancelled: Some((1234, CancelCause::CycleBudget(5000))),
                cycles: 9876,
                switches_out: 4,
                oracle_violations: 0,
                post_failures: 1,
                obligation_ok: true,
                notes: vec!["post-state 0x40: expected 7, got 0".into()],
            },
        };
        let text = Artifact::to_json(&run).to_json();
        let back = CellRun::from_json(&awg_sim::json::parse(&text).unwrap()).unwrap();
        let (a, b) = (&run.outcome, &back.outcome);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.deadlocked, b.deadlocked);
        assert_eq!(a.cancelled, b.cancelled);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.switches_out, b.switches_out);
        assert_eq!(a.oracle_violations, b.oracle_violations);
        assert_eq!(a.post_failures, b.post_failures);
        assert_eq!(a.obligation_ok, b.obligation_ok);
        assert_eq!(a.notes, b.notes);
        assert_eq!(run.cancelled(), back.cancelled());
    }

    #[test]
    fn every_model_has_a_non_empty_test_set_at_count_zero() {
        for model in ALL_MODELS {
            let cases = cases_for(model, &[]);
            assert!(!cases.is_empty(), "{model:?} set is empty");
            let names: std::collections::HashSet<_> = cases.iter().map(Case::name).collect();
            assert_eq!(names.len(), cases.len(), "{model:?} set has duplicates");
        }
    }

    #[test]
    fn anchors_only_matrix_classifies_baseline_none_and_awg_fair() {
        let scale = Scale::quick();
        let out = run_checked(&scale, &tiny());
        assert_eq!(out.failures, 0, "notes: {:?}", out.report.notes);
        let csv = out.matrix.to_csv();
        let row = |p: &str| -> String {
            csv.lines()
                .find(|l| l.starts_with(&format!("{p},")))
                .unwrap_or_else(|| panic!("no row for {p} in:\n{csv}"))
                .to_owned()
        };
        assert!(
            row("Baseline").ends_with(",none"),
            "Baseline must satisfy no model:\n{csv}\nnotes: {:?}",
            out.report.notes
        );
        assert!(
            row("AWG").ends_with(",Fair"),
            "AWG must classify Fair:\n{csv}\nnotes: {:?}",
            out.report.notes
        );
    }
}
