//! Crash-survivability acceptance, through the real binary and the real
//! supervisor:
//!
//! * a run killed (exit 137) at *every* snapshot boundary and restored
//!   from disk finishes digest- and stats-identical to an uninterrupted
//!   same-seed run (`first_divergence: none`), with and without an active
//!   chaos fault plan;
//! * the supervisor charges no `--retries` slot for a retry that resumed
//!   from an advanced snapshot, and journals the snapshot path.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::Duration;

use awg_core::policies::{build_policy, PolicyKind};
use awg_harness::{
    chaos,
    checkpointing::result_fingerprint,
    pool::Pool,
    run::{run_instrumented, ExperimentConfig, Instrumentation},
    supervisor::{job_digest, sim_job, CheckpointPolicy, JobCtl, JobLimits, Supervisor},
    Journal, Scale,
};
use awg_workloads::BenchmarkKind;

const EVERY: &str = "2000";

fn awg_repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_awg-repro"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("awg-ckpt-restore-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `run fingerprint: <hex>` line a completed run prints: the
/// cross-process witness that two runs produced identical stats and
/// digest trails.
fn fingerprint_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find(|l| l.starts_with("run fingerprint:"))
        .unwrap_or_else(|| {
            panic!(
                "no fingerprint line\nstdout: {}\nstderr: {}",
                String::from_utf8_lossy(&out.stdout),
                String::from_utf8_lossy(&out.stderr)
            )
        })
        .to_owned()
}

#[test]
fn killed_at_every_snapshot_boundary_restore_is_byte_identical() {
    let dir = temp_dir("killgrid");
    let snap = dir.join("run.ckpt");
    let snap_s = snap.to_str().unwrap();

    // Uninterrupted reference: establishes the fingerprint every restored
    // run must reproduce.
    let reference = awg_repro(&[
        "--quick",
        "--checkpoint-every",
        EVERY,
        "checkpoint",
        "spm_g",
        "awg",
        "--snapshot",
        snap_s,
    ]);
    assert_eq!(reference.status.code(), Some(0), "{reference:?}");
    let ref_fp = fingerprint_line(&reference);

    // Kill after the k-th snapshot for every k until the run finishes
    // before writing k snapshots; each kill must restore to the exact
    // reference fingerprint.
    let mut drills = 0;
    for k in 1..=50u64 {
        std::fs::remove_file(&snap).ok();
        let kill = awg_repro(&[
            "--quick",
            "--checkpoint-every",
            EVERY,
            "checkpoint",
            "spm_g",
            "awg",
            "--snapshot",
            snap_s,
            "--kill-after",
            &k.to_string(),
        ]);
        match kill.status.code() {
            // The run completed before its k-th snapshot: the grid of
            // boundaries is exhausted.
            Some(0) => {
                assert!(k > 1, "a run this size must write at least one snapshot");
                break;
            }
            Some(137) => {}
            other => panic!("kill-after {k}: unexpected exit {other:?}\n{kill:?}"),
        }
        let restore = awg_repro(&["--quick", "restore", snap_s, "spm_g", "awg", "--verify"]);
        assert_eq!(restore.status.code(), Some(0), "k={k}: {restore:?}");
        let stdout = String::from_utf8_lossy(&restore.stdout);
        assert!(stdout.contains("first_divergence: none"), "k={k}: {stdout}");
        assert_eq!(fingerprint_line(&restore), ref_fp, "k={k}");
        drills += 1;
    }
    assert!(drills >= 2, "expected several boundaries, drilled {drills}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_and_restore_under_an_active_fault_plan_is_byte_identical() {
    let dir = temp_dir("faulted");
    let snap = dir.join("run.ckpt");
    let snap_s = snap.to_str().unwrap();
    let plan_path = dir.join("plan.json");
    let scale = Scale::quick();
    std::fs::write(
        &plan_path,
        chaos::plan_for(PolicyKind::Awg, &scale, 101).to_json(),
    )
    .unwrap();
    let plan_s = plan_path.to_str().unwrap();

    let kill = awg_repro(&[
        "--quick",
        "--checkpoint-every",
        EVERY,
        "checkpoint",
        "spm_g",
        "awg",
        "--snapshot",
        snap_s,
        "--plan",
        plan_s,
        "--kill-after",
        "2",
    ]);
    assert_eq!(kill.status.code(), Some(137), "{kill:?}");

    let restore = awg_repro(&[
        "--quick", "restore", snap_s, "spm_g", "awg", "--verify", "--plan", plan_s,
    ]);
    assert_eq!(restore.status.code(), Some(0), "{restore:?}");
    assert!(
        String::from_utf8_lossy(&restore.stdout).contains("first_divergence: none"),
        "{restore:?}"
    );

    // The fault plan participates in the snapshot identity: restoring the
    // same snapshot *without* the plan must fail closed, not silently run
    // an un-faulted machine on faulted state.
    let unplanned = awg_repro(&["--quick", "restore", snap_s, "spm_g", "awg"]);
    assert_eq!(unplanned.status.code(), Some(7), "{unplanned:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn supervisor_restore_resume_does_not_consume_attempts() {
    awg_gpu::reset_global_cancel();
    let scale = Scale::quick();
    let dir = temp_dir("sup-resume");
    // One attempt, and a cycle budget far short of the ~18k-cycle run:
    // without snapshots this job cannot finish.
    let limits = JobLimits {
        cycle_budget: Some(3_000),
        max_attempts: 1,
        backoff_base: Duration::from_millis(1),
        ..JobLimits::default()
    };
    let job = |ctl: &JobCtl| {
        ctl.run_checkpointed(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::NonOversubscribed,
            None,
            Instrumentation::checked(),
        )
    };
    let digest = job_digest("capped", &scale, &[]);

    // Control: no checkpoint policy. The single attempt times out and the
    // job is incomplete.
    let sup = Supervisor::new(Pool::serial(), limits);
    let outputs = sup.run(vec![sim_job("capped", digest, job)]);
    assert!(
        matches!(outputs[0].result, Err(awg_gpu::SimError::JobTimeout { .. })),
        "{:?}",
        outputs[0].result
    );
    assert_eq!(sup.incomplete(), 1);

    // With snapshots: every timed-out attempt banks progress, each retry
    // resumes and is not charged, and the job completes on its single
    // nominal attempt.
    let sup = Supervisor::new(Pool::serial(), limits).with_checkpoints(CheckpointPolicy {
        dir: dir.clone(),
        every: 1_000,
    });
    let outputs = sup.run(vec![sim_job("capped", digest, job)]);
    let result = outputs[0].result.as_ref().unwrap_or_else(|e| panic!("{e}"));
    assert!(result.is_valid_completion(), "{:?}", result.outcome);
    assert_eq!(sup.incomplete(), 0, "resume retries must not be charged");
    assert!(
        sup.checkpoint_resumes() >= 1,
        "completion under this budget requires at least one resume"
    );

    // The stitched-together run is indistinguishable from an uninterrupted
    // one.
    let reference = run_instrumented(
        BenchmarkKind::SpinMutexGlobal,
        PolicyKind::Awg,
        build_policy(PolicyKind::Awg),
        &scale,
        ExperimentConfig::NonOversubscribed,
        None,
        Instrumentation::checked(),
    );
    assert_eq!(result_fingerprint(result), result_fingerprint(&reference));

    // The snapshot is cleaned up once its job lands.
    assert!(!sup.checkpoints().unwrap().snapshot_path(digest).exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_records_the_snapshot_path() {
    awg_gpu::reset_global_cancel();
    let scale = Scale::quick();
    let dir = temp_dir("sup-journal");
    let journal_path = dir.join("jobs.jsonl");
    let limits = JobLimits {
        backoff_base: Duration::from_millis(1),
        ..JobLimits::default()
    };
    let digest = job_digest("journaled", &scale, &[]);
    let policy = CheckpointPolicy {
        dir: dir.clone(),
        every: 2_000,
    };
    let expected = policy.snapshot_path(digest).display().to_string();
    let sup = Supervisor::with_journal(Pool::serial(), limits, &journal_path, false, "test-cmd")
        .unwrap()
        .with_checkpoints(policy);
    let outputs = sup.run(vec![sim_job("journaled", digest, |ctl: &JobCtl| {
        ctl.run_checkpointed(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::NonOversubscribed,
            None,
            Instrumentation::checked(),
        )
    })]);
    assert!(outputs[0].result.is_ok());

    let (_j, state) = Journal::open_resume(&journal_path).unwrap();
    assert_eq!(state.records.len(), 1);
    assert_eq!(
        state.records[0].checkpoint.as_deref(),
        Some(expected.as_str())
    );
    std::fs::remove_dir_all(&dir).ok();
}
