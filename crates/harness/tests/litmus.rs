//! Sorensen-style IFP litmus suite (cf. "Portable inter-workgroup barrier
//! synchronisation", OOPSLA 2016) — a thin wrapper over the shared
//! [`awg_workloads::litmus`] kernels, which the conformance lab and its
//! generator also consume.
//!
//! Each litmus kernel runs on a deliberately tiny machine — one CU, so only
//! 10 of the 12 WGs can be resident — making forward progress for
//! *non-resident* WGs the only way to terminate. The busy-waiting Baseline
//! must deadlock (occupancy-bound scheduling gives no IFP guarantee); every
//! design with WG-granularity rescheduling — Timeout, the non-resident
//! monitors, AWG — must complete with the invariant oracle enabled and the
//! post-state intact.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{Gpu, Kernel, RunOutcome, SyncStyle, WgResources};
use awg_workloads::litmus::{self, Litmus, NUM_WGS};

/// Builds the kernel in the policy's sync style and runs it on the 1-CU
/// machine with the invariant oracle on.
fn run_litmus(build: fn(SyncStyle) -> Litmus, policy: PolicyKind) -> (RunOutcome, Gpu, Litmus) {
    let policy_box = build_policy(policy);
    let litmus = build(policy_box.style());
    let kernel = Kernel::new(litmus.program.clone(), NUM_WGS, WgResources::default());
    let mut gpu = Gpu::new(litmus::lab_gpu_config(), kernel, policy_box);
    gpu.enable_invariant_oracle();
    let outcome = gpu.run();
    (outcome, gpu, litmus)
}

#[test]
fn baseline_deadlocks_on_every_litmus() {
    for (name, build) in litmus::all() {
        let (outcome, gpu, _) = run_litmus(build, PolicyKind::Baseline);
        assert!(
            outcome.is_deadlocked(),
            "{name}: occupancy-bound scheduling must deadlock, got {outcome:?}"
        );
        assert!(
            gpu.violations().is_empty(),
            "{name}: a deadlock is not an invariant violation: {:?}",
            gpu.violations()
        );
    }
}

#[test]
fn ifp_policies_complete_every_litmus() {
    for (name, build) in litmus::all() {
        for policy in [
            PolicyKind::Timeout,
            PolicyKind::MonNrAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
        ] {
            let (outcome, gpu, litmus) = run_litmus(build, policy);
            assert!(
                outcome.is_completed(),
                "{name} under {}: {outcome:?}",
                policy.label()
            );
            assert!(
                gpu.violations().is_empty(),
                "{name} under {}: {:?}",
                policy.label(),
                gpu.violations()
            );
            for (addr, expected) in &litmus.finals {
                assert_eq!(
                    gpu.backing().load(*addr),
                    *expected,
                    "{name} under {}: bad post-state at {addr:#x}",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn ifp_completions_actually_context_switch() {
    // The 1-CU machine can only terminate by swapping blocked WGs out.
    for (name, build) in litmus::all() {
        let (outcome, _, _) = run_litmus(build, PolicyKind::Awg);
        let s = outcome.summary();
        assert!(
            s.switches_out > 0 && s.switches_in > 0,
            "{name}: completion without context switches is impossible here: {s:?}"
        );
    }
}

#[test]
fn litmus_runs_are_deterministic() {
    let (a, _, _) = run_litmus(litmus::mutex_handoff, PolicyKind::Awg);
    let (b, _, _) = run_litmus(litmus::mutex_handoff, PolicyKind::Awg);
    assert_eq!(a.summary().cycles, b.summary().cycles);
    assert_eq!(a.summary().atomics, b.summary().atomics);
}
