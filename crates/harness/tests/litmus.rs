//! Sorensen-style IFP litmus suite (cf. "Portable inter-workgroup barrier
//! synchronisation", OOPSLA 2016).
//!
//! Each litmus kernel is written directly against the ISA and launched on a
//! deliberately tiny machine — one CU, so only 10 of the 12 WGs can be
//! resident — making forward progress for *non-resident* WGs the only way
//! to terminate. The busy-waiting Baseline must deadlock (occupancy-bound
//! scheduling gives no IFP guarantee); every design with WG-granularity
//! rescheduling — Timeout, the non-resident monitors, AWG — must complete
//! with the invariant oracle enabled and the post-state intact.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{Gpu, GpuConfig, Kernel, RunOutcome, SyncStyle, WgResources};
use awg_isa::{AluOp, Cond, Mem, Operand, Program, ProgramBuilder, Reg, Special};
use awg_mem::{Addr, AddressSpace};
use awg_workloads::sync_emit;

/// Two more WGs than the 1-CU machine can hold (40 wavefront slots / 4
/// wavefronts per WG = 10 resident).
const NUM_WGS: u64 = 12;
const PAYLOAD: i64 = 7;

fn one_cu() -> GpuConfig {
    let mut c = GpuConfig::isca2020_baseline();
    c.num_cus = 1;
    // Short quiescence window so the Baseline deadlocks are detected fast.
    c.quiescence_cycles = 600_000;
    c
}

/// A litmus kernel plus its expected final memory (address, value) pairs.
struct Litmus {
    program: Program,
    finals: Vec<(Addr, i64)>,
}

/// Producer/consumer spin: the *last* WG is the producer, so on a full
/// machine it is never dispatched until some consumer is context-switched
/// out. Consumers spin on the flag, then read the payload it guards.
fn producer_consumer(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let flag = space.alloc_sync_var("flag");
    let payload = space.alloc_sync_var("payload");
    let acks = space.alloc_sync_var("acks");
    let mut b = ProgramBuilder::new("litmus_pc");
    b.special(Reg::R1, Special::WgId);
    let produce = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(NUM_WGS as i64 - 1), produce);
    // --- consumer ---
    sync_emit::wait_until_equals(&mut b, style, Mem::direct(flag), 1i64, Reg::R2, None);
    b.ld(Reg::R3, payload);
    b.atom_add(Reg::R0, acks, Reg::R3);
    b.jmp(done);
    // --- producer ---
    b.bind(produce);
    b.compute(5_000);
    b.st(payload, PAYLOAD);
    b.atom_exch(Reg::R0, flag, 1i64);
    b.bind(done);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(flag, 1), (acks, PAYLOAD * (NUM_WGS as i64 - 1))],
    }
}

/// Cross-WG mutex handoff in *descending* WG-id order: WG `i`'s turn comes
/// when `token == (NUM_WGS-1) - i`, so the chain starts at the one WG the
/// full machine cannot dispatch.
fn mutex_handoff(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let token = space.alloc_sync_var("token");
    let counter = space.alloc_sync_var("counter");
    let mut b = ProgramBuilder::new("litmus_handoff");
    b.special(Reg::R1, Special::WgId);
    b.li(Reg::R2, NUM_WGS as i64 - 1);
    b.alu(AluOp::Sub, Reg::R2, Reg::R2, Reg::R1);
    sync_emit::wait_until_equals(&mut b, style, Mem::direct(token), Reg::R2, Reg::R3, None);
    // Critical section: a non-atomic read-modify-write only mutual
    // exclusion keeps consistent.
    sync_emit::critical_section(&mut b, Mem::direct(counter), 1, 50, Reg::R4);
    b.atom_add(Reg::R0, token, 1i64);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(counter, NUM_WGS as i64), (token, NUM_WGS as i64)],
    }
}

/// Oversubscribed centralized barrier: every WG arrives at one counter and
/// waits for all `NUM_WGS` arrivals — two of which can only happen after
/// resident waiters yield their slots.
fn centralized_barrier(style: SyncStyle) -> Litmus {
    let mut space = AddressSpace::new();
    let count = space.alloc_sync_var("count");
    let after = space.alloc_sync_var("after");
    let mut b = ProgramBuilder::new("litmus_barrier");
    b.compute(100);
    b.atom_add(Reg::R0, count, 1i64);
    sync_emit::wait_until_equals(
        &mut b,
        style,
        Mem::direct(count),
        NUM_WGS as i64,
        Reg::R2,
        None,
    );
    b.atom_add(Reg::R0, after, 1i64);
    b.halt();
    Litmus {
        program: b.build().expect("verifies"),
        finals: vec![(count, NUM_WGS as i64), (after, NUM_WGS as i64)],
    }
}

/// A named litmus kernel builder, parametric in the policy's sync style.
type LitmusBuilder = fn(SyncStyle) -> Litmus;

fn litmuses() -> [(&'static str, LitmusBuilder); 3] {
    [
        ("producer_consumer", producer_consumer),
        ("mutex_handoff", mutex_handoff),
        ("centralized_barrier", centralized_barrier),
    ]
}

/// Builds the kernel in the policy's sync style and runs it on the 1-CU
/// machine with the invariant oracle on.
fn run_litmus(build: fn(SyncStyle) -> Litmus, policy: PolicyKind) -> (RunOutcome, Gpu, Litmus) {
    let policy_box = build_policy(policy);
    let litmus = build(policy_box.style());
    let kernel = Kernel::new(litmus.program.clone(), NUM_WGS, WgResources::default());
    let mut gpu = Gpu::new(one_cu(), kernel, policy_box);
    gpu.enable_invariant_oracle();
    let outcome = gpu.run();
    (outcome, gpu, litmus)
}

#[test]
fn baseline_deadlocks_on_every_litmus() {
    for (name, build) in litmuses() {
        let (outcome, gpu, _) = run_litmus(build, PolicyKind::Baseline);
        assert!(
            outcome.is_deadlocked(),
            "{name}: occupancy-bound scheduling must deadlock, got {outcome:?}"
        );
        assert!(
            gpu.violations().is_empty(),
            "{name}: a deadlock is not an invariant violation: {:?}",
            gpu.violations()
        );
    }
}

#[test]
fn ifp_policies_complete_every_litmus() {
    for (name, build) in litmuses() {
        for policy in [
            PolicyKind::Timeout,
            PolicyKind::MonNrAll,
            PolicyKind::MonNrOne,
            PolicyKind::Awg,
        ] {
            let (outcome, gpu, litmus) = run_litmus(build, policy);
            assert!(
                outcome.is_completed(),
                "{name} under {}: {outcome:?}",
                policy.label()
            );
            assert!(
                gpu.violations().is_empty(),
                "{name} under {}: {:?}",
                policy.label(),
                gpu.violations()
            );
            for (addr, expected) in &litmus.finals {
                assert_eq!(
                    gpu.backing().load(*addr),
                    *expected,
                    "{name} under {}: bad post-state at {addr:#x}",
                    policy.label()
                );
            }
        }
    }
}

#[test]
fn ifp_completions_actually_context_switch() {
    // The 1-CU machine can only terminate by swapping blocked WGs out.
    for (name, build) in litmuses() {
        let (outcome, _, _) = run_litmus(build, PolicyKind::Awg);
        let s = outcome.summary();
        assert!(
            s.switches_out > 0 && s.switches_in > 0,
            "{name}: completion without context switches is impossible here: {s:?}"
        );
    }
}

#[test]
fn litmus_runs_are_deterministic() {
    let (a, _, _) = run_litmus(mutex_handoff, PolicyKind::Awg);
    let (b, _, _) = run_litmus(mutex_handoff, PolicyKind::Awg);
    assert_eq!(a.summary().cycles, b.summary().cycles);
    assert_eq!(a.summary().atomics, b.summary().atomics);
}
