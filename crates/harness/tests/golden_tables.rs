//! Golden-file conformance for the configuration tables.
//!
//! Table 1 (machine model) and Table 2 (benchmark characteristics) are
//! pure renderings of pinned configuration, so their CSVs are checked in
//! under `tests/golden/` and compared byte-for-byte. When an intentional
//! model change shifts them, re-bless with:
//!
//! ```sh
//! BLESS=1 cargo test -p awg-harness --test golden_tables
//! ```
//!
//! and review the golden diff like any other code change.

use std::path::PathBuf;

use awg_harness::{table1, table2, Scale};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some_and(|v| v == "1") {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden CSV; if the change is intentional, \
         re-run with BLESS=1 and review the diff"
    );
}

#[test]
fn table1_matches_golden_csv() {
    check_golden("table1_paper.csv", &table1::run(&Scale::paper()).to_csv());
}

#[test]
fn table2_matches_golden_csv() {
    check_golden("table2_paper.csv", &table2::run(&Scale::paper()).to_csv());
}
