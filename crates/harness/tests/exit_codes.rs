//! The front end's exit-code contract, asserted through the real binary:
//! every code in `awg_harness::exit`'s table is reachable and means what
//! the table says.

use std::path::PathBuf;
use std::process::{Command, Output};

use awg_harness::exit::{
    EXIT_CONFORMANCE, EXIT_CORRUPT, EXIT_PARTIAL, EXIT_PLAN, EXIT_REGRESSION, EXIT_USAGE,
};

fn awg_repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_awg-repro"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("awg-exit-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bare_invocation_prints_help_with_the_exit_table_and_succeeds() {
    let out = awg_repro(&[]);
    assert!(out.status.success(), "{:?}", out.status);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("Exit codes:"), "{stderr}");
    // The table documents the new partial-completion code.
    assert!(stderr.contains("partial"), "{stderr}");
}

#[test]
fn unknown_command_is_a_usage_error() {
    let out = awg_repro(&["no-such-figure"]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE as i32));
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    for args in [
        &["--journal"][..],
        &["--resume"][..],
        &["--job-deadline"][..],
        &["--retries", "-1", "fig5"][..],
        &["--job-deadline", "0", "fig5"][..],
    ] {
        let out = awg_repro(args);
        assert_eq!(out.status.code(), Some(EXIT_USAGE as i32), "{args:?}");
    }
}

#[test]
fn journal_and_resume_are_mutually_exclusive() {
    let out = awg_repro(&["--journal", "a.jsonl", "--resume", "b.jsonl", "fig5"]);
    assert_eq!(out.status.code(), Some(EXIT_USAGE as i32));
}

#[test]
fn successful_campaign_exits_zero() {
    let out = awg_repro(&["--quick", "fig5"]);
    assert_eq!(out.status.code(), Some(0), "{:?}", out);
    assert!(String::from_utf8_lossy(&out.stdout).contains("Fig 5"));
}

#[test]
fn malformed_fault_plan_exits_with_the_plan_code() {
    let dir = temp_dir("plan");
    let plan = dir.join("bad-plan.json");
    std::fs::write(&plan, "{this is not a fault plan").unwrap();
    let out = awg_repro(&["replay", plan.to_str().unwrap(), "TB_LG", "baseline"]);
    assert_eq!(out.status.code(), Some(EXIT_PLAN as i32));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_jobs_emit_a_partial_report_and_the_partial_code() {
    // A wall deadline no attempt can meet turns every simulated job into a
    // typed timeout row; the campaign still emits its report but must
    // signal partial completion. (`priority` renders per-cell typed
    // errors, and its runs are long enough to hit the wall-clock poll.)
    let out = awg_repro(&[
        "--quick",
        "--job-deadline",
        "0.000000001",
        "--retries",
        "0",
        "priority",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_PARTIAL as i32), "{:?}", out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ERROR"), "typed rows in report: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("INCOMPLETE"), "{stderr}");
}

#[test]
fn conformance_regression_exits_with_the_conformance_code() {
    let dir = temp_dir("conformance");
    let golden = dir.join("expected.csv");

    // No committed golden at the given path: the matrix cannot be checked,
    // which is itself a conformance failure (CI must not silently pass).
    let missing = awg_repro(&[
        "--quick",
        "conformance",
        "--count",
        "0",
        "--expected",
        golden.to_str().unwrap(),
    ]);
    assert_eq!(
        missing.status.code(),
        Some(EXIT_CONFORMANCE as i32),
        "{missing:?}"
    );
    assert!(
        String::from_utf8_lossy(&missing.stderr).contains("BLESS=1"),
        "the failure must say how to bless: {missing:?}"
    );

    // A golden that disagrees in one cell is a regression with a precise
    // diff; a blessed golden matches and exits zero.
    let bless = Command::new(env!("CARGO_BIN_EXE_awg-repro"))
        .args([
            "--quick",
            "conformance",
            "--count",
            "0",
            "--expected",
            golden.to_str().unwrap(),
        ])
        .env("BLESS", "1")
        .output()
        .expect("binary runs");
    assert_eq!(bless.status.code(), Some(0), "{bless:?}");

    let text = std::fs::read_to_string(&golden).unwrap();
    assert!(text.contains("Baseline,OBE,deadlock"), "{text}");
    std::fs::write(
        &golden,
        text.replace("AWG,Fair,sat,sat,sat,Fair", "AWG,Fair,sat,sat,sat,LOBE"),
    )
    .unwrap();
    let regressed = awg_repro(&[
        "--quick",
        "conformance",
        "--count",
        "0",
        "--expected",
        golden.to_str().unwrap(),
    ]);
    assert_eq!(
        regressed.status.code(),
        Some(EXIT_CONFORMANCE as i32),
        "{regressed:?}"
    );
    assert!(
        String::from_utf8_lossy(&regressed.stderr).contains("REGRESSION"),
        "{regressed:?}"
    );

    std::fs::write(&golden, text).unwrap();
    let matching = awg_repro(&[
        "--quick",
        "conformance",
        "--count",
        "0",
        "--expected",
        golden.to_str().unwrap(),
    ]);
    assert_eq!(matching.status.code(), Some(0), "{matching:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes a completed quick run's snapshot (killed after its first
/// checkpoint so the snapshot survives on disk) and returns its path.
fn banked_snapshot(dir: &std::path::Path) -> PathBuf {
    let snap = dir.join("run.ckpt");
    let out = awg_repro(&[
        "--quick",
        "--checkpoint-every",
        "2000",
        "checkpoint",
        "spm_g",
        "awg",
        "--snapshot",
        snap.to_str().unwrap(),
        "--kill-after",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(137), "{out:?}");
    snap
}

#[test]
fn corrupted_snapshots_fail_closed_with_the_corrupt_code() {
    let dir = temp_dir("corrupt");
    let snap = banked_snapshot(&dir);
    for mode in ["truncate:40", "bitflip:4096", "stale-version"] {
        let out = awg_repro(&[
            "--quick",
            "restore",
            snap.to_str().unwrap(),
            "spm_g",
            "awg",
            "--corrupt",
            mode,
        ]);
        assert_eq!(
            out.status.code(),
            Some(EXIT_CORRUPT as i32),
            "{mode}: {out:?}"
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("restore failed closed as expected"),
            "{mode}: {out:?}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_identity_snapshot_is_refused_with_the_corrupt_code() {
    let dir = temp_dir("foreign");
    let snap = banked_snapshot(&dir);
    // Same snapshot, different policy: a config mismatch, not a file
    // defect, but restore must still fail closed.
    let out = awg_repro(&[
        "--quick",
        "restore",
        snap.to_str().unwrap(),
        "spm_g",
        "timeout",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_CORRUPT as i32), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_restore_verifies_against_the_uninterrupted_run_and_exits_zero() {
    let dir = temp_dir("clean-restore");
    let snap = banked_snapshot(&dir);
    let out = awg_repro(&[
        "--quick",
        "restore",
        snap.to_str().unwrap(),
        "spm_g",
        "awg",
        "--verify",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("first_divergence: none"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A hand-written baseline snapshot claiming `mcycles_per_sec`, in the
/// pre-meta schema (the compare path must accept old snapshots).
fn synthetic_baseline(dir: &std::path::Path, name: &str, mcycles_per_sec: f64) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            r#"{{"bench":"awg-sim","workers":1,"jobs":[],"total_wall_ns":1.0,"sim_cycles":1.0,"events":1.0,"mcycles_per_sec":{mcycles_per_sec},"events_per_sec":1.0}}"#
        ),
    )
    .unwrap();
    path
}

#[test]
fn bench_compare_exits_nine_on_regression_and_zero_within_budget() {
    let dir = temp_dir("bench-compare");
    // A baseline no container can fail to beat: compare passes, exit 0.
    let slow = synthetic_baseline(&dir, "slow.json", 1e-6);
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "bench",
        "--compare",
        slow.to_str().unwrap(),
        "--max-regress",
        "95",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("compare:") && stderr.contains(": ok"),
        "{stderr}"
    );

    // A baseline no machine can reach: the same campaign is a regression.
    let fast = synthetic_baseline(&dir, "fast.json", 1e12);
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "bench",
        "--compare",
        fast.to_str().unwrap(),
        "--max-regress",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_REGRESSION as i32), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("REGRESSION"),
        "{out:?}"
    );

    // An unreadable baseline is a plain failure, not a regression verdict.
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "bench",
        "--compare",
        dir.join("absent.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_compare_negative_budget_is_a_speedup_floor() {
    let dir = temp_dir("bench-speedup");
    // A tiny baseline: any container clears the 3x floor, exit 0.
    let slow = synthetic_baseline(&dir, "slow.json", 1e-6);
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "bench",
        "--compare",
        slow.to_str().unwrap(),
        "--max-regress",
        "-200",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("required speedup 3.00x"),
        "{out:?}"
    );

    // An unreachable 3x floor: merely matching the baseline is a
    // regression under an inverted gate.
    let fast = synthetic_baseline(&dir, "fast.json", 1e12);
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "2",
        "--out",
        dir.to_str().unwrap(),
        "bench",
        "--compare",
        fast.to_str().unwrap(),
        "--max-regress",
        "-200",
    ]);
    assert_eq!(out.status.code(), Some(EXIT_REGRESSION as i32), "{out:?}");

    // Budgets past 100% would make the threshold negative (nothing
    // could ever regress): rejected as a usage error.
    let out = awg_repro(&[
        "--quick",
        "bench",
        "--compare",
        slow.to_str().unwrap(),
        "--max-regress",
        "150",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_history_renders_the_trajectory_without_running_a_campaign() {
    let dir = temp_dir("bench-history");
    synthetic_baseline(&dir, "BENCH_100.json", 10.0);
    synthetic_baseline(&dir, "BENCH_200.json", 20.0);
    let out = awg_repro(&["bench", "--out", dir.to_str().unwrap(), "--history"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("| snapshot |"), "{stdout}");
    let i100 = stdout.find("BENCH_100.json").expect("first snapshot row");
    let i200 = stdout.find("BENCH_200.json").expect("second snapshot row");
    assert!(i100 < i200, "chronological order: {stdout}");
    std::fs::remove_dir_all(&dir).ok();

    // An empty trajectory is an error, not an empty table.
    let empty = temp_dir("bench-history-empty");
    let out = awg_repro(&["bench", "--out", empty.to_str().unwrap(), "--history"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_dir_all(&empty).ok();
}

#[test]
fn profile_writes_a_parseable_observatory_document() {
    let dir = temp_dir("profile-json");
    let json_path = dir.join("observatory.json");
    let out = awg_repro(&[
        "--quick",
        "profile",
        "--bench",
        "SPM_G",
        "--policy",
        "awg",
        "--out",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hot-profile:"), "{stdout}");
    assert!(stdout.contains("cycle attribution:"), "{stdout}");

    let text = std::fs::read_to_string(&json_path).unwrap();
    let doc = awg_sim::json::parse(&text).expect("profile document parses");
    assert_eq!(
        doc.get("profile").and_then(|v| v.as_str()),
        Some("awg-profile")
    );
    // The ranked hotspot shares sum to ~100%.
    let lanes = doc
        .get("hotspot")
        .and_then(|h| h.get("lanes"))
        .and_then(|l| l.as_array())
        .expect("hotspot lanes");
    let share: f64 = lanes
        .iter()
        .filter_map(|l| l.get("fraction").and_then(|f| f.as_f64()))
        .sum();
    assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    // The attribution ledger's grand total is exactly wgs * elapsed.
    let attr = doc.get("attribution").expect("attribution object");
    let elapsed = attr.get("elapsed_cycles").and_then(|v| v.as_f64()).unwrap();
    let wgs = attr.get("wgs").and_then(|v| v.as_f64()).unwrap();
    let totals = attr.get("totals").expect("totals object");
    let sum: f64 = [
        "queued",
        "executing",
        "sync_wait",
        "sleep_wait",
        "preempted",
        "fault_stall",
        "retired",
    ]
    .iter()
    .filter_map(|c| totals.get(c).and_then(|v| v.as_f64()))
    .sum();
    assert!(elapsed > 0.0 && wgs > 0.0);
    assert_eq!(sum, elapsed * wgs, "sum-to-elapsed through the binary");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_journal_then_resume_reproduces_the_csv_byte_for_byte() {
    let dir = temp_dir("cli-resume");
    let journal = dir.join("fig5.jsonl");
    let clean_dir = dir.join("clean");
    let resumed_dir = dir.join("resumed");

    let first = awg_repro(&[
        "--quick",
        "--journal",
        journal.to_str().unwrap(),
        "--out",
        clean_dir.to_str().unwrap(),
        "fig5",
    ]);
    assert_eq!(first.status.code(), Some(0), "{:?}", first);

    let second = awg_repro(&[
        "--quick",
        "--resume",
        journal.to_str().unwrap(),
        "--out",
        resumed_dir.to_str().unwrap(),
        "fig5",
    ]);
    assert_eq!(second.status.code(), Some(0), "{:?}", second);
    let stderr = String::from_utf8_lossy(&second.stderr);
    assert!(
        stderr.contains("served from the resume journal"),
        "{stderr}"
    );

    let clean = std::fs::read(clean_dir.join("fig5.csv")).unwrap();
    let resumed = std::fs::read(resumed_dir.join("fig5.csv")).unwrap();
    assert_eq!(clean, resumed, "resumed CSV must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}
