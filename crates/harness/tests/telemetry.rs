//! Integration tests for the telemetry hub on real benchmark runs: the
//! per-WG accounting identity, digest-trail transparency, the run-report
//! histograms, and the Perfetto export's well-formedness.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{chrome_trace, expected_counts, Gpu};
use awg_harness::{
    run::{run_instrumented, ExperimentConfig, Instrumentation},
    timeline, Scale, DIGEST_WINDOW,
};
use awg_sim::{json, Cycle, TelemetryConfig};
use awg_workloads::BenchmarkKind;

fn telemetry_on() -> TelemetryConfig {
    TelemetryConfig {
        snapshot_window: Some(DIGEST_WINDOW),
        profiling: true,
    }
}

/// Acceptance: for every WG — including swapped and never-dispatched ones —
/// the per-state cycle totals sum to the run's elapsed cycles.
#[test]
fn state_times_sum_to_elapsed_for_every_wg() {
    let scale = Scale::quick();
    for policy in [PolicyKind::Baseline, PolicyKind::Awg] {
        let policy_box = build_policy(policy);
        let built = BenchmarkKind::SpinMutexGlobal.build(&scale.params, policy_box.style());
        let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
        gpu.enable_telemetry(telemetry_on());
        let outcome = gpu.run();
        assert!(outcome.is_completed(), "{policy:?}: {outcome}");
        let hub = gpu.telemetry().expect("telemetry was enabled");
        // The hub closes at the retirement of the last instruction, which
        // may sit a few cycles past the final scheduled event.
        let elapsed = hub.end_cycle().expect("run finalizes the hub");
        assert!(elapsed >= gpu.now());
        assert!(hub.wg_count() > 0);
        for wg in 0..hub.wg_count() {
            let times = hub.wg_state_times(wg).expect("wg accounted");
            let total: Cycle = times.iter().sum();
            assert_eq!(
                total, elapsed,
                "{policy:?} wg {wg}: state times {times:?} must sum to {elapsed}"
            );
        }
    }
}

/// Telemetry is a pure observer: the per-window digest trail is
/// bit-identical with the hub off and on.
#[test]
fn telemetry_does_not_perturb_digest_trail() {
    let scale = Scale::quick();
    let digests_only = Instrumentation {
        oracle: false,
        digest_window: Some(DIGEST_WINDOW),
        telemetry: None,
        hot_profile: false,
    };
    let digests_and_telemetry = Instrumentation {
        oracle: false,
        digest_window: Some(DIGEST_WINDOW),
        telemetry: Some(telemetry_on()),
        hot_profile: true,
    };
    let run = |instr: Instrumentation| {
        run_instrumented(
            BenchmarkKind::SpinMutexGlobal,
            PolicyKind::Awg,
            build_policy(PolicyKind::Awg),
            &scale,
            ExperimentConfig::NonOversubscribed,
            None,
            instr,
        )
    };
    let plain = run(digests_only);
    let observed = run(digests_and_telemetry);
    assert!(plain.is_valid_completion());
    assert!(observed.is_valid_completion());
    assert!(!plain.digest_trail.is_empty());
    assert_eq!(
        plain.digest_trail, observed.digest_trail,
        "neither the hub nor the hot profile may feed back into the simulation"
    );
    assert!(plain.snapshots.is_empty());
    assert!(!observed.snapshots.is_empty());
    assert!(plain.hot.is_none());
    let hot = observed.hot.as_ref().expect("hot profile was enabled");
    assert!(hot.events_popped > 0);
    assert!(hot.heap_high_water > 0);
    // The ranked table is normalized: lane shares must sum to ~100%.
    let share: f64 = hot.lanes.iter().map(|l| l.fraction).sum();
    assert!((share - 1.0).abs() < 1e-9, "lane shares sum to {share}");
}

/// Acceptance: the cycle-attribution ledger sums to elapsed cycles for
/// every WG, under every policy, with and without injected faults.
#[test]
fn attribution_sums_to_elapsed_across_policies_and_chaos() {
    let scale = Scale::quick();
    for policy in awg_harness::conformance::policies() {
        for plan in [None, Some(awg_harness::chaos::plan_for(policy, &scale, 11))] {
            let chaotic = plan.is_some();
            let r = run_instrumented(
                BenchmarkKind::SpinMutexGlobal,
                policy,
                build_policy(policy),
                &scale,
                ExperimentConfig::NonOversubscribed,
                plan,
                Instrumentation::hotspot(),
            );
            // Baseline-family policies may legitimately hang under chaos;
            // the ledger identity must still hold at the abort cycle, so
            // elapsed comes from the ledger and is cross-checked against
            // the outcome (the hub closes at the retirement of the last
            // instruction, at or past the final scheduled event).
            let elapsed: Cycle = r.attribution[0].iter().sum();
            assert!(
                elapsed >= r.outcome.summary().cycles,
                "{policy:?} chaos={chaotic}: ledger closes at {elapsed}, before {}",
                r.outcome.summary().cycles
            );
            assert!(!r.attribution.is_empty(), "{policy:?} chaos={chaotic}");
            for (wg, row) in r.attribution.iter().enumerate() {
                let total: Cycle = row.iter().sum();
                assert_eq!(
                    total, elapsed,
                    "{policy:?} chaos={chaotic} wg {wg}: causes {row:?} must sum to {elapsed}"
                );
            }
            let totals = r.attribution_totals();
            assert_eq!(
                totals.iter().sum::<Cycle>(),
                elapsed * r.attribution.len() as Cycle
            );
        }
    }
}

/// The wake-to-resume histogram lands in the run report's stats whenever a
/// sleeping policy actually wakes WGs.
#[test]
fn wake_to_resume_hist_reaches_run_report() {
    let scale = Scale::quick();
    let r = run_instrumented(
        BenchmarkKind::SpinMutexGlobal,
        PolicyKind::Awg,
        build_policy(PolicyKind::Awg),
        &scale,
        ExperimentConfig::NonOversubscribed,
        None,
        Instrumentation::observed(),
    );
    assert!(r.is_valid_completion());
    let stats = &r.outcome.summary().stats;
    let buckets = stats
        .hist_buckets_by_name("telemetry_wake_to_resume_cycles")
        .expect("hist registered by the hub");
    assert!(
        buckets.iter().map(|&(_, c)| c).sum::<u64>() > 0,
        "AWG wakes stalled WGs, so latencies must be observed"
    );
    // The rendered report (Stats::Display) includes the histogram too.
    let text = stats.to_string();
    assert!(
        text.contains("telemetry_wake_to_resume_cycles: count="),
        "{text}"
    );
    assert!(r.profile.is_some());
}

/// Golden export check on a contended-mutex run: the document parses, every
/// event is well-formed (known `ph`, numeric non-negative `ts`, numeric
/// `pid`/`tid`), and the phase counts account for the in-memory trace.
#[test]
fn perfetto_export_is_well_formed_and_complete() {
    let scale = Scale::quick();
    let policy_box = build_policy(PolicyKind::Awg);
    let built = BenchmarkKind::SpinMutexGlobal.build(&scale.params, policy_box.style());
    let mut gpu = Gpu::new(scale.gpu.clone(), built.kernel(), policy_box);
    gpu.enable_trace();
    gpu.enable_telemetry(telemetry_on());
    let outcome = gpu.run();
    assert!(outcome.is_completed(), "{outcome}");

    let records = gpu.trace_records();
    assert!(!records.is_empty());
    let doc = json::parse(&chrome_trace(&records, scale.gpu.num_cus)).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");

    let mut slices = 0u64;
    let mut counters = 0u64;
    let mut instants = 0u64;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph present");
        assert!(
            matches!(ph, "X" | "C" | "i" | "M"),
            "unexpected phase {ph:?}"
        );
        let pid = e.get("pid").and_then(|p| p.as_f64()).expect("numeric pid");
        assert!(pid >= 0.0);
        let tid = e.get("tid").and_then(|t| t.as_f64()).expect("numeric tid");
        assert!(tid >= 0.0);
        if ph != "M" {
            let ts = e.get("ts").and_then(|t| t.as_f64()).expect("numeric ts");
            assert!(ts >= 0.0, "negative timestamp {ts}");
        }
        match ph {
            "X" => {
                slices += 1;
                let dur = e.get("dur").and_then(|d| d.as_f64()).expect("numeric dur");
                assert!(dur >= 0.0);
            }
            "C" => counters += 1,
            "i" => instants += 1,
            _ => {}
        }
    }
    let expected = expected_counts(&records);
    assert_eq!(slices, expected.slices);
    assert_eq!(counters, expected.counters);
    assert_eq!(instants, expected.instants);
}

/// Context switches (forced here by mid-run CU loss) record their
/// traffic/fixed/stall breakdown and land swap intervals in the per-WG
/// accounting.
#[test]
fn oversubscription_records_ctx_switch_breakdown() {
    let scale = Scale::quick();
    let r = run_instrumented(
        BenchmarkKind::SpinMutexGlobal,
        PolicyKind::Awg,
        build_policy(PolicyKind::Awg),
        &scale,
        ExperimentConfig::Oversubscribed,
        None,
        Instrumentation::observed(),
    );
    assert!(r.is_valid_completion(), "{:?}", r.outcome);
    assert!(r.outcome.summary().switches_out > 0, "CU loss forces swaps");
    let stats = &r.outcome.summary().stats;
    let out = stats
        .dist_summary_by_name("telemetry_ctx_out_traffic_cycles")
        .expect("swap-out breakdown recorded");
    assert_eq!(out.count, r.outcome.summary().switches_out);
    assert!(out.sum > 0, "context save is real DRAM traffic");
    assert!(stats
        .hist_buckets_by_name("telemetry_ctx_out_total_cycles")
        .is_some());
    let swapped = stats
        .dist_summary_by_name("telemetry_wg_cycles_swapped_out")
        .expect("per-WG state dists published");
    assert!(swapped.sum > 0, "some WG spent time swapped out");
}

/// The timeline workflow produces the same artifacts the CLI writes.
#[test]
fn timeline_workflow_runs_quick() {
    let t = timeline::run_timeline(
        BenchmarkKind::FaMutexGlobal,
        PolicyKind::MonNrOne,
        &Scale::quick(),
        None,
    );
    assert!(t.outcome.is_completed(), "{}", t.outcome);
    json::parse(&t.json).expect("valid JSON");
    for line in t.snapshots_jsonl.lines() {
        let snap = json::parse(line).expect("valid snapshot line");
        assert!(snap.get("cycle").is_some());
        assert!(snap.get("occupancy").is_some());
        assert!(snap.get("states").is_some());
    }
}
