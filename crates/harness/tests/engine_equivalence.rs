//! Engine-equivalence differential battery for the event-core rewrite.
//!
//! The calendar-queue scheduler replaced the original `BinaryHeap` event
//! queue wholesale; these tests pin the observable behaviour of the whole
//! stack to goldens captured from the heap engine *before* it was deleted
//! (commit 30689b4). Three layers of evidence:
//!
//! * **Digest trails** — same-seed checked runs (oracle on, 5000-cycle
//!   digest window) across a benchmark × policy matrix must reproduce the
//!   heap engine's per-window state digests exactly
//!   (`first_divergence == None`, equal length, equal completion cycles).
//! * **Campaign CSVs** — `fig5` and the chaos matrix, run through the real
//!   binary at quick scale, must be byte-identical to the heap engine's
//!   CSVs.
//! * **Conformance matrix** — the `conformance` subcommand compares its
//!   own output against the committed golden
//!   (`results/conformance_expected.csv`) and exits non-zero on any cell
//!   mismatch; a zero exit here is a byte-identity proof across all nine
//!   policies × progress models.
//!
//! Regenerating the goldens (`BLESS_ENGINE=1 cargo test -p awg-harness
//! --test engine_equivalence`) is only legitimate when simulated behaviour
//! deliberately changes; a pure scheduler swap must never need it.

use std::path::PathBuf;
use std::process::Command;

use awg_core::policies::{build_policy, PolicyKind};
use awg_harness::run::{run_instrumented, ExperimentConfig, Instrumentation};
use awg_harness::Scale;
use awg_sim::first_divergence;
use awg_workloads::BenchmarkKind;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var_os("BLESS_ENGINE").is_some()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("awg-engine-eq-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The benchmark × policy matrix the digest goldens cover: the three
/// chaos/bench workloads under the paper's main completing designs, plus
/// busy-wait Baseline on the mutex (Baseline hangs on the barrier only
/// when oversubscribed, which this matrix is not).
fn matrix() -> Vec<(BenchmarkKind, PolicyKind)> {
    let mut out = Vec::new();
    for kind in [
        BenchmarkKind::SpinMutexGlobal,
        BenchmarkKind::FaMutexGlobal,
        BenchmarkKind::TreeBarrier,
    ] {
        for policy in [
            PolicyKind::Awg,
            PolicyKind::MonNrOne,
            PolicyKind::Sleep,
            PolicyKind::Timeout,
        ] {
            out.push((kind, policy));
        }
    }
    out.push((BenchmarkKind::SpinMutexGlobal, PolicyKind::Baseline));
    out
}

/// One golden line per run: `kind policy cycles trail-hex,trail-hex,...`.
fn render_line(kind: BenchmarkKind, policy: PolicyKind, cycles: u64, trail: &[u64]) -> String {
    let hexes: Vec<String> = trail.iter().map(|d| format!("{d:016x}")).collect();
    format!("{kind:?} {policy:?} {cycles} {}", hexes.join(","))
}

#[test]
fn digest_trails_match_the_heap_engine_goldens() {
    let path = golden_dir().join("digest_trails.txt");
    let scale = Scale::quick();
    let mut lines = Vec::new();
    for (kind, policy) in matrix() {
        let r = run_instrumented(
            kind,
            policy,
            build_policy(policy),
            &scale,
            ExperimentConfig::NonOversubscribed,
            None,
            Instrumentation::checked(),
        );
        assert!(
            r.violations.is_empty(),
            "{kind:?}/{policy:?}: oracle violations {:?}",
            r.violations
        );
        let cycles = r
            .cycles()
            .unwrap_or_else(|| panic!("{kind:?}/{policy:?} must complete, got {:?}", r.outcome));
        assert!(
            !r.digest_trail.is_empty(),
            "{kind:?}/{policy:?}: checked runs must record digests"
        );
        lines.push((kind, policy, cycles, r.digest_trail));
    }

    if blessing() {
        let body: String = lines
            .iter()
            .map(|(k, p, c, t)| render_line(*k, *p, *c, t) + "\n")
            .collect();
        std::fs::write(&path, body).unwrap();
        return;
    }

    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    let mut golden_lines = golden.lines();
    for (kind, policy, cycles, trail) in &lines {
        let line = golden_lines
            .next()
            .unwrap_or_else(|| panic!("golden ends before {kind:?}/{policy:?}"));
        let mut fields = line.split(' ');
        let (gk, gp, gc, gt) = (
            fields.next().unwrap(),
            fields.next().unwrap(),
            fields.next().unwrap(),
            fields.next().unwrap_or(""),
        );
        assert_eq!(gk, format!("{kind:?}"), "golden row order changed");
        assert_eq!(gp, format!("{policy:?}"), "golden row order changed");
        let old_trail: Vec<u64> = gt
            .split(',')
            .map(|h| u64::from_str_radix(h, 16).unwrap())
            .collect();
        assert_eq!(
            first_divergence(&old_trail, trail),
            None,
            "{kind:?}/{policy:?}: digest trail diverged from the heap engine"
        );
        assert_eq!(
            old_trail.len(),
            trail.len(),
            "{kind:?}/{policy:?}: trail length changed (prefix divergence)"
        );
        assert_eq!(
            gc.parse::<u64>().unwrap(),
            *cycles,
            "{kind:?}/{policy:?}: completion cycle changed"
        );
    }
    assert!(golden_lines.next().is_none(), "golden has extra rows");
}

fn awg_repro(args: &[&str]) -> std::process::Output {
    // Run from the workspace root: `conformance` resolves its committed
    // golden (results/conformance_expected.csv) relative to the cwd.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    Command::new(env!("CARGO_BIN_EXE_awg-repro"))
        .args(args)
        .current_dir(root)
        .output()
        .expect("binary runs")
}

/// Runs a campaign subcommand at quick scale and compares (or blesses) the
/// CSV it writes against a committed golden.
fn campaign_csv_matches(subcommand: &str, csv_name: &str, golden_name: &str) {
    let out_dir = temp_dir(subcommand);
    let out = awg_repro(&[
        "--quick",
        "--jobs",
        "1",
        subcommand,
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{subcommand}: {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let produced = std::fs::read(out_dir.join(csv_name)).unwrap();
    let golden_path = golden_dir().join(golden_name);
    if blessing() {
        std::fs::write(&golden_path, &produced).unwrap();
    } else {
        let golden = std::fs::read(&golden_path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden_path.display()));
        assert_eq!(
            produced, golden,
            "{subcommand}: {csv_name} is no longer byte-identical to the heap engine's output"
        );
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn fig5_csv_is_byte_identical_to_the_heap_engine() {
    campaign_csv_matches("fig5", "fig5.csv", "fig5_quick.csv");
}

#[test]
fn chaos_matrix_csv_is_byte_identical_to_the_heap_engine() {
    campaign_csv_matches("chaos", "chaos.csv", "chaos_quick.csv");
}

#[test]
fn conformance_matrix_matches_the_committed_golden() {
    let out_dir = temp_dir("conformance");
    let out = awg_repro(&[
        "conformance",
        "--count",
        "8",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "conformance matrix diverged from results/conformance_expected.csv:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&out_dir).ok();
}
