//! The conformance matrix's determinism contract, in process: the CSV is
//! byte-identical at any pool width and across a killed-and-resumed
//! journaled campaign.

use std::path::PathBuf;

use awg_harness::conformance::{run_supervised, ConformanceConfig, DEFAULT_GEN_SEED};
use awg_harness::pool::Pool;
use awg_harness::supervisor::{JobLimits, Supervisor};
use awg_harness::Scale;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "awg-conf-determinism-{tag}-{}.jsonl",
        std::process::id()
    ))
}

fn small() -> ConformanceConfig {
    ConformanceConfig {
        count: 2,
        gen_seed: DEFAULT_GEN_SEED,
    }
}

#[test]
fn matrix_is_byte_identical_across_pool_widths() {
    let scale = Scale::quick();
    let serial = run_supervised(&scale, &small(), &Supervisor::bare(Pool::serial()));
    assert_eq!(serial.failures, 0, "{:?}", serial.matrix.to_csv());
    let wide = run_supervised(&scale, &small(), &Supervisor::bare(Pool::new(8)));
    assert_eq!(wide.failures, 0);
    assert_eq!(
        serial.matrix.to_csv(),
        wide.matrix.to_csv(),
        "matrix must not depend on worker count"
    );
    assert_eq!(serial.report.to_csv(), wide.report.to_csv());
}

#[test]
fn killed_campaign_resumes_to_the_same_matrix() {
    let scale = Scale::quick();
    let uninterrupted = run_supervised(&scale, &small(), &Supervisor::bare(Pool::serial()));
    let expected = uninterrupted.matrix.to_csv();

    // One full journaled run stands in for the campaign we "kill": a
    // prefix of its journal is exactly the state a real kill leaves.
    let full = temp_path("full");
    let sup = Supervisor::with_journal(
        Pool::serial(),
        JobLimits::default(),
        &full,
        false,
        "awg-repro --quick --resume J conformance",
    )
    .unwrap();
    let journaled = run_supervised(&scale, &small(), &sup);
    drop(sup);
    assert_eq!(journaled.matrix.to_csv(), expected);

    let text = std::fs::read_to_string(&full).unwrap();
    let mut lines = text.lines();
    let header = lines.next().expect("journal has a header").to_owned();
    let records: Vec<String> = lines.map(str::to_owned).collect();
    assert!(records.len() > 10, "one record per matrix cell");

    let part = temp_path("part");
    for keep in [1, records.len() / 2, records.len() - 1] {
        let mut prefix = format!("{header}\n");
        for record in &records[..keep] {
            prefix.push_str(record);
            prefix.push('\n');
        }
        std::fs::write(&part, prefix).unwrap();

        let sup = Supervisor::with_journal(
            Pool::new(4),
            JobLimits::default(),
            &part,
            true,
            "awg-repro --quick --resume J conformance",
        )
        .unwrap();
        let resumed = run_supervised(&scale, &small(), &sup);
        assert_eq!(resumed.matrix.to_csv(), expected, "kill point {keep}");
        assert_eq!(resumed.failures, 0, "kill point {keep}");
        assert_eq!(sup.resumed_jobs(), keep, "kill point {keep}");
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&part).ok();
}
