//! The supervisor's headline guarantees, end to end: a campaign killed at
//! any journal length resumes to a byte-identical report, a torn journal
//! tail is tolerated, and a wedged job becomes a typed `JobTimeout` row
//! while the rest of the campaign completes.

use std::path::PathBuf;
use std::time::Duration;

use awg_core::policies::PolicyKind;
use awg_gpu::{CancelCause, SimError};
use awg_harness::pool::Pool;
use awg_harness::run::ExperimentConfig;
use awg_harness::supervisor::{job_digest, sim_job, JobCtl, JobLimits, Supervisor};
use awg_harness::{chaos, fig05, Scale};
use awg_workloads::BenchmarkKind;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("awg-resume-{tag}-{}.jsonl", std::process::id()))
}

/// Splits a journal into its header line and record lines.
fn journal_lines(text: &str) -> (String, Vec<String>) {
    let mut lines = text.lines().map(str::to_owned);
    let header = lines.next().expect("journal has a header");
    (header, lines.collect())
}

/// Writes `header` plus the first `keep` records — the on-disk state after
/// a kill that landed between record `keep` and record `keep + 1`.
fn write_prefix(path: &PathBuf, header: &str, records: &[String], keep: usize) {
    let mut text = format!("{header}\n");
    for record in &records[..keep] {
        text.push_str(record);
        text.push('\n');
    }
    std::fs::write(path, text).unwrap();
}

#[test]
fn fig05_resumes_byte_identical_from_any_kill_point() {
    let scale = Scale::quick();
    let uninterrupted = fig05::run_supervised(&scale, &Supervisor::bare(Pool::serial())).to_csv();

    // One full journaled run stands in for the campaign we are about to
    // "kill": every prefix of its journal is a state a real kill could
    // have left behind.
    let full = temp_path("fig05-full");
    let sup = Supervisor::with_journal(
        Pool::serial(),
        JobLimits::default(),
        &full,
        false,
        "awg-repro --quick --resume J fig5",
    )
    .unwrap();
    let journaled = fig05::run_supervised(&scale, &sup).to_csv();
    drop(sup);
    assert_eq!(journaled, uninterrupted);
    let text = std::fs::read_to_string(&full).unwrap();
    let (header, records) = journal_lines(&text);
    assert_eq!(records.len(), BenchmarkKind::all().len());

    let part = temp_path("fig05-part");
    for keep in [0, 1, records.len() / 2, records.len() - 1, records.len()] {
        write_prefix(&part, &header, &records, keep);
        let sup = Supervisor::with_journal(
            Pool::serial(),
            JobLimits::default(),
            &part,
            true,
            "awg-repro --quick --resume J fig5",
        )
        .unwrap();
        let resumed = fig05::run_supervised(&scale, &sup).to_csv();
        assert_eq!(resumed, uninterrupted, "kill point {keep}");
        assert_eq!(sup.resumed_jobs(), keep, "kill point {keep}");
        assert_eq!(sup.incomplete(), 0);
        drop(sup);
        // The resumed journal is complete again: a second resume serves
        // every job from it.
        let (_, records_after) = journal_lines(&std::fs::read_to_string(&part).unwrap());
        assert_eq!(records_after.len(), records.len(), "kill point {keep}");
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&part).ok();
}

#[test]
fn chaos_matrix_resumes_byte_identical_mid_campaign() {
    let scale = Scale::quick();
    let (clean, v_clean, _) =
        chaos::run_checked_supervised(&scale, &[101], &Supervisor::bare(Pool::serial()));
    let uninterrupted = clean.to_csv();

    let full = temp_path("chaos-full");
    let sup = Supervisor::with_journal(
        Pool::serial(),
        JobLimits::default(),
        &full,
        false,
        "awg-repro --quick --resume J chaos",
    )
    .unwrap();
    let (journaled, v_journaled, _) = chaos::run_checked_supervised(&scale, &[101], &sup);
    drop(sup);
    assert_eq!(journaled.to_csv(), uninterrupted);
    assert_eq!(v_journaled, v_clean);

    let text = std::fs::read_to_string(&full).unwrap();
    let (header, records) = journal_lines(&text);
    assert!(records.len() > 2, "chaos journals one record per run");

    let part = temp_path("chaos-part");
    for keep in [1, records.len() / 2] {
        write_prefix(&part, &header, &records, keep);
        let sup = Supervisor::with_journal(
            Pool::serial(),
            JobLimits::default(),
            &part,
            true,
            "awg-repro --quick --resume J chaos",
        )
        .unwrap();
        let (resumed, v_resumed, _) = chaos::run_checked_supervised(&scale, &[101], &sup);
        assert_eq!(resumed.to_csv(), uninterrupted, "kill point {keep}");
        assert_eq!(v_resumed, v_clean);
        assert_eq!(sup.resumed_jobs(), keep, "kill point {keep}");
    }
    std::fs::remove_file(&full).ok();
    std::fs::remove_file(&part).ok();
}

#[test]
fn torn_journal_tail_is_discarded_and_rewritten() {
    let scale = Scale::quick();
    let uninterrupted = fig05::run_supervised(&scale, &Supervisor::bare(Pool::serial())).to_csv();

    let path = temp_path("torn");
    let sup = Supervisor::with_journal(Pool::serial(), JobLimits::default(), &path, false, "cmd")
        .unwrap();
    fig05::run_supervised(&scale, &sup);
    drop(sup);

    // A kill mid-write leaves half a record and no newline at the tail.
    let text = std::fs::read_to_string(&path).unwrap();
    let (header, records) = journal_lines(&text);
    let mut torn = format!("{header}\n");
    for record in &records[..records.len() - 1] {
        torn.push_str(record);
        torn.push('\n');
    }
    let last = records.last().unwrap();
    torn.push_str(&last[..last.len() / 2]);
    std::fs::write(&path, torn).unwrap();

    let sup =
        Supervisor::with_journal(Pool::serial(), JobLimits::default(), &path, true, "cmd").unwrap();
    let resumed = fig05::run_supervised(&scale, &sup).to_csv();
    assert_eq!(resumed, uninterrupted);
    assert_eq!(sup.resumed_jobs(), records.len() - 1);
    drop(sup);
    std::fs::remove_file(&path).ok();
}

/// The issue's acceptance scenario: a deliberately wedged job (Baseline
/// spinning under oversubscription, cancelled long before the quiescence
/// detector would fire) converts into a typed `JobTimeout` row within its
/// budget while the rest of the campaign completes, and the supervisor
/// reports the campaign as partial.
#[test]
fn wedged_job_becomes_a_timeout_row_while_the_rest_completes() {
    let scale = Scale::quick();
    // Calibrate: how long does the healthy arm take uncancelled? The
    // budget must sit above that but below the quiescence detector, so
    // the wedged Baseline arm is cancelled while it is still spinning.
    let healthy = |ctl: &JobCtl| {
        ctl.run_experiment(
            BenchmarkKind::FaMutexGlobal,
            PolicyKind::Awg,
            &scale,
            ExperimentConfig::Oversubscribed,
        )
    };
    let probe = Supervisor::bare(Pool::serial());
    let probe_out = probe.run(vec![sim_job("calibrate", 0, healthy)]);
    let healthy_cycles = probe_out[0]
        .result
        .as_ref()
        .unwrap()
        .cycles()
        .expect("healthy arm completes");
    let budget = (healthy_cycles * 3).min(scale.gpu.quiescence_cycles / 2);
    assert!(
        healthy_cycles < budget,
        "quick-scale healthy run ({healthy_cycles}) must fit the budget ({budget})"
    );

    let limits = JobLimits {
        cycle_budget: Some(budget),
        max_attempts: 1,
        ..JobLimits::default()
    };
    let sup = Supervisor::new(Pool::serial(), limits);
    let jobs = vec![
        sim_job("resilience/healthy", 1, healthy),
        sim_job("resilience/wedged", 2, |ctl: &JobCtl| {
            ctl.run_experiment(
                BenchmarkKind::FaMutexGlobal,
                PolicyKind::Baseline,
                &scale,
                ExperimentConfig::Oversubscribed,
            )
        }),
    ];
    let outputs = sup.run(jobs);
    assert_eq!(outputs.len(), 2);
    let ok = outputs[0].result.as_ref().unwrap();
    assert_eq!(
        ok.cycles(),
        Some(healthy_cycles),
        "healthy jobs must complete alongside the wedge"
    );
    match outputs[1].result.as_ref().unwrap_err() {
        SimError::JobTimeout { job, at, cause } => {
            assert_eq!(job, "resilience/wedged");
            assert_eq!(*cause, CancelCause::CycleBudget(budget));
            assert!(
                *at < scale.gpu.quiescence_cycles,
                "cancelled before quiescence, got {at}"
            );
        }
        other => panic!("expected JobTimeout, got {other:?}"),
    }
    assert_eq!(sup.incomplete(), 1, "campaign must be marked partial");
}

#[test]
fn wall_deadline_converts_a_wedge_to_a_typed_row() {
    let scale = Scale::quick();
    let limits = JobLimits {
        deadline: Some(Duration::from_nanos(1)),
        max_attempts: 1,
        ..JobLimits::default()
    };
    let sup = Supervisor::new(Pool::serial(), limits);
    let jobs = vec![sim_job(
        "resilience/deadline",
        job_digest("resilience/deadline", &scale, &[]),
        |ctl: &JobCtl| {
            ctl.run_experiment(
                BenchmarkKind::FaMutexGlobal,
                PolicyKind::Baseline,
                &scale,
                ExperimentConfig::Oversubscribed,
            )
        },
    )];
    let outputs = sup.run(jobs);
    match outputs[0].result.as_ref().unwrap_err() {
        SimError::JobTimeout { cause, .. } => {
            assert_eq!(*cause, CancelCause::WallDeadline(Duration::from_nanos(1)));
        }
        other => panic!("expected JobTimeout, got {other:?}"),
    }
    assert_eq!(sup.incomplete(), 1);
}
