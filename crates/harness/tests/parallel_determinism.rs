//! The parallel sweep engine's headline guarantee: `--jobs N` changes
//! wall-clock, never bytes. Campaign CSVs, digest trails, and oracle
//! verdicts are identical at any concurrency, and a panicking job becomes
//! a typed row instead of a dead campaign.

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::SimError;
use awg_harness::pool::{self, Pool};
use awg_harness::run::{run_instrumented, ExperimentConfig, Instrumentation};
use awg_harness::supervisor::Supervisor;
use awg_harness::{chaos, fig05, Scale};
use awg_workloads::BenchmarkKind;

#[test]
fn fig05_csv_is_byte_identical_across_jobs() {
    let scale = Scale::quick();
    let serial = fig05::run_supervised(&scale, &Supervisor::bare(Pool::new(1)));
    let parallel = fig05::run_supervised(&scale, &Supervisor::bare(Pool::new(8)));
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
}

#[test]
fn chaos_matrix_is_byte_identical_across_jobs() {
    let scale = Scale::quick();
    let (serial, v_serial, _) =
        chaos::run_checked_supervised(&scale, &[101], &Supervisor::bare(Pool::serial()));
    let (parallel, v_parallel, _) =
        chaos::run_checked_supervised(&scale, &[101], &Supervisor::bare(Pool::new(8)));
    assert_eq!(v_serial, v_parallel);
    // Cells *and* notes: the differential harness's forensic notes must
    // also merge in enumeration order.
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_markdown(), parallel.to_markdown());
}

#[test]
fn panicking_job_yields_typed_row_without_aborting_the_campaign() {
    let pool = Pool::new(4);
    let outputs = pool.run(vec![
        pool::job("campaign/ok-0", || 1u64),
        pool::job("campaign/bad", || panic!("deliberate campaign panic")),
        pool::job("campaign/ok-1", || 2u64),
    ]);
    assert_eq!(outputs.len(), 3, "campaign must not abort");
    assert_eq!(*outputs[0].result.as_ref().unwrap(), 1);
    assert_eq!(*outputs[2].result.as_ref().unwrap(), 2);
    let err = outputs[1].result.as_ref().unwrap_err();
    match err {
        SimError::JobPanic { job, message } => {
            assert_eq!(job, "campaign/bad");
            assert!(message.contains("deliberate campaign panic"));
        }
        other => panic!("expected JobPanic, got {other:?}"),
    }
    // And the typed error renders as a report cell a reader can act on.
    let cell = pool::error_cell(err);
    let rendered = format!("{cell:?}");
    assert!(rendered.contains("panicked"), "{rendered}");
}

#[test]
fn digest_trail_is_identical_inside_and_outside_the_pool() {
    let scale = Scale::quick();
    let run = |policy: PolicyKind| {
        run_instrumented(
            BenchmarkKind::FaMutexGlobal,
            policy,
            build_policy(policy),
            &scale,
            ExperimentConfig::NonOversubscribed,
            None,
            Instrumentation::checked(),
        )
    };
    let direct = run(PolicyKind::Awg);
    let outputs = Pool::new(4).run(vec![
        pool::job("trail/awg", move || run(PolicyKind::Awg)),
        pool::job("trail/baseline", move || run(PolicyKind::Baseline)),
    ]);
    let pooled = outputs[0].result.as_ref().unwrap();
    assert!(!direct.digest_trail.is_empty(), "checked run must digest");
    assert_eq!(direct.digest_trail, pooled.digest_trail);
    assert!(pooled.violations.is_empty(), "{:?}", pooled.violations);
    assert_eq!(direct.cycles(), pooled.cycles());
}
