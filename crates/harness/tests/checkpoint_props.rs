//! Snapshot codec properties, driven through the full restore pipeline
//! (`read_checkpoint` *and* `restore_into`, since the header cycle field
//! is only cross-checked against the decoded machine at restore time):
//!
//! * encode → decode → restore → encode is a byte-level fixed point;
//! * a snapshot truncated at any sampled offset fails closed with
//!   [`SimError::CorruptCheckpoint`];
//! * a snapshot with any single bit flipped fails closed the same way.
//!
//! The snapshot is ~190 KiB, so the truncation scan is stratified rather
//! than exhaustive: every offset in the header-and-early-section region,
//! a prime stride across the body, and the final bytes where a torn tail
//! is most likely in practice. The bit-flip property samples the rest of
//! the space randomly, and a deterministic loop covers all 128 bits of
//! the identity and cycle header fields — the only bytes outside the
//! CRC-framed section.

use std::path::PathBuf;
use std::sync::OnceLock;

use awg_core::policies::{build_policy, PolicyKind};
use awg_gpu::{read_checkpoint, restore_into, write_checkpoint, SimError, Watchdog};
use awg_harness::run::{prepare_machine, ExperimentConfig, Instrumentation};
use awg_harness::Scale;
use awg_workloads::BenchmarkKind;
use proptest::prelude::*;

/// Arbitrary but fixed run identity shared by writer and restorer.
const IDENTITY: u64 = 0x1DEA_F00D_CAFE_0007;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("awg-ckpt-props-{name}-{}", std::process::id()))
}

fn build(scale: &Scale, watchdog: Option<Watchdog>) -> awg_gpu::Gpu {
    let (_built, gpu) = prepare_machine(
        BenchmarkKind::SpinMutexGlobal,
        build_policy(PolicyKind::Awg),
        scale,
        ExperimentConfig::NonOversubscribed,
        None,
        Instrumentation::checked(),
        watchdog,
    );
    gpu
}

/// A machine stopped mid-run by a cycle budget: rich with in-flight
/// waiters, monitor state, and partially-run work-groups.
fn mid_run_machine(scale: &Scale, budget: u64) -> awg_gpu::Gpu {
    let mut gpu = build(scale, Some(Watchdog::new(None, Some(budget))));
    let outcome = gpu.run();
    assert!(
        outcome.cancelled().is_some(),
        "budget {budget} must stop the run mid-flight, got {outcome:?}"
    );
    gpu
}

/// One canonical mid-run snapshot, encoded once and shared by the
/// corruption tests (building machines per proptest case is cheap;
/// re-running the simulation per case is not).
fn base_snapshot() -> &'static (Scale, Vec<u8>) {
    static BASE: OnceLock<(Scale, Vec<u8>)> = OnceLock::new();
    BASE.get_or_init(|| {
        let scale = Scale::quick();
        let gpu = mid_run_machine(&scale, 4_000);
        let path = tmp("base");
        write_checkpoint(&gpu, IDENTITY, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        (scale, bytes)
    })
}

/// The full restore pipeline a real resume goes through.
fn restore_pipeline(scale: &Scale, bytes: &[u8], tag: &str) -> Result<(), SimError> {
    let path = tmp(tag);
    std::fs::write(&path, bytes).unwrap();
    let verdict = read_checkpoint(&path).and_then(|image| {
        let mut fresh = build(scale, None);
        restore_into(&mut fresh, &image, IDENTITY)
    });
    std::fs::remove_file(&path).ok();
    verdict
}

#[test]
fn encode_decode_restore_encode_is_a_fixed_point() {
    let scale = Scale::quick();
    // Several stop points, including a fresh (never-run) machine and one
    // past several snapshot boundaries.
    for (tag, gpu) in [
        ("fp-fresh", build(&scale, None)),
        ("fp-early", mid_run_machine(&scale, 1_500)),
        ("fp-mid", mid_run_machine(&scale, 7_000)),
        ("fp-late", mid_run_machine(&scale, 15_000)),
    ] {
        let first = tmp(&format!("{tag}-1"));
        let second = tmp(&format!("{tag}-2"));
        write_checkpoint(&gpu, IDENTITY, &first).unwrap();
        let image = read_checkpoint(&first).unwrap();
        let mut fresh = build(&scale, None);
        restore_into(&mut fresh, &image, IDENTITY).unwrap();
        write_checkpoint(&fresh, IDENTITY, &second).unwrap();
        let a = std::fs::read(&first).unwrap();
        let b = std::fs::read(&second).unwrap();
        assert_eq!(
            a, b,
            "{tag}: restored machine must re-encode byte-identically"
        );
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }
}

#[test]
fn truncation_at_sampled_offsets_fails_closed() {
    let (scale, bytes) = base_snapshot();
    assert!(bytes.len() > 8_192, "snapshot unexpectedly small");
    // Dense over the header and early section, prime stride across the
    // body, dense over the tail.
    let mut cuts: Vec<usize> = (0..4_096).collect();
    cuts.extend((4_096..bytes.len()).step_by(509));
    cuts.extend(bytes.len() - 64..bytes.len());
    for cut in cuts {
        let verdict = restore_pipeline(scale, &bytes[..cut], "trunc");
        assert!(
            matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
            "truncation at byte {cut}/{} must fail closed, got {verdict:?}",
            bytes.len()
        );
    }
}

#[test]
fn every_header_identity_and_cycle_bit_is_checked() {
    let (scale, bytes) = base_snapshot();
    // Identity lives at bytes 12..20 and the cycle at 20..28; neither is
    // inside the CRC-framed section, so each depends on its own explicit
    // cross-check at restore time.
    for byte in 12..28 {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 1 << bit;
            let verdict = restore_pipeline(scale, &flipped, "hdrflip");
            assert!(
                matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
                "flip of header byte {byte} bit {bit} must fail closed, got {verdict:?}"
            );
        }
    }
}

/// The calendar-queue regimes the other properties must actually cover:
/// a mid-run machine carries far-future events in the overflow tier
/// (quiescence checks and wait timeouts land well beyond the 4096-cycle
/// wheel horizon) and free-list holes in the event arena (slots recycled
/// by normal pop churn). Asserting both here guarantees the fixed-point
/// and corruption scans above are exercising snapshots of that shape —
/// not just a tidy all-on-the-wheel calendar.
#[test]
fn snapshots_cover_overflow_tier_and_arena_holes() {
    let scale = Scale::quick();
    let gpu = mid_run_machine(&scale, 4_000);
    let (pending, overflow, holes) = gpu.calendar_stats();
    assert!(pending > 0, "mid-run machine must have events in flight");
    assert!(
        overflow > 0,
        "mid-run machine must hold far-future events in the overflow tier \
         ({pending} pending, {overflow} overflow)"
    );
    assert!(
        holes > 0,
        "pop churn must leave recycled slots on the arena free list"
    );

    // The snapshot of exactly this machine round-trips to a byte-level
    // fixed point: the wire format is the sorted (cycle, seq, event) list,
    // independent of wheel/overflow placement or arena layout.
    let first = tmp("overflow-1");
    let second = tmp("overflow-2");
    write_checkpoint(&gpu, IDENTITY, &first).unwrap();
    let image = read_checkpoint(&first).unwrap();
    let mut fresh = build(&scale, None);
    restore_into(&mut fresh, &image, IDENTITY).unwrap();

    // Restore rebases the wheel horizon on the earliest pending event, so
    // arena layout may legally differ — but the set of pending events and
    // the architectural digest must not.
    let (r_pending, _r_overflow, _r_holes) = fresh.calendar_stats();
    assert_eq!(pending, r_pending, "restore must preserve the event count");
    assert_eq!(gpu.digest(), fresh.digest(), "restore changed the state");

    write_checkpoint(&fresh, IDENTITY, &second).unwrap();
    let a = std::fs::read(&first).unwrap();
    let b = std::fs::read(&second).unwrap();
    assert_eq!(a, b, "overflow-rich snapshot must re-encode identically");

    // And corruption of this snapshot fails closed like any other: sample
    // a stride of truncations plus a stride of bit flips.
    for cut in (0..a.len()).step_by(4099) {
        let verdict = restore_pipeline(&scale, &a[..cut], "ovf-trunc");
        assert!(
            matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
            "truncation at byte {cut}/{} must fail closed, got {verdict:?}",
            a.len()
        );
    }
    for byte in (0..a.len()).step_by(2053) {
        let mut flipped = a.clone();
        flipped[byte] ^= 0x10;
        let verdict = restore_pipeline(&scale, &flipped, "ovf-flip");
        assert!(
            matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
            "flip of byte {byte} must fail closed, got {verdict:?}"
        );
    }
    std::fs::remove_file(&first).ok();
    std::fs::remove_file(&second).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_single_bitflip_fails_closed(pos in 0u64..u64::MAX, bit in 0u32..8) {
        let (scale, bytes) = base_snapshot();
        let mut flipped = bytes.clone();
        let byte = (pos % flipped.len() as u64) as usize;
        flipped[byte] ^= 1 << bit;
        let verdict = restore_pipeline(scale, &flipped, "bitflip");
        prop_assert!(
            matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
            "flip of byte {} bit {} must fail closed, got {:?}",
            byte, bit, verdict
        );
    }

    #[test]
    fn random_truncation_fails_closed(pos in 0u64..u64::MAX) {
        let (scale, bytes) = base_snapshot();
        let cut = (pos % bytes.len() as u64) as usize;
        let verdict = restore_pipeline(scale, &bytes[..cut], "randtrunc");
        prop_assert!(
            matches!(verdict, Err(SimError::CorruptCheckpoint(_))),
            "truncation at byte {} must fail closed, got {:?}",
            cut, verdict
        );
    }
}
