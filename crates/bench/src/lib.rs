//! Shared helpers for the Criterion benchmarks that regenerate the paper's
//! tables and figures.
//!
//! Each bench target corresponds to one table/figure. On start-up it prints
//! the full quick-scale report (so `cargo bench` output contains the
//! regenerated rows), then measures representative simulator runs so the
//! figure's cost is tracked over time.

#![forbid(unsafe_code)]

use awg_core::policies::PolicyKind;
use awg_harness::{run_experiment, ExpResult, ExperimentConfig, Report, Scale};
use awg_workloads::BenchmarkKind;

/// The scale all benches run at.
pub fn bench_scale() -> Scale {
    Scale::quick()
}

/// Prints a regenerated report ahead of the measurements.
pub fn print_report(report: &Report) {
    println!("{}", report.to_markdown());
}

/// One simulator run at bench scale (panics on deadlock so regressions in
/// forward progress fail the bench loudly).
pub fn run_one(kind: BenchmarkKind, policy: PolicyKind, config: ExperimentConfig) -> ExpResult {
    let r = run_experiment(kind, policy, &bench_scale(), config);
    assert!(
        r.outcome.is_completed() || matches!(policy, PolicyKind::Baseline | PolicyKind::Sleep),
        "{kind} under {} did not complete: {:?}",
        policy.label(),
        r.outcome
    );
    r
}

/// A criterion main that prints `report` once, then runs the registered
/// groups.
#[macro_export]
macro_rules! bench_main_with_report {
    ($report:expr, $($group:ident),+ $(,)?) => {
        fn main() {
            $crate::print_report(&$report);
            let mut criterion = criterion::Criterion::default()
                .sample_size(10)
                .configure_from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}
