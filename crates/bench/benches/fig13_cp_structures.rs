//! Fig 13: CP data-structure sizing (analytic model cost).

use awg_bench::{bench_main_with_report, bench_scale};
use awg_harness::fig13;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig13_analytic_model", |b| {
        b.iter(|| std::hint::black_box(fig13::run(&scale)))
    });
}

bench_main_with_report!(fig13::run(&bench_scale()), bench);
