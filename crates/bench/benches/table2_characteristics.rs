//! Table 2: benchmark characteristics (symbolic evaluation cost).

use awg_bench::{bench_main_with_report, bench_scale};
use awg_harness::table2;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table2_render", |b| {
        b.iter(|| std::hint::black_box(table2::run(&scale)))
    });
}

bench_main_with_report!(table2::run(&bench_scale()), bench);
