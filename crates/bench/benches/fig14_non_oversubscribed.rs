//! Fig 14: the headline comparison — measures Baseline vs AWG on the
//! centralized ticket lock (the 12x case).

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig14, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    for (name, policy) in [
        ("baseline", PolicyKind::Baseline),
        ("monnr_one", PolicyKind::MonNrOne),
        ("awg", PolicyKind::Awg),
    ] {
        c.bench_function(&format!("fig14_fam_g_{name}"), |b| {
            b.iter(|| {
                run_one(
                    BenchmarkKind::FaMutexGlobal,
                    policy,
                    ExperimentConfig::NonOversubscribed,
                )
            })
        });
    }
}

bench_main_with_report!(fig14::run(&bench_scale()), bench);
