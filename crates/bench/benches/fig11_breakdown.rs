//! Fig 11: execution break-down — measures the three compared policies on
//! a mutex and a barrier.

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig11, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    for (name, policy) in [
        ("timeout", PolicyKind::Timeout),
        ("monnr_all", PolicyKind::MonNrAll),
        ("monnr_one", PolicyKind::MonNrOne),
    ] {
        c.bench_function(&format!("fig11_tb_lg_{name}"), |b| {
            b.iter(|| {
                run_one(
                    BenchmarkKind::TreeBarrier,
                    policy,
                    ExperimentConfig::NonOversubscribed,
                )
            })
        });
    }
}

bench_main_with_report!(fig11::run(&bench_scale()), bench);
