//! Fig 15: the oversubscribed scenario — measures AWG and Timeout across
//! the CU-loss event, plus the Baseline's deadlock detection.

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig15, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    for (name, policy) in [("timeout", PolicyKind::Timeout), ("awg", PolicyKind::Awg)] {
        c.bench_function(&format!("fig15_fam_g_{name}"), |b| {
            b.iter(|| {
                run_one(
                    BenchmarkKind::FaMutexGlobal,
                    policy,
                    ExperimentConfig::Oversubscribed,
                )
            })
        });
    }
    c.bench_function("fig15_fam_g_baseline_deadlock_detect", |b| {
        b.iter(|| {
            let r = run_one(
                BenchmarkKind::FaMutexGlobal,
                PolicyKind::Baseline,
                ExperimentConfig::Oversubscribed,
            );
            assert!(r.deadlocked());
            r
        })
    });
}

bench_main_with_report!(fig15::run(&bench_scale()), bench);
