//! Fig 9: wait efficiency — measures the sporadic-vs-checked monitors and
//! the oracle on the hot centralized lock.

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig09, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    for (name, policy) in [
        ("monrs_all", PolicyKind::MonRsAll),
        ("monr_all", PolicyKind::MonRAll),
        ("monnr_all", PolicyKind::MonNrAll),
        ("minresume", PolicyKind::MinResume),
    ] {
        c.bench_function(&format!("fig09_fam_g_{name}"), |b| {
            b.iter(|| {
                run_one(
                    BenchmarkKind::FaMutexGlobal,
                    policy,
                    ExperimentConfig::NonOversubscribed,
                )
            })
        });
    }
}

bench_main_with_report!(fig09::run(&bench_scale()), bench);
