//! Fig 7: exponential backoff sweep — measures one representative
//! Sleep-16k simulation per iteration.

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig07, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    c.bench_function("fig07_spm_g_sleep16k", |b| {
        b.iter(|| {
            run_one(
                BenchmarkKind::SpinMutexGlobal,
                PolicyKind::SleepMax(16_000),
                ExperimentConfig::NonOversubscribed,
            )
        })
    });
    c.bench_function("fig07_fam_g_sleep1k", |b| {
        b.iter(|| {
            run_one(
                BenchmarkKind::FaMutexGlobal,
                PolicyKind::SleepMax(1_000),
                ExperimentConfig::NonOversubscribed,
            )
        })
    });
}

bench_main_with_report!(fig07::run(&bench_scale()), bench);
