//! Fig 5: context-size model.

use awg_bench::{bench_main_with_report, bench_scale};
use awg_harness::fig05;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("fig05_context_model", |b| {
        b.iter(|| std::hint::black_box(fig05::run(&scale)))
    });
}

bench_main_with_report!(fig05::run(&bench_scale()), bench);
