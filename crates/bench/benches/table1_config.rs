//! Table 1: machine-configuration report (construction cost).

use awg_bench::{bench_main_with_report, bench_scale};
use awg_harness::table1;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    c.bench_function("table1_render", |b| {
        b.iter(|| std::hint::black_box(table1::run(&scale)))
    });
}

bench_main_with_report!(table1::run(&bench_scale()), bench);
