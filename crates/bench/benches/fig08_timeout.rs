//! Fig 8: timeout-interval sweep — measures representative Timeout runs.

use awg_bench::{bench_main_with_report, bench_scale, run_one};
use awg_core::policies::PolicyKind;
use awg_harness::{fig08, ExperimentConfig};
use awg_workloads::BenchmarkKind;
use criterion::Criterion;

fn bench(c: &mut Criterion) {
    for interval in [10_000u64, 100_000] {
        c.bench_function(&format!("fig08_spm_g_timeout{}k", interval / 1000), |b| {
            b.iter(|| {
                run_one(
                    BenchmarkKind::SpinMutexGlobal,
                    PolicyKind::TimeoutInterval(interval),
                    ExperimentConfig::NonOversubscribed,
                )
            })
        });
    }
}

bench_main_with_report!(fig08::run(&bench_scale()), bench);
