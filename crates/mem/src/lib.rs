//! Memory-hierarchy substrate for the AWG GPU simulator.
//!
//! The paper's baseline (Table 1) is a tightly-coupled APU with write-through
//! GPU L1 caches, a shared, banked 512 KB L2 where **all atomics are
//! performed** (§V.A: "AWG relies on current GPU abilities to perform atomic
//! operations at its last level cache"), and a 4-channel DDR3 DRAM. This
//! crate models exactly those pieces:
//!
//! * [`AddressSpace`] — a bump allocator laying out sync variables and data
//!   structures in the simulated global address space,
//! * [`Backing`] — the value store (word-addressed `i64` global memory),
//! * [`atomic`] — atomic-operation semantics, including the *waiting atomic*
//!   comparison the paper adds (§IV.D),
//! * [`Cache`] — set-associative LRU caches with the per-tag *monitored* and
//!   *pinned* bits AWG adds to the L2 (§V.B),
//! * [`L2`] — the banked last-level cache with an atomic ALU per bank and
//!   bank-occupancy queuing (this is where synchronization contention
//!   becomes visible in time),
//! * [`Dram`] — the channel-interleaved memory backend.
//!
//! Timing is computed, not executed: components answer "at what cycle does
//! this access complete?", and the GPU core (crate `awg-gpu`) schedules
//! events accordingly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod atomic;
pub mod backing;
pub mod cache;
pub mod dram;
pub mod l2;

pub use addr::{Addr, AddressSpace, LINE_BYTES, WORD_BYTES};
pub use atomic::{AtomicOp, AtomicRequest, AtomicResult};
pub use backing::Backing;
pub use cache::{AccessOutcome, Cache, CacheConfig};
pub use dram::{Dram, DramConfig};
pub use l2::{L2Config, L2};
