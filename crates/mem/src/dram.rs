//! Channel-interleaved DRAM model.
//!
//! Table 1: DDR3, 4 channels, 1 GHz (half the 2 GHz core clock). We model a
//! fixed access latency plus per-channel bandwidth: each channel services one
//! 64 B line per `service_interval` core cycles, so bursts of misses and
//! context-switch traffic queue up realistically.

use awg_sim::{CodecError, Cycle, Dec, Enc};

use crate::addr::{Addr, LINE_BYTES};

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (lines are channel-interleaved).
    pub channels: usize,
    /// Idle access latency in core cycles.
    pub latency: Cycle,
    /// Core cycles a channel is occupied per line transferred.
    pub service_interval: Cycle,
}

impl DramConfig {
    /// Table 1: DDR3, 4 channels @ 1 GHz. An idle access costs ~100 core
    /// cycles (50 ns at 2 GHz), and a channel moves one 64 B line every
    /// 16 core cycles (8 GB/s/channel at 2 GHz — DDR3-2000-class bandwidth).
    pub fn isca2020() -> Self {
        DramConfig {
            channels: 4,
            latency: 100,
            service_interval: 16,
        }
    }
}

/// The DRAM backend: answers "when does this line access complete?".
///
/// # Example
///
/// ```
/// use awg_mem::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::isca2020());
/// let done = dram.access(0, 0);
/// assert_eq!(done, 100); // idle latency
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    channel_free: Vec<Cycle>,
    accesses: u64,
    total_queue_cycles: u64,
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "need at least one channel");
        Dram {
            config,
            channel_free: vec![0; config.channels],
            accesses: 0,
            total_queue_cycles: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    #[inline]
    fn channel_of(&self, addr: Addr) -> usize {
        ((addr / LINE_BYTES) as usize) % self.config.channels
    }

    /// Issues a line access at cycle `now`; returns its completion cycle.
    /// The owning channel is occupied for `service_interval` cycles.
    pub fn access(&mut self, now: Cycle, addr: Addr) -> Cycle {
        let ch = self.channel_of(addr);
        let start = now.max(self.channel_free[ch]);
        self.total_queue_cycles += start - now;
        self.channel_free[ch] = start + self.config.service_interval;
        self.accesses += 1;
        start + self.config.latency
    }

    /// Issues a burst of `lines` consecutive line accesses starting at
    /// `base` (context save/restore traffic); returns the cycle when the
    /// last line completes.
    pub fn access_burst(&mut self, now: Cycle, base: Addr, lines: u64) -> Cycle {
        let mut done = now;
        for i in 0..lines {
            done = done.max(self.access(now, base + i * LINE_BYTES));
        }
        done
    }

    /// `(total accesses, total cycles spent queued)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.accesses, self.total_queue_cycles)
    }

    /// Serializes the mutable channel state and counters. The configuration
    /// is identity: [`Dram::load`] overlays onto a same-config instance.
    pub fn save(&self, enc: &mut Enc) {
        enc.usize(self.channel_free.len());
        for &c in &self.channel_free {
            enc.u64(c);
        }
        enc.u64(self.accesses);
        enc.u64(self.total_queue_cycles);
    }

    /// Overlays state written by [`Dram::save`]. Fails on a channel-count
    /// mismatch.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let n = dec.count(8)?;
        if n != self.channel_free.len() {
            return Err(CodecError::Invalid(format!(
                "dram channel mismatch: snapshot has {n}, config has {}",
                self.channel_free.len()
            )));
        }
        for c in &mut self.channel_free {
            *c = dec.u64()?;
        }
        self.accesses = dec.u64()?;
        self.total_queue_cycles = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_access_is_pure_latency() {
        let mut d = Dram::new(DramConfig::isca2020());
        assert_eq!(d.access(1000, 64), 1100);
    }

    #[test]
    fn same_channel_queues() {
        let mut d = Dram::new(DramConfig::isca2020());
        // Lines 0 and 4 map to the same channel (4 channels, line-interleave).
        let a = d.access(0, 0);
        let b = d.access(0, 4 * LINE_BYTES);
        assert_eq!(a, 100);
        assert_eq!(b, 116); // queued behind the first line's 16-cycle service
        let (_, queued) = d.stats();
        assert_eq!(queued, 16);
    }

    #[test]
    fn different_channels_parallel() {
        let mut d = Dram::new(DramConfig::isca2020());
        let a = d.access(0, 0);
        let b = d.access(0, LINE_BYTES); // channel 1
        assert_eq!(a, b);
    }

    #[test]
    fn burst_spreads_across_channels() {
        let mut d = Dram::new(DramConfig::isca2020());
        // 8 lines over 4 channels: 2 per channel => last starts at +16.
        let done = d.access_burst(0, 0, 8);
        assert_eq!(done, 116);
    }

    #[test]
    fn channel_frees_over_time() {
        let mut d = Dram::new(DramConfig::isca2020());
        d.access(0, 0);
        // After the service interval the channel is idle again.
        assert_eq!(d.access(16, 0), 116);
        assert_eq!(d.access(1000, 0), 1100);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        Dram::new(DramConfig {
            channels: 0,
            latency: 1,
            service_interval: 1,
        });
    }
}
