//! Atomic-operation semantics, including *waiting atomics*.
//!
//! The paper's key ISA extension (§IV.D): every atomic may carry an extra
//! operand with the **expected value** of the synchronization variable. The
//! atomic executes normally at the L2; afterwards the observed value is
//! compared against the expectation, and on mismatch the issuing WG enters a
//! waiting state registered *atomically* with the comparison — closing the
//! window of vulnerability that separate `wait` instructions have (Fig 10).

use crate::addr::Addr;
use crate::backing::Backing;

/// The atomic operations the kernel ISA can issue to the L2.
///
/// `Load` is an atomic load (HeteroSync's `atomicLoad`); combined with an
/// expected value it becomes the paper's proposed **compare-and-wait**
/// instruction. `Cas` already has an expected operand, which the paper calls
/// "a perfect candidate for a waiting atomic".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// Atomic load (with `expected`: compare-and-wait).
    Load,
    /// Atomic store (unconditional exchange ignoring the old value).
    Store,
    /// Atomic exchange, returns the old value.
    Exch,
    /// Fetch-and-add.
    Add,
    /// Fetch-and-sub.
    Sub,
    /// Fetch-and-AND.
    And,
    /// Fetch-and-OR.
    Or,
    /// Fetch-and-XOR.
    Xor,
    /// Fetch-and-max.
    Max,
    /// Fetch-and-min.
    Min,
    /// Compare-and-swap: swaps in `operand` only when the old value equals
    /// `expected`.
    Cas,
}

impl AtomicOp {
    /// Whether the operation can modify memory.
    pub fn writes(self) -> bool {
        !matches!(self, AtomicOp::Load)
    }

    /// Short mnemonic used by the disassembler and traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomicOp::Load => "atom_ld",
            AtomicOp::Store => "atom_st",
            AtomicOp::Exch => "atom_exch",
            AtomicOp::Add => "atom_add",
            AtomicOp::Sub => "atom_sub",
            AtomicOp::And => "atom_and",
            AtomicOp::Or => "atom_or",
            AtomicOp::Xor => "atom_xor",
            AtomicOp::Max => "atom_max",
            AtomicOp::Min => "atom_min",
            AtomicOp::Cas => "atom_cas",
        }
    }
}

impl std::fmt::Display for AtomicOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A fully-resolved atomic request as it arrives at an L2 bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicRequest {
    /// The operation.
    pub op: AtomicOp,
    /// Target address (word-aligned by the backing store).
    pub addr: Addr,
    /// Data operand (addend, swap value, …). Ignored by `Load`.
    pub operand: i64,
    /// Expected value: when present this is a *waiting atomic* and the
    /// result's `satisfied` flag reports the comparison outcome.
    pub expected: Option<i64>,
}

/// Outcome of executing an atomic at the L2 ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicResult {
    /// Value observed at the address before the operation (returned to the
    /// wavefront, like hardware atomics do).
    pub old: i64,
    /// Value stored after the operation (equals `old` when nothing was
    /// written).
    pub new: i64,
    /// Whether memory was actually modified.
    pub wrote: bool,
    /// For waiting atomics: whether the observed value matched `expected`.
    /// `true` for plain atomics (nothing to wait on).
    pub satisfied: bool,
}

/// Executes `req` against `mem`, returning the architectural outcome.
///
/// This is the pure functional core of the L2 atomic ALU; timing (bank
/// occupancy, cache state) is layered on in [`crate::l2`].
///
/// # Example
///
/// ```
/// use awg_mem::{atomic::execute, AtomicOp, AtomicRequest, Backing};
///
/// let mut mem = Backing::new();
/// let r = execute(
///     &mut mem,
///     AtomicRequest { op: AtomicOp::Add, addr: 64, operand: 5, expected: None },
/// );
/// assert_eq!((r.old, r.new), (0, 5));
/// assert!(r.satisfied);
/// ```
pub fn execute(mem: &mut Backing, req: AtomicRequest) -> AtomicResult {
    let old = mem.load(req.addr);
    let (new, wrote) = match req.op {
        AtomicOp::Load => (old, false),
        AtomicOp::Store | AtomicOp::Exch => (req.operand, true),
        AtomicOp::Add => (old.wrapping_add(req.operand), true),
        AtomicOp::Sub => (old.wrapping_sub(req.operand), true),
        AtomicOp::And => (old & req.operand, true),
        AtomicOp::Or => (old | req.operand, true),
        AtomicOp::Xor => (old ^ req.operand, true),
        AtomicOp::Max => (old.max(req.operand), true),
        AtomicOp::Min => (old.min(req.operand), true),
        AtomicOp::Cas => {
            let expected = req.expected.unwrap_or(0);
            if old == expected {
                (req.operand, true)
            } else {
                (old, false)
            }
        }
    };
    if wrote && new != old {
        mem.store(req.addr, new);
    } else if wrote {
        // Same value written: architecturally a write, but skip the map
        // churn. Monitored-address notifications still fire at the L2 layer.
    }
    let satisfied = match req.expected {
        None => true,
        Some(e) => old == e,
    };
    AtomicResult {
        old,
        new: if wrote { new } else { old },
        wrote,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(op: AtomicOp, addr: Addr, operand: i64, expected: Option<i64>) -> AtomicRequest {
        AtomicRequest {
            op,
            addr,
            operand,
            expected,
        }
    }

    #[test]
    fn add_returns_old_value() {
        let mut mem = Backing::new();
        mem.store(64, 10);
        let r = execute(&mut mem, req(AtomicOp::Add, 64, 3, None));
        assert_eq!(r.old, 10);
        assert_eq!(r.new, 13);
        assert!(r.wrote);
        assert_eq!(mem.load(64), 13);
    }

    #[test]
    fn exch_swaps() {
        let mut mem = Backing::new();
        mem.store(64, 1);
        let r = execute(&mut mem, req(AtomicOp::Exch, 64, 7, None));
        assert_eq!(r.old, 1);
        assert_eq!(mem.load(64), 7);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut mem = Backing::new();
        mem.store(64, 5);
        let fail = execute(&mut mem, req(AtomicOp::Cas, 64, 9, Some(4)));
        assert!(!fail.wrote);
        assert!(!fail.satisfied);
        assert_eq!(mem.load(64), 5);

        let ok = execute(&mut mem, req(AtomicOp::Cas, 64, 9, Some(5)));
        assert!(ok.wrote);
        assert!(ok.satisfied);
        assert_eq!(mem.load(64), 9);
    }

    #[test]
    fn compare_and_wait_semantics() {
        let mut mem = Backing::new();
        mem.store(64, 0);
        // atomicCmpWait(myQueueLoc, 1): load + compare against expected 1.
        let miss = execute(&mut mem, req(AtomicOp::Load, 64, 0, Some(1)));
        assert!(!miss.satisfied);
        assert!(!miss.wrote);

        mem.store(64, 1);
        let hit = execute(&mut mem, req(AtomicOp::Load, 64, 0, Some(1)));
        assert!(hit.satisfied);
        assert_eq!(hit.old, 1);
    }

    #[test]
    fn min_max_behave() {
        let mut mem = Backing::new();
        mem.store(64, 10);
        let r = execute(&mut mem, req(AtomicOp::Max, 64, 4, None));
        assert_eq!(r.new, 10);
        let r = execute(&mut mem, req(AtomicOp::Min, 64, 4, None));
        assert_eq!(r.new, 4);
        assert_eq!(mem.load(64), 4);
    }

    #[test]
    fn bitwise_ops() {
        let mut mem = Backing::new();
        mem.store(64, 0b1100);
        assert_eq!(
            execute(&mut mem, req(AtomicOp::And, 64, 0b1010, None)).new,
            0b1000
        );
        assert_eq!(
            execute(&mut mem, req(AtomicOp::Or, 64, 0b0001, None)).new,
            0b1001
        );
        assert_eq!(
            execute(&mut mem, req(AtomicOp::Xor, 64, 0b1111, None)).new,
            0b0110
        );
    }

    #[test]
    fn wrapping_add_does_not_panic() {
        let mut mem = Backing::new();
        mem.store(64, i64::MAX);
        let r = execute(&mut mem, req(AtomicOp::Add, 64, 1, None));
        assert_eq!(r.new, i64::MIN);
    }

    #[test]
    fn plain_atomics_always_satisfied() {
        let mut mem = Backing::new();
        let r = execute(&mut mem, req(AtomicOp::Add, 64, 1, None));
        assert!(r.satisfied);
    }

    #[test]
    fn waiting_add_compares_old_value() {
        let mut mem = Backing::new();
        mem.store(64, 2);
        // Waiting fetch-add expecting to see 3: performs the add regardless
        // (Mesa semantics) but reports the unmet expectation.
        let r = execute(&mut mem, req(AtomicOp::Add, 64, 1, Some(3)));
        assert!(!r.satisfied);
        assert_eq!(mem.load(64), 3);
    }
}
