//! The shared, banked L2 — the synchronization point of the GPU.
//!
//! GPUs "use write-through caches and perform atomics at the shared
//! last-level cache" (§IV.C.iii). Every atomic in the simulator therefore
//! executes here: requests ride the interconnect (the Table 1 50-cycle L2
//! latency each way), serialize on their home bank's atomic ALU, fill the
//! line from DRAM on a miss, and answer back to the CU. Bank occupancy is
//! what turns synchronization contention into time — the effect Figures 7,
//! 9 and 11 of the paper measure.
//!
//! The L2 also hosts AWG's per-tag **monitored** bits: monitored lines are
//! pinned (never evicted) and any atomic touching one reports
//! `was_monitored = true` so the SyncMon can run its condition checks.

use awg_sim::{CodecError, Cycle, Dec, Enc};

use crate::addr::{line_of, Addr};
use crate::atomic::{self, AtomicRequest, AtomicResult};
use crate::backing::Backing;
use crate::cache::{AccessOutcome, Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};

/// L2 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Tag/data array geometry and pipeline latency (one way of the trip).
    pub cache: CacheConfig,
    /// Number of address-interleaved banks.
    pub banks: usize,
    /// Cycles a bank's ALU is occupied per atomic.
    pub atomic_occupancy: Cycle,
    /// Cycles a bank is occupied per plain read/write.
    pub access_occupancy: Cycle,
}

impl L2Config {
    /// The paper's baseline: 512 KB, 16-way, 50-cycle pipeline, sliced into
    /// 8 banks. An atomic occupies its bank for 32 cycles — a full
    /// read-modify-write of the data array through the bank ALU — which is
    /// what makes busy-wait retry storms on one sync variable expensive
    /// (the contention the paper's Figs 7/9/14 hinge on).
    pub fn isca2020() -> Self {
        L2Config {
            cache: CacheConfig::l2_isca2020(),
            banks: 8,
            atomic_occupancy: 32,
            access_occupancy: 2,
        }
    }
}

/// Completion record for an L2 operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the response arrives back at the requester.
    pub done: Cycle,
    /// Whether the access hit in the L2 tags.
    pub hit: bool,
}

/// Completion record for an atomic, including monitor information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomicCompletion {
    /// Architectural outcome (old/new value, waiting-comparison result).
    pub result: AtomicResult,
    /// Cycle at which the response arrives back at the CU.
    pub done: Cycle,
    /// Cycle at which the operation committed at the bank (the point at
    /// which SyncMon condition checks logically run).
    pub committed: Cycle,
    /// Whether the target line's monitored bit was set when the atomic
    /// committed.
    pub was_monitored: bool,
}

/// The banked last-level cache plus the DRAM behind it and the functional
/// value store.
///
/// # Example
///
/// ```
/// use awg_mem::{AtomicOp, AtomicRequest, L2, L2Config};
///
/// let mut l2 = L2::new(L2Config::isca2020());
/// let c = l2.atomic(0, AtomicRequest { op: AtomicOp::Add, addr: 64, operand: 1, expected: None });
/// assert_eq!(c.result.new, 1);
/// assert!(c.done > 100); // pipeline + ALU + miss fill + return trip
/// ```
#[derive(Debug, Clone)]
pub struct L2 {
    config: L2Config,
    cache: Cache,
    bank_free: Vec<Cycle>,
    dram: Dram,
    backing: Backing,
    atomics: u64,
    reads: u64,
    writes: u64,
}

impl L2 {
    /// Creates an idle L2 with the paper's DRAM behind it.
    pub fn new(config: L2Config) -> Self {
        Self::with_dram(config, DramConfig::isca2020())
    }

    /// Creates an idle L2 with a custom DRAM configuration.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn with_dram(config: L2Config, dram: DramConfig) -> Self {
        assert!(config.banks > 0, "need at least one bank");
        L2 {
            cache: Cache::new(config.cache),
            bank_free: vec![0; config.banks],
            dram: Dram::new(dram),
            backing: Backing::new(),
            config,
            atomics: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    #[inline]
    fn bank_of(&self, addr: Addr) -> usize {
        ((line_of(addr) / self.config.cache.line_bytes) as usize) % self.config.banks
    }

    /// Common bank + tag timing. Returns `(commit_cycle, hit)`.
    fn bank_access(&mut self, now: Cycle, addr: Addr, occupancy: Cycle) -> (Cycle, bool) {
        let bank = self.bank_of(addr);
        let arrival = now + self.config.cache.latency;
        let start = arrival.max(self.bank_free[bank]);
        self.bank_free[bank] = start + occupancy;
        let (commit, hit) = match self.cache.access(addr) {
            AccessOutcome::Hit => (start + occupancy, true),
            AccessOutcome::Miss { .. } => {
                let fill = self.dram.access(start, line_of(addr));
                (fill.max(start + occupancy), false)
            }
            AccessOutcome::NoAllocate => {
                // Every way pinned by monitors: service uncached from DRAM.
                let fill = self.dram.access(start, line_of(addr));
                (fill.max(start + occupancy), false)
            }
        };
        (commit, hit)
    }

    /// Executes an atomic arriving from a CU at cycle `now`.
    pub fn atomic(&mut self, now: Cycle, req: AtomicRequest) -> AtomicCompletion {
        self.atomics += 1;
        let (committed, _hit) = self.bank_access(now, req.addr, self.config.atomic_occupancy);
        let was_monitored = self.cache.is_monitored(req.addr);
        let result = atomic::execute(&mut self.backing, req);
        AtomicCompletion {
            result,
            done: committed + self.config.cache.latency,
            committed,
            was_monitored,
        }
    }

    /// Reads the word at `addr`, returning `(value, completion)`.
    pub fn read(&mut self, now: Cycle, addr: Addr) -> (i64, Completion) {
        self.reads += 1;
        let (commit, hit) = self.bank_access(now, addr, self.config.access_occupancy);
        (
            self.backing.load(addr),
            Completion {
                done: commit + self.config.cache.latency,
                hit,
            },
        )
    }

    /// Writes `value` to the word at `addr` (write-through traffic from the
    /// L1s lands here). Returns the completion and whether the line was
    /// monitored at commit time.
    pub fn write(&mut self, now: Cycle, addr: Addr, value: i64) -> (Completion, bool) {
        self.writes += 1;
        let (commit, hit) = self.bank_access(now, addr, self.config.access_occupancy);
        let monitored = self.cache.is_monitored(addr);
        self.backing.store(addr, value);
        (
            Completion {
                done: commit + self.config.cache.latency,
                hit,
            },
            monitored,
        )
    }

    /// Transfers `lines` cachelines between on-chip state and memory,
    /// bypassing the L2 arrays (context save/restore traffic). Returns the
    /// completion cycle of the last line.
    pub fn context_burst(&mut self, now: Cycle, base: Addr, lines: u64) -> Cycle {
        self.dram.access_burst(now, base, lines)
    }

    /// Marks the line containing `addr` monitored (filling it first if
    /// necessary). Returns `false` if the line cannot be pinned because
    /// every way in its set is already pinned — the caller must spill the
    /// condition to the Monitor Log instead (§V.A).
    pub fn set_monitored(&mut self, addr: Addr) -> bool {
        if !self.cache.contains(addr) && self.cache.access(addr) == AccessOutcome::NoAllocate {
            return false;
        }
        self.cache.set_monitored(addr)
    }

    /// Clears the monitored bit of `addr`'s line. Idempotent.
    pub fn clear_monitored(&mut self, addr: Addr) {
        self.cache.clear_monitored(addr);
    }

    /// Whether `addr`'s line is currently monitored.
    pub fn is_monitored(&self, addr: Addr) -> bool {
        self.cache.is_monitored(addr)
    }

    /// Number of monitored lines currently pinned.
    pub fn monitored_lines(&self) -> usize {
        self.cache.monitored_lines()
    }

    /// Read-only view of the functional value store.
    pub fn backing(&self) -> &Backing {
        &self.backing
    }

    /// Mutable view of the functional value store (workload initialization).
    pub fn backing_mut(&mut self) -> &mut Backing {
        &mut self.backing
    }

    /// Zero-time value peek (validators, oracles — not a timed access).
    pub fn peek(&self, addr: Addr) -> i64 {
        self.backing.load(addr)
    }

    /// `(atomics, reads, writes)` executed since construction.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.atomics, self.reads, self.writes)
    }

    /// Tag-array statistics `(hits, misses, bypasses)`.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.cache.stats()
    }

    /// DRAM statistics `(accesses, queued_cycles)`.
    pub fn dram_stats(&self) -> (u64, u64) {
        self.dram.stats()
    }

    /// Serializes the whole memory-system state: tag array (with monitored
    /// and pinned bits), bank occupancy, DRAM channel state, the functional
    /// value store, and operation counters. Configuration is identity —
    /// [`L2::load`] overlays onto a same-config instance.
    pub fn save(&self, enc: &mut Enc) {
        self.cache.save(enc);
        enc.usize(self.bank_free.len());
        for &b in &self.bank_free {
            enc.u64(b);
        }
        self.dram.save(enc);
        self.backing.save_image(enc);
        enc.u64(self.atomics);
        enc.u64(self.reads);
        enc.u64(self.writes);
    }

    /// Overlays state written by [`L2::save`]. Fails on any geometry
    /// mismatch between the snapshot and this instance's configuration.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.cache.load(dec)?;
        let n = dec.count(8)?;
        if n != self.bank_free.len() {
            return Err(CodecError::Invalid(format!(
                "l2 bank mismatch: snapshot has {n}, config has {}",
                self.bank_free.len()
            )));
        }
        for b in &mut self.bank_free {
            *b = dec.u64()?;
        }
        self.dram.load(dec)?;
        self.backing.load_image(dec)?;
        self.atomics = dec.u64()?;
        self.reads = dec.u64()?;
        self.writes = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicOp;

    fn add1(addr: Addr) -> AtomicRequest {
        AtomicRequest {
            op: AtomicOp::Add,
            addr,
            operand: 1,
            expected: None,
        }
    }

    #[test]
    fn atomic_hit_latency_is_pipeline_plus_alu() {
        let mut l2 = L2::new(L2Config::isca2020());
        // Warm the line.
        l2.atomic(0, add1(64));
        let warm = l2.atomic(10_000, add1(64));
        // 50 in + 4 ALU + 50 back.
        assert_eq!(warm.done - 10_000, 132); // 50 in + 32 ALU + 50 back
        assert_eq!(warm.result.old, 1);
    }

    #[test]
    fn atomic_miss_pays_dram() {
        let mut l2 = L2::new(L2Config::isca2020());
        let c = l2.atomic(0, add1(64));
        assert!(
            c.done >= 50 + 100 + 50,
            "miss must include DRAM: {}",
            c.done
        );
    }

    #[test]
    fn same_bank_atomics_serialize() {
        let mut l2 = L2::new(L2Config::isca2020());
        l2.atomic(0, add1(64)); // warm line + bank
        let a = l2.atomic(10_000, add1(64));
        let b = l2.atomic(10_000, add1(64));
        assert_eq!(b.committed - a.committed, 32, "ALU occupancy serializes");
    }

    #[test]
    fn different_banks_do_not_serialize() {
        let mut l2 = L2::new(L2Config::isca2020());
        l2.atomic(0, add1(64));
        l2.atomic(0, add1(128));
        let a = l2.atomic(10_000, add1(64));
        let b = l2.atomic(10_000, add1(128));
        assert_eq!(a.committed, b.committed);
    }

    #[test]
    fn monitored_bit_roundtrip() {
        let mut l2 = L2::new(L2Config::isca2020());
        assert!(l2.set_monitored(64));
        assert!(l2.is_monitored(64));
        let c = l2.atomic(0, add1(64));
        assert!(c.was_monitored);
        l2.clear_monitored(64);
        assert!(!l2.is_monitored(64));
        let c = l2.atomic(20_000, add1(64));
        assert!(!c.was_monitored);
    }

    #[test]
    fn monitored_lines_survive_conflict_pressure() {
        let mut l2 = L2::new(L2Config::isca2020());
        let cfg = *l2.config();
        assert!(l2.set_monitored(64));
        // Generate way-conflict pressure on the same set.
        let set_stride = cfg.cache.sets as u64 * cfg.cache.line_bytes;
        for i in 1..=(cfg.cache.ways as u64 * 2) {
            l2.read(i * 1000, 64 + i * set_stride);
        }
        assert!(l2.is_monitored(64));
    }

    #[test]
    fn write_reports_monitored() {
        let mut l2 = L2::new(L2Config::isca2020());
        l2.set_monitored(64);
        let (_, monitored) = l2.write(0, 64, 42);
        assert!(monitored);
        assert_eq!(l2.peek(64), 42);
    }

    #[test]
    fn values_flow_through_backing() {
        let mut l2 = L2::new(L2Config::isca2020());
        l2.write(0, 64, 7);
        let (v, _) = l2.read(1000, 64);
        assert_eq!(v, 7);
        let c = l2.atomic(
            2000,
            AtomicRequest {
                op: AtomicOp::Cas,
                addr: 64,
                operand: 9,
                expected: Some(7),
            },
        );
        assert!(c.result.wrote);
        assert_eq!(l2.peek(64), 9);
    }

    #[test]
    fn context_burst_uses_dram_bandwidth() {
        let mut l2 = L2::new(L2Config::isca2020());
        // 10 KB context = 160 lines over 4 channels: 40 per channel.
        let done = l2.context_burst(0, 1 << 20, 160);
        // Last line starts at 39*16 = 624, +100 latency.
        assert_eq!(done, 724);
    }

    #[test]
    fn save_load_round_trips_mid_run_state() {
        let mut l2 = L2::new(L2Config::isca2020());
        l2.write(0, 64, 7);
        l2.set_monitored(64);
        l2.atomic(100, add1(64));
        l2.atomic(100, add1(128));
        l2.read(500, 192);
        l2.context_burst(600, 1 << 20, 16);

        let mut enc = Enc::new();
        l2.save(&mut enc);
        let bytes = enc.into_bytes();

        let mut restored = L2::new(L2Config::isca2020());
        let mut dec = Dec::new(&bytes);
        restored.load(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(restored.op_counts(), l2.op_counts());
        assert_eq!(restored.cache_stats(), l2.cache_stats());
        assert_eq!(restored.dram_stats(), l2.dram_stats());
        assert_eq!(restored.monitored_lines(), l2.monitored_lines());
        assert!(restored.is_monitored(64));
        assert_eq!(restored.peek(64), l2.peek(64));
        assert_eq!(
            restored.backing().write_version(),
            l2.backing().write_version()
        );

        // Re-encoding the restored machine is a fixed point.
        let mut enc2 = Enc::new();
        restored.save(&mut enc2);
        assert_eq!(enc2.bytes(), bytes.as_slice());

        // Continuing both machines identically must produce identical timing
        // (bank/channel occupancy restored exactly) and identical values.
        let a = l2.atomic(1000, add1(64));
        let b = restored.atomic(1000, add1(64));
        assert_eq!(a, b);
    }

    #[test]
    fn load_rejects_truncation_and_geometry_mismatch() {
        // Small geometry so scanning every truncation offset stays fast.
        let cfg = L2Config {
            cache: CacheConfig {
                sets: 4,
                ways: 2,
                line_bytes: 64,
                latency: 50,
            },
            banks: 2,
            atomic_occupancy: 4,
            access_occupancy: 2,
        };
        let mut l2 = L2::with_dram(cfg, DramConfig::isca2020());
        l2.write(0, 64, 7);
        l2.atomic(0, add1(64));
        let mut enc = Enc::new();
        l2.save(&mut enc);
        let bytes = enc.into_bytes();

        for cut in 0..bytes.len() {
            let mut fresh = L2::with_dram(cfg, DramConfig::isca2020());
            let mut dec = Dec::new(&bytes[..cut]);
            let outcome = fresh.load(&mut dec).and_then(|()| dec.finish());
            assert!(outcome.is_err(), "truncation at {cut} must be rejected");
        }

        // A snapshot from a differently-shaped L2 must be refused.
        let mut other_cfg = cfg;
        other_cfg.banks = 1;
        let mut fresh = L2::with_dram(other_cfg, DramConfig::isca2020());
        let mut dec = Dec::new(&bytes);
        assert!(fresh.load(&mut dec).is_err());
    }

    #[test]
    fn set_monitored_when_set_full_of_pins_fails() {
        let cfg = L2Config {
            cache: CacheConfig {
                sets: 1,
                ways: 2,
                line_bytes: 64,
                latency: 50,
            },
            banks: 1,
            atomic_occupancy: 4,
            access_occupancy: 2,
        };
        let mut l2 = L2::with_dram(cfg, DramConfig::isca2020());
        assert!(l2.set_monitored(0));
        assert!(l2.set_monitored(64));
        assert!(!l2.set_monitored(128), "third pin in a 2-way set must fail");
    }
}
