//! Simulated global address space and layout allocator.
//!
//! Workloads allocate their synchronization variables and shared data here.
//! Sync variables are 8-byte words; the allocator can pad them out to their
//! own cachelines, which is what HeteroSync's decentralized primitives do
//! (e.g. the decentralized ticket lock strides its queue entries, Fig 10).

/// A byte address in the simulated global memory.
pub type Addr = u64;

/// Cacheline size used throughout the paper's hierarchy (Table 1: 64 B).
pub const LINE_BYTES: u64 = 64;

/// Word size of a synchronization variable (`i64`).
pub const WORD_BYTES: u64 = 8;

/// Returns the cacheline-aligned base of `addr`.
#[inline]
pub fn line_of(addr: Addr) -> Addr {
    addr & !(LINE_BYTES - 1)
}

/// A bump allocator for laying out simulated data structures.
///
/// # Example
///
/// ```
/// use awg_mem::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let lock = space.alloc_sync_var("lock");
/// let queue = space.alloc_sync_array("queue", 16, true);
/// assert_eq!(lock % 64, 0);               // line-aligned
/// assert_eq!(queue.stride_bytes(), 64);   // padded entries
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: Addr,
    regions: Vec<Region>,
}

/// A named allocated region (for debugging and footprint accounting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region label.
    pub name: String,
    /// First byte of the region.
    pub base: Addr,
    /// Size in bytes.
    pub bytes: u64,
}

/// A line- or word-strided array of sync variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncArray {
    base: Addr,
    len: u64,
    stride: u64,
}

impl SyncArray {
    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn at(&self, i: u64) -> Addr {
        assert!(
            i < self.len,
            "sync array index {i} out of bounds {}",
            self.len
        );
        self.base + i * self.stride
    }

    /// Base address of the array.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte stride between consecutive elements.
    pub fn stride_bytes(&self) -> u64 {
        self.stride
    }
}

impl AddressSpace {
    /// Creates an empty address space. Address 0 is left unmapped so that a
    /// zero address can serve as a sentinel.
    pub fn new() -> Self {
        AddressSpace {
            next: LINE_BYTES,
            regions: Vec::new(),
        }
    }

    fn align_to(&mut self, align: u64) {
        debug_assert!(align.is_power_of_two());
        self.next = (self.next + align - 1) & !(align - 1);
    }

    /// Allocates `bytes` bytes aligned to `align` and records the region.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, name: &str, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.align_to(align);
        let base = self.next;
        self.next += bytes;
        self.regions.push(Region {
            name: name.to_owned(),
            base,
            bytes,
        });
        base
    }

    /// Allocates a single line-aligned synchronization variable (8 bytes of
    /// payload on its own cacheline, avoiding false sharing).
    pub fn alloc_sync_var(&mut self, name: &str) -> Addr {
        self.alloc(name, LINE_BYTES, LINE_BYTES)
    }

    /// Allocates an array of `len` sync variables. When `padded` each element
    /// sits on its own cacheline; otherwise elements are packed words.
    pub fn alloc_sync_array(&mut self, name: &str, len: u64, padded: bool) -> SyncArray {
        let stride = if padded { LINE_BYTES } else { WORD_BYTES };
        let base = self.alloc(name, len.max(1) * stride, LINE_BYTES);
        SyncArray { base, len, stride }
    }

    /// Allocates a raw data buffer of `bytes` bytes, line-aligned.
    pub fn alloc_buffer(&mut self, name: &str, bytes: u64) -> Addr {
        self.alloc(name, bytes, LINE_BYTES)
    }

    /// Total bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - LINE_BYTES
    }

    /// All allocated regions in allocation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Looks up the region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        self.regions
            .iter()
            .find(|r| addr >= r.base && addr < r.base + r.bytes)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_offset() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn sync_vars_are_line_aligned_and_disjoint() {
        let mut s = AddressSpace::new();
        let a = s.alloc_sync_var("a");
        let b = s.alloc_sync_var("b");
        assert_eq!(a % LINE_BYTES, 0);
        assert_eq!(b % LINE_BYTES, 0);
        assert_ne!(line_of(a), line_of(b));
    }

    #[test]
    fn padded_array_strides_by_line() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_sync_array("q", 4, true);
        assert_eq!(arr.len(), 4);
        assert_eq!(arr.at(1) - arr.at(0), LINE_BYTES);
        assert_eq!(line_of(arr.at(2)), arr.at(2));
    }

    #[test]
    fn packed_array_strides_by_word() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_sync_array("flags", 8, false);
        assert_eq!(arr.at(1) - arr.at(0), WORD_BYTES);
        // Packed entries share cachelines.
        assert_eq!(line_of(arr.at(0)), line_of(arr.at(7)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn array_bounds_checked() {
        let mut s = AddressSpace::new();
        let arr = s.alloc_sync_array("q", 2, true);
        arr.at(2);
    }

    #[test]
    fn region_lookup() {
        let mut s = AddressSpace::new();
        let buf = s.alloc_buffer("data", 256);
        let r = s.region_of(buf + 100).expect("region");
        assert_eq!(r.name, "data");
        assert!(s.region_of(buf + 256).is_none_or(|r| r.name != "data"));
    }

    #[test]
    fn address_zero_is_never_allocated() {
        let mut s = AddressSpace::new();
        let a = s.alloc("x", 8, 8);
        assert!(a >= LINE_BYTES);
        assert!(s.region_of(0).is_none());
    }

    #[test]
    fn allocated_bytes_tracks_total() {
        let mut s = AddressSpace::new();
        s.alloc_buffer("a", 64);
        s.alloc_buffer("b", 128);
        assert_eq!(s.allocated_bytes(), 192);
    }
}
