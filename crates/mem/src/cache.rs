//! Set-associative caches with LRU replacement.
//!
//! Used for the per-CU write-through L1s and for the shared L2. The L2 tags
//! carry the two bits AWG adds (§V.B): a **monitored** bit marking lines the
//! SyncMon watches, and a **pinned** bit so monitored lines "are not evicted".

use awg_sim::{CodecError, Dec, Enc};

use crate::addr::Addr;

/// Geometry and latency of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Paper Table 1: 32 KB, 16-way set assoc., 30 cycles, 64 B lines
    /// (per-CU vector L1).
    pub fn l1_isca2020() -> Self {
        CacheConfig {
            sets: 32 * 1024 / (16 * 64),
            ways: 16,
            line_bytes: 64,
            latency: 30,
        }
    }

    /// Paper Table 1: 512 KB shared, 16-way set assoc., 50 cycles.
    pub fn l2_isca2020() -> Self {
        CacheConfig {
            sets: 512 * 1024 / (16 * 64),
            ways: 16,
            line_bytes: 64,
            latency: 50,
        }
    }

    /// Paper Table 1: 16 KB scalar cache, 8-way, 4 cycles (1 per 4 CUs).
    pub fn scalar_isca2020() -> Self {
        CacheConfig {
            sets: 16 * 1024 / (8 * 64),
            ways: 8,
            line_bytes: 64,
            latency: 4,
        }
    }

    /// Paper Table 1: 32 KB instruction cache, 8-way, 4 cycles (1 per 4 CUs).
    pub fn icache_isca2020() -> Self {
        CacheConfig {
            sets: 32 * 1024 / (8 * 64),
            ways: 8,
            line_bytes: 64,
            latency: 4,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line was present.
    Hit,
    /// Line was filled; `evicted` reports a replaced line's base address.
    Miss {
        /// Base address of the victim line, if a valid line was evicted.
        evicted: Option<Addr>,
    },
    /// Line could not be allocated because every way in the set is pinned.
    /// The access must bypass the cache.
    NoAllocate,
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Hit`].
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    monitored: bool,
    pinned: bool,
    last_use: u64,
}

/// A set-associative cache with LRU replacement and AWG's monitored/pinned
/// tag bits.
///
/// # Example
///
/// ```
/// use awg_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 2, line_bytes: 64, latency: 1 });
/// assert!(!c.access(0).is_hit());   // cold miss
/// assert!(c.access(0).is_hit());    // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets/ways or a
    /// non-power-of-two line size).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets > 0 && config.ways > 0, "degenerate geometry");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            config,
            lines: vec![Line::default(); config.sets * config.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            bypasses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn index_tag(&self, addr: Addr) -> (usize, u64) {
        let line = addr / self.config.line_bytes;
        let set = (line as usize) % self.config.sets;
        let tag = line / self.config.sets as u64;
        (set, tag)
    }

    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let w = self.config.ways;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Accesses `addr`, allocating on miss (for both reads and writes: the
    /// GPU L1s are write-through/write-allocate in the baseline model, and
    /// the L2 allocates atomics so their lines can be monitored).
    pub fn access(&mut self, addr: Addr) -> AccessOutcome {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index_tag(addr);
        let line_bytes = self.config.line_bytes;
        let sets = self.config.sets as u64;
        let ways = self.config.ways;
        let slice = self.set_slice(set);

        for way in slice.iter_mut() {
            if way.valid && way.tag == tag {
                way.last_use = tick;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }

        // Miss: pick invalid way, else LRU among unpinned.
        let mut victim: Option<usize> = None;
        for (i, way) in slice.iter().enumerate() {
            if !way.valid {
                victim = Some(i);
                break;
            }
        }
        if victim.is_none() {
            let mut best: Option<(usize, u64)> = None;
            for (i, way) in slice.iter().enumerate() {
                if way.pinned {
                    continue;
                }
                if best.is_none_or(|(_, lu)| way.last_use < lu) {
                    best = Some((i, way.last_use));
                }
            }
            victim = best.map(|(i, _)| i);
        }
        let Some(v) = victim else {
            debug_assert!(ways > 0);
            self.bypasses += 1;
            return AccessOutcome::NoAllocate;
        };
        let evicted = if slice[v].valid {
            let old_tag = slice[v].tag;
            Some((old_tag * sets + set as u64) * line_bytes)
        } else {
            None
        };
        slice[v] = Line {
            tag,
            valid: true,
            monitored: false,
            pinned: false,
            last_use: tick,
        };
        self.misses += 1;
        AccessOutcome::Miss { evicted }
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: Addr) -> bool {
        let (set, tag) = self.index_tag(addr);
        let w = self.config.ways;
        self.lines[set * w..(set + 1) * w]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    fn line_mut(&mut self, addr: Addr) -> Option<&mut Line> {
        let (set, tag) = self.index_tag(addr);
        self.set_slice(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
    }

    /// Sets the monitored bit (and pins the line) for the line containing
    /// `addr`. Returns `false` when the line is not resident — the caller
    /// must fill it first.
    pub fn set_monitored(&mut self, addr: Addr) -> bool {
        match self.line_mut(addr) {
            Some(l) => {
                l.monitored = true;
                l.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Clears the monitored bit and unpins the line. Idempotent.
    pub fn clear_monitored(&mut self, addr: Addr) {
        if let Some(l) = self.line_mut(addr) {
            l.monitored = false;
            l.pinned = false;
        }
    }

    /// Whether the line containing `addr` is resident with its monitored bit
    /// set.
    pub fn is_monitored(&self, addr: Addr) -> bool {
        let (set, tag) = self.index_tag(addr);
        let w = self.config.ways;
        self.lines[set * w..(set + 1) * w]
            .iter()
            .any(|l| l.valid && l.tag == tag && l.monitored)
    }

    /// Number of monitored (pinned) lines currently resident.
    pub fn monitored_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.monitored).count()
    }

    /// `(hits, misses, bypasses)` since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.bypasses)
    }

    /// Invalidates every line (keeps statistics).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Serializes the mutable tag-array state (lines, LRU tick, counters).
    /// Geometry is identity, not state: [`Cache::load`] overlays onto a cache
    /// built from the same [`CacheConfig`].
    pub fn save(&self, enc: &mut Enc) {
        enc.u64(self.tick);
        enc.u64(self.hits);
        enc.u64(self.misses);
        enc.u64(self.bypasses);
        enc.usize(self.lines.len());
        for l in &self.lines {
            enc.u64(l.tag);
            enc.bool(l.valid);
            enc.bool(l.monitored);
            enc.bool(l.pinned);
            enc.u64(l.last_use);
        }
    }

    /// Overlays state written by [`Cache::save`] onto this cache. Fails if
    /// the saved geometry (line count) does not match this cache's.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.tick = dec.u64()?;
        self.hits = dec.u64()?;
        self.misses = dec.u64()?;
        self.bypasses = dec.u64()?;
        let n = dec.count(11)?;
        if n != self.lines.len() {
            return Err(CodecError::Invalid(format!(
                "cache geometry mismatch: snapshot has {n} lines, config has {}",
                self.lines.len()
            )));
        }
        for l in &mut self.lines {
            l.tag = dec.u64()?;
            l.valid = dec.bool()?;
            l.monitored = dec.bool()?;
            l.pinned = dec.bool()?;
            l.last_use = dec.u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access(0), AccessOutcome::Miss { evicted: None }));
        assert!(c.access(0).is_hit());
        assert!(c.access(63).is_hit()); // same line
        assert!(!c.access(64).is_hit()); // next line, different set
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 128 (sets=2 => line/64 % 2).
        c.access(0);
        c.access(128);
        c.access(0); // 0 is now MRU
        match c.access(256) {
            AccessOutcome::Miss { evicted: Some(e) } => assert_eq!(e, 128),
            other => panic!("expected eviction of 128, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(!c.contains(128));
    }

    #[test]
    fn pinned_lines_survive_pressure() {
        let mut c = tiny();
        c.access(0);
        assert!(c.set_monitored(0));
        c.access(128);
        c.access(256); // must evict 128, not pinned 0
        assert!(c.contains(0));
        assert!(c.is_monitored(0));
        assert!(!c.contains(128));
    }

    #[test]
    fn all_pinned_set_reports_no_allocate() {
        let mut c = tiny();
        c.access(0);
        c.access(128);
        c.set_monitored(0);
        c.set_monitored(128);
        assert_eq!(c.access(256), AccessOutcome::NoAllocate);
        let (_, _, bypasses) = c.stats();
        assert_eq!(bypasses, 1);
    }

    #[test]
    fn monitored_requires_residency() {
        let mut c = tiny();
        assert!(!c.set_monitored(0));
        c.access(0);
        assert!(c.set_monitored(0));
        assert_eq!(c.monitored_lines(), 1);
        c.clear_monitored(0);
        assert!(!c.is_monitored(0));
        assert_eq!(c.monitored_lines(), 0);
    }

    #[test]
    fn clear_monitored_unpins() {
        let mut c = tiny();
        c.access(0);
        c.set_monitored(0);
        c.clear_monitored(0);
        c.access(128);
        c.access(256);
        // 0 must now be evictable.
        assert!(!c.contains(0) || !c.contains(128));
        let resident = [0u64, 128, 256].iter().filter(|&&a| c.contains(a)).count();
        assert_eq!(resident, 2);
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1_isca2020().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_isca2020().capacity_bytes(), 512 * 1024);
        assert_eq!(CacheConfig::scalar_isca2020().capacity_bytes(), 16 * 1024);
        assert_eq!(CacheConfig::icache_isca2020().capacity_bytes(), 32 * 1024);
        assert_eq!(CacheConfig::l2_isca2020().latency, 50);
        assert_eq!(CacheConfig::l1_isca2020().latency, 30);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.contains(0));
        assert!(!c.access(0).is_hit());
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_ways_rejected() {
        Cache::new(CacheConfig {
            sets: 1,
            ways: 0,
            line_bytes: 64,
            latency: 1,
        });
    }
}
