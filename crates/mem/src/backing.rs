//! The global-memory value store.
//!
//! Functional state of the simulated machine: every 8-byte word of global
//! memory that has ever been written. Timing is handled elsewhere; this is
//! purely the "what value lives at this address" half of the memory system.

use std::collections::HashMap;

use awg_sim::{CodecError, Dec, Enc};

use crate::addr::{Addr, WORD_BYTES};

/// Word-addressed global memory (values are `i64`, matching the sync-variable
/// width used by the kernel ISA). Unwritten words read as zero, like freshly
/// allocated GPU memory in the benchmarks.
///
/// # Example
///
/// ```
/// let mut mem = awg_mem::Backing::new();
/// assert_eq!(mem.load(64), 0);
/// mem.store(64, -7);
/// assert_eq!(mem.load(64), -7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Backing {
    words: HashMap<Addr, i64>,
    writes: u64,
}

impl Backing {
    /// Creates empty (all-zero) memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn word_addr(addr: Addr) -> Addr {
        addr & !(WORD_BYTES - 1)
    }

    /// Loads the word containing `addr` (word-aligned internally).
    #[inline]
    pub fn load(&self, addr: Addr) -> i64 {
        *self.words.get(&Self::word_addr(addr)).unwrap_or(&0)
    }

    /// Stores `value` to the word containing `addr`.
    #[inline]
    pub fn store(&mut self, addr: Addr, value: i64) {
        self.writes += 1;
        let key = Self::word_addr(addr);
        if value == 0 {
            // Keep the map sparse: zero is the default.
            self.words.remove(&key);
        } else {
            self.words.insert(key, value);
        }
    }

    /// Total number of stores ever performed (used by the deadlock detector
    /// as a cheap "has global state changed?" clock).
    pub fn write_version(&self) -> u64 {
        self.writes
    }

    /// Number of words currently holding non-zero values.
    pub fn resident_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over `(addr, value)` for all non-zero words, in unspecified
    /// order. Useful to validators that check workload post-conditions.
    pub fn nonzero_words(&self) -> impl Iterator<Item = (Addr, i64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }

    /// Serializes the full functional memory image. Words are written in
    /// ascending address order so identical memories always produce
    /// byte-identical encodings regardless of `HashMap` iteration order.
    pub fn save_image(&self, enc: &mut Enc) {
        enc.u64(self.writes);
        let mut words: Vec<(Addr, i64)> = self.words.iter().map(|(&a, &v)| (a, v)).collect();
        words.sort_unstable_by_key(|&(a, _)| a);
        enc.usize(words.len());
        for (a, v) in words {
            enc.u64(a);
            enc.i64(v);
        }
    }

    /// Replaces this memory's contents with state written by
    /// [`Backing::save_image`]. Rejects zero-valued or unaligned words — the
    /// store path never produces either, so their presence means corruption.
    pub fn load_image(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.writes = dec.u64()?;
        let n = dec.count(16)?;
        let mut words = HashMap::with_capacity(n);
        for _ in 0..n {
            let a = dec.u64()?;
            let v = dec.i64()?;
            if v == 0 {
                return Err(CodecError::Invalid(format!(
                    "zero word at {a:#x} in backing snapshot"
                )));
            }
            if a != Self::word_addr(a) {
                return Err(CodecError::Invalid(format!(
                    "unaligned word address {a:#x} in backing snapshot"
                )));
            }
            words.insert(a, v);
        }
        self.words = words;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mem = Backing::new();
        assert_eq!(mem.load(0), 0);
        assert_eq!(mem.load(12345678), 0);
    }

    #[test]
    fn store_load_roundtrip() {
        let mut mem = Backing::new();
        mem.store(128, 99);
        assert_eq!(mem.load(128), 99);
        mem.store(128, -1);
        assert_eq!(mem.load(128), -1);
    }

    #[test]
    fn subword_addresses_alias_the_word() {
        let mut mem = Backing::new();
        mem.store(64, 5);
        assert_eq!(mem.load(67), 5);
        mem.store(71, 9);
        assert_eq!(mem.load(64), 9);
    }

    #[test]
    fn zero_stores_keep_map_sparse() {
        let mut mem = Backing::new();
        mem.store(64, 1);
        mem.store(64, 0);
        assert_eq!(mem.resident_words(), 0);
        assert_eq!(mem.load(64), 0);
    }

    #[test]
    fn write_version_counts_all_stores() {
        let mut mem = Backing::new();
        mem.store(0, 1);
        mem.store(8, 0);
        assert_eq!(mem.write_version(), 2);
    }

    #[test]
    fn nonzero_iteration() {
        let mut mem = Backing::new();
        mem.store(64, 1);
        mem.store(128, 2);
        let mut items: Vec<_> = mem.nonzero_words().collect();
        items.sort_unstable();
        assert_eq!(items, vec![(64, 1), (128, 2)]);
    }
}
