//! Model-based battery for the calendar-queue [`EventQueue`].
//!
//! The production queue is a 4096-cycle timer wheel with a `BTreeMap`
//! overflow tier and an arena/free-list slot store; the *model* here is
//! the data structure it replaced — a plain binary heap of
//! `(cycle, seq, payload)` with FIFO sequence tie-breaks. Every generated
//! interleaving drives both side by side and demands identical observable
//! behaviour: `pop` order (including same-cycle FIFO), `peek_cycle`,
//! `len`, snapshot contents, and arena accounting.
//!
//! The op mix is tuned to hit the queue's structurally distinct regimes:
//! same-cycle bursts (bucket `front` cursor), far-future schedules (the
//! overflow tier beyond the 4096-cycle horizon), retro schedules (behind
//! the wheel cursor, also overflow), wheel wraparound (popping across
//! many revolutions), and snapshot/restore mid-stream (horizon rebasing
//! plus seq-counter continuation).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use awg_sim::{Cycle, EventQueue};
use proptest::prelude::*;

/// One step of a generated interleaving. Offsets are relative to the
/// latest popped cycle, so the same op list exercises the wheel wherever
/// the cursor happens to sit.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule one event `offset` cycles ahead (0..4096 stays on the
    /// wheel; an offset of 0 lands on the cursor's own bucket).
    Near(u64),
    /// Schedule a same-cycle burst of `count` events `offset` ahead,
    /// exercising FIFO order within one bucket.
    Burst(u8, u64),
    /// Schedule beyond the wheel horizon, into the overflow tier.
    Far(u64),
    /// Schedule behind the current cycle (also routed to overflow).
    Retro(u64),
    /// Pop up to `count` events, checking each against the model.
    Pop(u8),
    /// Snapshot the queue and rebuild it via `restore`, mid-stream.
    RestoreRoundtrip,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..4096).prop_map(Op::Near),
        (2u8..6, 0u64..64).prop_map(|(n, off)| Op::Burst(n, off)),
        (4096u64..300_000).prop_map(Op::Far),
        (1u64..10_000).prop_map(Op::Retro),
        (1u8..12).prop_map(Op::Pop),
        Just(Op::RestoreRoundtrip),
    ]
}

/// The reference model: exactly the semantics of the original
/// `BinaryHeap` engine — min by `(cycle, seq)`, seq assigned in schedule
/// order and monotonically increasing forever.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    seq: u64,
}

impl HeapModel {
    fn schedule(&mut self, at: Cycle, payload: u32) {
        self.heap.push(Reverse((at, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Cycle, u32)> {
        self.heap.pop().map(|Reverse((c, _, p))| (c, p))
    }

    fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse((c, _, _))| *c)
    }

    fn sorted_entries(&self) -> Vec<(Cycle, u64, u32)> {
        let mut v: Vec<_> = self.heap.iter().map(|Reverse(t)| *t).collect();
        v.sort_unstable();
        v
    }
}

/// Drives `ops` through the production queue and the heap model and
/// checks every observable after every step.
fn run_interleaving(ops: &[Op]) {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut model = HeapModel::default();
    let mut now: Cycle = 0;
    let mut next_payload: u32 = 0;
    let mut saw_overflow = false;

    let schedule = |q: &mut EventQueue<u32>, model: &mut HeapModel, at, payload| {
        q.schedule(at, payload);
        model.schedule(at, payload);
    };

    for op in ops {
        match *op {
            Op::Near(off) | Op::Far(off) => {
                schedule(&mut q, &mut model, now + off, next_payload);
                next_payload += 1;
            }
            Op::Burst(count, off) => {
                for _ in 0..count {
                    schedule(&mut q, &mut model, now + off, next_payload);
                    next_payload += 1;
                }
            }
            Op::Retro(back) => {
                schedule(&mut q, &mut model, now.saturating_sub(back), next_payload);
                next_payload += 1;
            }
            Op::Pop(count) => {
                for _ in 0..count {
                    let got = q.pop();
                    let want = model.pop();
                    assert_eq!(got, want, "pop diverged from the heap model");
                    if let Some((c, _)) = got {
                        now = now.max(c);
                    }
                }
            }
            Op::RestoreRoundtrip => {
                let snap = q.snapshot();
                assert_eq!(
                    snap,
                    model.sorted_entries(),
                    "snapshot diverged from the heap model"
                );
                q = EventQueue::restore(snap, q.scheduled_total());
                assert_eq!(
                    q.scheduled_total(),
                    model.seq,
                    "restore must continue the seq counter"
                );
            }
        }

        // Step-wise observables.
        assert_eq!(q.len(), model.heap.len());
        assert_eq!(q.is_empty(), model.heap.is_empty());
        assert_eq!(q.peek_cycle(), model.peek_cycle());
        let (slots, holes) = q.arena_stats();
        assert_eq!(slots - holes, q.len(), "arena accounting leak");
        saw_overflow |= q.overflow_len() > 0;
        assert!(q.overflow_len() <= q.len());
    }

    // Drain whatever is left: total order must match to the last event.
    loop {
        let got = q.pop();
        let want = model.pop();
        assert_eq!(got, want, "drain diverged from the heap model");
        if got.is_none() {
            break;
        }
    }
    assert!(q.is_empty());

    // The op mix should actually reach the overflow tier in any run that
    // scheduled far-future work; if it scheduled none, this is vacuous.
    let scheduled_far = ops.iter().any(|o| matches!(o, Op::Far(_)));
    if scheduled_far {
        assert!(saw_overflow, "far-future ops never reached the overflow");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random interleavings across all regimes match the heap model.
    #[test]
    fn calendar_queue_matches_heap_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_interleaving(&ops);
    }

    /// Pure same-cycle bursts: FIFO within one bucket at any offset.
    #[test]
    fn same_cycle_bursts_stay_fifo(
        off in 0u64..4096,
        count in 1u8..40,
        pops in 1u8..40,
    ) {
        let ops = vec![Op::Burst(count, off), Op::Pop(pops), Op::Burst(count, off)];
        run_interleaving(&ops);
    }

    /// Restore in the middle of an overflow-heavy stream: the horizon is
    /// rebased, the seq counter continues, and order is unchanged.
    #[test]
    fn restore_mid_overflow_stream(
        far in prop::collection::vec(4096u64..500_000, 1..20),
        pops in 1u8..10,
    ) {
        let mut ops = vec![Op::Near(10), Op::Burst(3, 0)];
        ops.extend(far.into_iter().map(Op::Far));
        ops.push(Op::RestoreRoundtrip);
        ops.push(Op::Pop(pops));
        ops.push(Op::RestoreRoundtrip);
        run_interleaving(&ops);
    }
}

/// A long deterministic soak crossing the wheel many times over, with all
/// op kinds interleaved round-robin — catches wraparound bookkeeping that
/// short random runs might miss.
#[test]
fn deterministic_wheel_revolution_soak() {
    let mut ops = Vec::new();
    for i in 0u64..400 {
        ops.push(Op::Near((i * 37) % 4096));
        ops.push(Op::Far(4096 + (i * 911) % 40_000));
        ops.push(Op::Burst(3, i % 17));
        if i % 3 == 0 {
            ops.push(Op::Retro(1 + i % 257));
        }
        ops.push(Op::Pop(4));
        if i % 97 == 0 {
            ops.push(Op::RestoreRoundtrip);
        }
    }
    ops.push(Op::Pop(u8::MAX));
    run_interleaving(&ops);
}
