//! Exponentially-weighted moving average.
//!
//! AWG "predicts the stall period by recording the mean number of cycles at
//! which conditions are met" (§IV.B). The hardware-friendly formulation is an
//! EWMA with a power-of-two weight, which is what this module provides.

/// An exponentially-weighted moving average over `u64` samples.
///
/// The smoothing weight is `1/2^shift`: each new sample contributes
/// `sample / 2^shift` and the history decays accordingly. `shift = 2` (α =
/// 0.25) matches a cheap shift-and-add hardware implementation.
///
/// ```
/// let mut ewma = awg_sim::Ewma::new(2);
/// assert_eq!(ewma.value(), None); // no samples yet
/// ewma.record(100);
/// assert_eq!(ewma.value(), Some(100)); // first sample initializes
/// ewma.record(200);
/// assert_eq!(ewma.value(), Some(125)); // 100 + (200-100)/4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ewma {
    shift: u32,
    value: Option<u64>,
    samples: u64,
}

impl Ewma {
    /// Creates an EWMA with weight `1/2^shift`.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 32` (a weight that small would never move).
    pub fn new(shift: u32) -> Self {
        assert!(shift <= 32, "shift too large");
        Ewma {
            shift,
            value: None,
            samples: 0,
        }
    }

    /// Records a sample. The first sample initializes the average.
    pub fn record(&mut self, sample: u64) {
        self.samples += 1;
        self.value = Some(match self.value {
            None => sample,
            Some(v) => {
                if sample >= v {
                    v + ((sample - v) >> self.shift)
                } else {
                    v - ((v - sample) >> self.shift)
                }
            }
        });
    }

    /// The current average, or `None` before any sample.
    pub fn value(&self) -> Option<u64> {
        self.value
    }

    /// The current average, or `default` before any sample.
    pub fn value_or(&self, default: u64) -> u64 {
        self.value.unwrap_or(default)
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Clears all history.
    pub fn reset(&mut self) {
        self.value = None;
        self.samples = 0;
    }

    /// Decomposes the average into `(shift, value, samples)` for
    /// checkpointing.
    pub fn raw(&self) -> (u32, Option<u64>, u64) {
        (self.shift, self.value, self.samples)
    }

    /// Rebuilds an average from [`Ewma::raw`] parts.
    ///
    /// # Panics
    ///
    /// Panics if `shift > 32`, same as [`Ewma::new`].
    pub fn from_raw(shift: u32, value: Option<u64>, samples: u64) -> Self {
        assert!(shift <= 32, "shift too large");
        Ewma {
            shift,
            value,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(3);
        assert_eq!(e.value(), None);
        e.record(42);
        assert_eq!(e.value(), Some(42));
        assert_eq!(e.samples(), 1);
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = Ewma::new(2);
        e.record(0);
        for _ in 0..100 {
            e.record(1000);
        }
        let v = e.value().unwrap();
        assert!(v > 990, "converged to {v}");
    }

    #[test]
    fn decreasing_samples_pull_average_down() {
        let mut e = Ewma::new(1);
        e.record(1000);
        e.record(0);
        assert_eq!(e.value(), Some(500));
    }

    #[test]
    fn value_or_default() {
        let e = Ewma::new(2);
        assert_eq!(e.value_or(77), 77);
    }

    #[test]
    fn reset_clears_history() {
        let mut e = Ewma::new(2);
        e.record(5);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.samples(), 0);
    }

    #[test]
    #[should_panic(expected = "shift too large")]
    fn rejects_huge_shift() {
        Ewma::new(40);
    }
}
