//! Telemetry hub: per-WG progress accounting, windowed metric snapshots,
//! host-side self-profiling, and a Chrome-Trace-Format builder.
//!
//! The paper's claims are about *forward progress under contention* —
//! wake-to-resume latency, context-switch overhead, CU occupancy. This
//! module gives those quantities first-class observation points:
//!
//! * [`TelemetryHub`] — the per-run aggregation point the machine layer
//!   threads through its state transitions. It owns a private [`Stats`]
//!   registry that the run summary absorbs at report time.
//! * [`ProgressState`] — the telemetry-level classification of a WG's
//!   scheduling state (coarser than the machine's internal state enum so
//!   the accounting is policy-agnostic).
//! * [`MetricSnapshot`] — one cycle-window worth of deltas (occupancy per
//!   CU, atomics, swap traffic), serializable as a JSONL line.
//! * [`SelfProfile`] / [`ProfileReport`] — host wall-clock per subsystem
//!   plus simulated-cycles/sec and events/sec throughput.
//! * [`chrome`] — a small builder for Chrome-Trace-Format / Perfetto
//!   `trace_event` JSON (slices, counters, metadata).
//!
//! The hub is strictly an *observer*: it never feeds back into simulation
//! decisions, so enabling it cannot perturb the deterministic digest trail.

use std::time::Duration;

use crate::codec::{CodecError, Dec, Enc};
use crate::stats::Stats;
use crate::time::Cycle;

/// Number of [`ProgressState`] classes.
pub const PROGRESS_STATES: usize = 8;

/// Telemetry-level classification of a work-group's scheduling state.
///
/// This is intentionally coarser than the machine layer's internal state
/// enum: several internal states collapse into one accounting class (e.g.
/// both "swapped waiting" and "ready to swap back in" count as
/// [`ProgressState::SwappedOut`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressState {
    /// Not yet dispatched (pending or mid-dispatch).
    Queued,
    /// Resident on a CU and making forward progress.
    Running,
    /// Resident but blocked on a synchronization condition.
    Stalled,
    /// Resident but voluntarily descheduled (S_SLEEP).
    Sleeping,
    /// Context state is being written out to memory.
    SwapOut,
    /// Fully swapped out of the CU (waiting or ready to return).
    SwappedOut,
    /// Context state is being read back into a CU.
    SwapIn,
    /// Retired.
    Finished,
}

impl ProgressState {
    /// All states in a fixed order (matches each state's [`index`](Self::index)).
    pub const ALL: [ProgressState; PROGRESS_STATES] = [
        ProgressState::Queued,
        ProgressState::Running,
        ProgressState::Stalled,
        ProgressState::Sleeping,
        ProgressState::SwapOut,
        ProgressState::SwappedOut,
        ProgressState::SwapIn,
        ProgressState::Finished,
    ];

    /// Stable index of this state in `[0, PROGRESS_STATES)`.
    pub fn index(self) -> usize {
        match self {
            ProgressState::Queued => 0,
            ProgressState::Running => 1,
            ProgressState::Stalled => 2,
            ProgressState::Sleeping => 3,
            ProgressState::SwapOut => 4,
            ProgressState::SwappedOut => 5,
            ProgressState::SwapIn => 6,
            ProgressState::Finished => 7,
        }
    }

    /// Lower-case identifier used in stat names and JSONL keys.
    pub fn name(self) -> &'static str {
        match self {
            ProgressState::Queued => "queued",
            ProgressState::Running => "running",
            ProgressState::Stalled => "stalled",
            ProgressState::Sleeping => "sleeping",
            ProgressState::SwapOut => "swap_out",
            ProgressState::SwappedOut => "swapped_out",
            ProgressState::SwapIn => "swap_in",
            ProgressState::Finished => "finished",
        }
    }
}

/// Number of [`AttributionCause`] classes.
pub const ATTRIBUTION_CAUSES: usize = 7;

/// *Why* a work-group's cycles went where they went.
///
/// [`ProgressState`] answers "what was the WG doing"; the attribution
/// ledger answers "whose fault was it". The machine layer classifies each
/// state transition into one of these causes (e.g. a swap-out forced by a
/// CU loss is [`FaultStall`](Self::FaultStall), the same swap-out chosen
/// by the scheduler under oversubscription is
/// [`Preempted`](Self::Preempted)). Per WG, the per-cause cycle totals sum
/// to the run's elapsed cycles — the same invariant the state accounting
/// satisfies. A WG that never executed a single cycle spent its whole run
/// in [`Queued`](Self::Queued): that is the "never dispatched" signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributionCause {
    /// Waiting for first (or repeat) dispatch; no blame assignable yet.
    Queued,
    /// Resident and retiring instructions — the only productive cause.
    Executing,
    /// Blocked on a synchronization dependency (lock holder, barrier
    /// peers, monitored line).
    SyncWait,
    /// Voluntarily descheduled (S_SLEEP backoff).
    SleepWait,
    /// Scheduler-induced preemption: swap traffic and off-CU residence
    /// chosen by the policy, not forced by a fault.
    Preempted,
    /// Stall caused by an injected fault (CU loss eviction and the swap
    /// traffic it forces).
    FaultStall,
    /// Retired; cycles after the WG finished.
    Retired,
}

impl AttributionCause {
    /// All causes in a fixed order (matches each cause's
    /// [`index`](Self::index)).
    pub const ALL: [AttributionCause; ATTRIBUTION_CAUSES] = [
        AttributionCause::Queued,
        AttributionCause::Executing,
        AttributionCause::SyncWait,
        AttributionCause::SleepWait,
        AttributionCause::Preempted,
        AttributionCause::FaultStall,
        AttributionCause::Retired,
    ];

    /// Stable index of this cause in `[0, ATTRIBUTION_CAUSES)`.
    pub fn index(self) -> usize {
        match self {
            AttributionCause::Queued => 0,
            AttributionCause::Executing => 1,
            AttributionCause::SyncWait => 2,
            AttributionCause::SleepWait => 3,
            AttributionCause::Preempted => 4,
            AttributionCause::FaultStall => 5,
            AttributionCause::Retired => 6,
        }
    }

    /// Lower-case identifier used in stat names, JSONL keys, and counter
    /// track series.
    pub fn name(self) -> &'static str {
        match self {
            AttributionCause::Queued => "queued",
            AttributionCause::Executing => "executing",
            AttributionCause::SyncWait => "sync_wait",
            AttributionCause::SleepWait => "sleep_wait",
            AttributionCause::Preempted => "preempted",
            AttributionCause::FaultStall => "fault_stall",
            AttributionCause::Retired => "retired",
        }
    }
}

/// Direction of a context switch, for overhead attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDir {
    /// Context is leaving a CU.
    Out,
    /// Context is returning to a CU.
    In,
}

impl SwapDir {
    fn name(self) -> &'static str {
        match self {
            SwapDir::Out => "out",
            SwapDir::In => "in",
        }
    }
}

/// Configuration for a run's telemetry collection.
///
/// Telemetry is off by default; construct one of these and hand it to the
/// machine to opt in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Emit a [`MetricSnapshot`] every this many cycles (`None` disables
    /// snapshotting).
    pub snapshot_window: Option<Cycle>,
    /// Measure host wall-clock per subsystem while the run executes.
    pub profiling: bool,
}

/// Per-WG accounting record.
#[derive(Debug, Clone)]
struct WgAccount {
    state: ProgressState,
    since: Cycle,
    time: [Cycle; PROGRESS_STATES],
    cause: AttributionCause,
    cause_since: Cycle,
    cause_time: [Cycle; ATTRIBUTION_CAUSES],
    /// Cycle of the earliest wake notification not yet consumed by a
    /// transition back to `Running`.
    wake_pending: Option<Cycle>,
}

impl WgAccount {
    fn new() -> Self {
        WgAccount {
            state: ProgressState::Queued,
            since: 0,
            time: [0; PROGRESS_STATES],
            cause: AttributionCause::Queued,
            cause_since: 0,
            cause_time: [0; ATTRIBUTION_CAUSES],
            wake_pending: None,
        }
    }
}

/// Absolute totals sampled by the machine layer at a snapshot boundary.
///
/// The hub turns consecutive samples into per-window deltas; the machine
/// only ever reports cumulative values, which keeps the sampling code
/// trivial and the delta logic in one place.
#[derive(Debug, Clone, Default)]
pub struct SnapshotSample {
    /// Cycle at which the sample was taken (the window's end boundary).
    pub cycle: Cycle,
    /// Number of resident WGs per CU.
    pub occupancy: Vec<u32>,
    /// Number of WGs currently in each [`ProgressState`] (indexed by
    /// [`ProgressState::index`]).
    pub state_counts: [u64; PROGRESS_STATES],
    /// Number of WGs currently attributed to each [`AttributionCause`]
    /// (indexed by [`AttributionCause::index`]).
    pub cause_counts: [u64; ATTRIBUTION_CAUSES],
    /// Cumulative atomic operations executed since the start of the run.
    pub atomics_total: u64,
    /// Cumulative swap-outs initiated since the start of the run.
    pub swap_outs_total: u64,
    /// Cumulative swap-ins initiated since the start of the run.
    pub swap_ins_total: u64,
}

/// One cycle-window worth of metrics, derived from two consecutive
/// [`SnapshotSample`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// End boundary of the window (cycles).
    pub cycle: Cycle,
    /// Width of the window (cycles).
    pub window: Cycle,
    /// Resident WGs per CU at the window boundary.
    pub occupancy: Vec<u32>,
    /// WGs in each [`ProgressState`] at the window boundary (indexed by
    /// [`ProgressState::index`]).
    pub state_counts: [u64; PROGRESS_STATES],
    /// WGs attributed to each [`AttributionCause`] at the window boundary
    /// (indexed by [`AttributionCause::index`]).
    pub cause_counts: [u64; ATTRIBUTION_CAUSES],
    /// Atomic operations executed during the window.
    pub atomics: u64,
    /// Swap-outs initiated during the window.
    pub swap_outs: u64,
    /// Swap-ins initiated during the window.
    pub swap_ins: u64,
}

impl MetricSnapshot {
    /// Renders this snapshot as a single JSONL line (no trailing newline).
    ///
    /// Schema: `{"cycle":C,"window":W,"occupancy":[..],"states":{"queued":N,
    /// ...},"attribution":{"executing":N,...},"atomics":A,"swap_outs":O,
    /// "swap_ins":I}` (the `attribution` object is additive over the PR 3
    /// schema, so old consumers keep parsing).
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"cycle\":{},\"window\":{},\"occupancy\":[",
            self.cycle, self.window
        );
        for (i, occ) in self.occupancy.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{occ}");
        }
        out.push_str("],\"states\":{");
        for (i, state) in ProgressState::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", state.name(), self.state_counts[i]);
        }
        out.push_str("},\"attribution\":{");
        for (i, cause) in AttributionCause::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", cause.name(), self.cause_counts[i]);
        }
        let _ = write!(
            out,
            "}},\"atomics\":{},\"swap_outs\":{},\"swap_ins\":{}}}",
            self.atomics, self.swap_outs, self.swap_ins
        );
        out
    }
}

/// Number of [`Subsystem`] classes the self-profiler attributes time to.
pub const SUBSYSTEMS: usize = 5;

/// Host-side subsystem classification for self-profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// Instruction execution and dispatch events.
    Execute,
    /// Wake delivery, timeouts, and policy ticks.
    Wakeup,
    /// Context swap-out / swap-in completion.
    ContextSwitch,
    /// Invariant oracle sweeps and digest hashing.
    Check,
    /// Everything else.
    Other,
}

impl Subsystem {
    /// All subsystems in index order.
    pub const ALL: [Subsystem; SUBSYSTEMS] = [
        Subsystem::Execute,
        Subsystem::Wakeup,
        Subsystem::ContextSwitch,
        Subsystem::Check,
        Subsystem::Other,
    ];

    fn index(self) -> usize {
        match self {
            Subsystem::Execute => 0,
            Subsystem::Wakeup => 1,
            Subsystem::ContextSwitch => 2,
            Subsystem::Check => 3,
            Subsystem::Other => 4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Execute => "execute",
            Subsystem::Wakeup => "wakeup",
            Subsystem::ContextSwitch => "context-switch",
            Subsystem::Check => "check",
            Subsystem::Other => "other",
        }
    }
}

/// Accumulated host wall-clock and event counts per subsystem.
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    wall: [Duration; SUBSYSTEMS],
    events: [u64; SUBSYSTEMS],
}

impl SelfProfile {
    /// Attributes one handled event's host wall-clock to `subsystem`.
    pub fn note(&mut self, subsystem: Subsystem, wall: Duration) {
        let i = subsystem.index();
        self.wall[i] += wall;
        self.events[i] += 1;
    }

    /// Total number of events attributed so far.
    pub fn events(&self) -> u64 {
        self.events.iter().sum()
    }
}

/// End-of-run self-profiling summary.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Total host wall-clock for the run.
    pub total_wall: Duration,
    /// Simulated cycles elapsed.
    pub sim_cycles: Cycle,
    /// Total events handled.
    pub events: u64,
    /// Per-subsystem `(name, wall, events)` rows, in [`Subsystem::ALL`]
    /// order.
    pub per_subsystem: Vec<(&'static str, Duration, u64)>,
}

impl ProfileReport {
    /// Simulated cycles per host second (0.0 when wall time is zero).
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs > 0.0 {
            self.sim_cycles as f64 / secs
        } else {
            0.0
        }
    }

    /// Events handled per host second (0.0 when wall time is zero).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "self-profile: {:.3} s wall, {} cycles ({:.0} cycles/s), {} events ({:.0} events/s)",
            self.total_wall.as_secs_f64(),
            self.sim_cycles,
            self.cycles_per_sec(),
            self.events,
            self.events_per_sec(),
        )?;
        for (name, wall, events) in &self.per_subsystem {
            writeln!(
                f,
                "  {name:<16} {:>9.3} ms  {events} events",
                wall.as_secs_f64() * 1e3
            )?;
        }
        Ok(())
    }
}

/// The per-run telemetry aggregation point.
///
/// The machine layer reports WG state transitions, wake notifications,
/// context-switch cost breakdowns, and windowed [`SnapshotSample`]s; the
/// hub folds them into a private [`Stats`] registry plus retained snapshot
/// records. Call [`finalize`](Self::finalize) once at end of run to close
/// open state intervals and publish the per-WG time-in-state
/// distributions.
#[derive(Debug, Clone)]
pub struct TelemetryHub {
    config: TelemetryConfig,
    stats: Stats,
    wgs: Vec<WgAccount>,
    snapshot_next: Option<Cycle>,
    prev_atomics: u64,
    prev_swap_outs: u64,
    prev_swap_ins: u64,
    snapshots: Vec<MetricSnapshot>,
    profile: SelfProfile,
    latest: Cycle,
    end_cycle: Option<Cycle>,
}

impl TelemetryHub {
    /// Creates a hub with the given configuration.
    pub fn new(config: TelemetryConfig) -> Self {
        TelemetryHub {
            config,
            stats: Stats::new(),
            wgs: Vec::new(),
            snapshot_next: config.snapshot_window,
            prev_atomics: 0,
            prev_swap_outs: 0,
            prev_swap_ins: 0,
            snapshots: Vec::new(),
            profile: SelfProfile::default(),
            latest: 0,
            end_cycle: None,
        }
    }

    /// The configuration this hub was created with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Whether host self-profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.config.profiling
    }

    fn account(&mut self, wg: usize) -> &mut WgAccount {
        if wg >= self.wgs.len() {
            self.wgs.resize_with(wg + 1, WgAccount::new);
        }
        &mut self.wgs[wg]
    }

    /// Pre-registers `n` WGs so that WGs which never transition (e.g. a
    /// never-dispatched WG in a deadlocked run) are still accounted from
    /// cycle 0 in [`ProgressState::Queued`].
    pub fn ensure_wgs(&mut self, n: usize) {
        if n > self.wgs.len() {
            self.wgs.resize_with(n, WgAccount::new);
        }
    }

    /// Records that work-group `wg` entered `state` at cycle `at`.
    ///
    /// The first transition for a WG implicitly opens a
    /// [`ProgressState::Queued`] interval starting at cycle 0, so the
    /// per-WG state times always sum to the run's elapsed cycles.
    pub fn transition(&mut self, wg: usize, state: ProgressState, at: Cycle) {
        self.latest = self.latest.max(at);
        let a = self.account(wg);
        let idx = a.state.index();
        a.time[idx] += at.saturating_sub(a.since);
        a.state = state;
        a.since = at;
        if state == ProgressState::Running {
            if let Some(woke) = a.wake_pending.take() {
                let h = self.stats.hist("telemetry_wake_to_resume_cycles");
                self.stats.observe(h, at.saturating_sub(woke));
            }
        } else if state == ProgressState::Finished {
            a.wake_pending = None;
        }
    }

    /// Attributes work-group `wg`'s cycles to `cause` from cycle `at`
    /// onward, closing the previously open cause interval.
    ///
    /// Like [`transition`](Self::transition), the first call implicitly
    /// opens an [`AttributionCause::Queued`] interval at cycle 0, so the
    /// per-WG cause times always sum to the run's elapsed cycles.
    pub fn attribute(&mut self, wg: usize, cause: AttributionCause, at: Cycle) {
        self.latest = self.latest.max(at);
        let a = self.account(wg);
        let idx = a.cause.index();
        a.cause_time[idx] += at.saturating_sub(a.cause_since);
        a.cause = cause;
        a.cause_since = at;
    }

    /// Records that a wake notification for `wg` fired at cycle `at`.
    ///
    /// Only the earliest un-consumed wake is kept; the latency is observed
    /// when the WG next transitions back to [`ProgressState::Running`].
    pub fn note_wake(&mut self, wg: usize, at: Cycle) {
        let a = self.account(wg);
        if a.wake_pending.is_none() {
            a.wake_pending = Some(at);
        }
    }

    /// Records one context switch's cost breakdown: memory traffic cycles,
    /// fixed pipeline overhead, and scheduler stall.
    pub fn note_ctx_switch(&mut self, dir: SwapDir, traffic: Cycle, fixed: Cycle, stall: Cycle) {
        let d = self
            .stats
            .dist(&format!("telemetry_ctx_{}_traffic_cycles", dir.name()));
        self.stats.sample(d, traffic);
        let d = self
            .stats
            .dist(&format!("telemetry_ctx_{}_fixed_cycles", dir.name()));
        self.stats.sample(d, fixed);
        let d = self
            .stats
            .dist(&format!("telemetry_ctx_{}_stall_cycles", dir.name()));
        self.stats.sample(d, stall);
        let h = self
            .stats
            .hist(&format!("telemetry_ctx_{}_total_cycles", dir.name()));
        self.stats.observe(h, traffic + fixed + stall);
    }

    /// If a snapshot boundary is due at or before `cycle`, returns that
    /// boundary so the caller can take a [`SnapshotSample`] there.
    pub fn due_snapshot(&self, cycle: Cycle) -> Option<Cycle> {
        self.snapshot_next.filter(|&next| next <= cycle)
    }

    /// Folds an absolute sample into a per-window [`MetricSnapshot`] and
    /// schedules the next boundary.
    pub fn push_snapshot(&mut self, sample: SnapshotSample) {
        let window = self.config.snapshot_window.unwrap_or(0);
        self.snapshots.push(MetricSnapshot {
            cycle: sample.cycle,
            window,
            occupancy: sample.occupancy,
            state_counts: sample.state_counts,
            cause_counts: sample.cause_counts,
            atomics: sample.atomics_total.saturating_sub(self.prev_atomics),
            swap_outs: sample.swap_outs_total.saturating_sub(self.prev_swap_outs),
            swap_ins: sample.swap_ins_total.saturating_sub(self.prev_swap_ins),
        });
        self.prev_atomics = sample.atomics_total;
        self.prev_swap_outs = sample.swap_outs_total;
        self.prev_swap_ins = sample.swap_ins_total;
        if let (Some(next), Some(window)) = (self.snapshot_next, self.config.snapshot_window) {
            self.snapshot_next = Some(next + window);
        }
    }

    /// The windowed snapshots recorded so far, oldest first.
    pub fn snapshots(&self) -> &[MetricSnapshot] {
        &self.snapshots
    }

    /// Attributes one handled event's host wall-clock to `subsystem`.
    pub fn profile_note(&mut self, subsystem: Subsystem, wall: Duration) {
        self.profile.note(subsystem, wall);
    }

    /// Builds the end-of-run self-profiling summary.
    pub fn profile_report(&self, total_wall: Duration, sim_cycles: Cycle) -> ProfileReport {
        ProfileReport {
            total_wall,
            sim_cycles,
            events: self.profile.events(),
            per_subsystem: Subsystem::ALL
                .iter()
                .map(|&s| {
                    let i = s.index();
                    (s.name(), self.profile.wall[i], self.profile.events[i])
                })
                .collect(),
        }
    }

    /// Closes every open state interval and publishes the per-WG
    /// time-in-state distributions into the hub's registry.
    ///
    /// Intervals close at `max(end, latest transition timestamp)`: the
    /// machine stamps some transitions at instruction-retire time, which
    /// can sit a few cycles past the last scheduled event. The cycle the
    /// hub actually closed at is [`TelemetryHub::end_cycle`].
    ///
    /// Idempotent: only the first call has an effect.
    pub fn finalize(&mut self, end: Cycle) {
        if self.end_cycle.is_some() {
            return;
        }
        let end = end.max(self.latest);
        self.end_cycle = Some(end);
        for wg in 0..self.wgs.len() {
            let a = &mut self.wgs[wg];
            let idx = a.state.index();
            a.time[idx] += end.saturating_sub(a.since);
            a.since = end;
            let idx = a.cause.index();
            a.cause_time[idx] += end.saturating_sub(a.cause_since);
            a.cause_since = end;
        }
        for state in ProgressState::ALL {
            let d = self
                .stats
                .dist(&format!("telemetry_wg_cycles_{}", state.name()));
            for wg in 0..self.wgs.len() {
                let t = self.wgs[wg].time[state.index()];
                self.stats.sample(d, t);
            }
        }
        for cause in AttributionCause::ALL {
            let d = self
                .stats
                .dist(&format!("telemetry_wg_attr_{}", cause.name()));
            for wg in 0..self.wgs.len() {
                let t = self.wgs[wg].cause_time[cause.index()];
                self.stats.sample(d, t);
            }
        }
    }

    /// The cycle [`TelemetryHub::finalize`] closed every interval at
    /// (`None` until finalized). Every WG's state times sum to exactly
    /// this value.
    pub fn end_cycle(&self) -> Option<Cycle> {
        self.end_cycle
    }

    /// Per-WG time-in-state totals (indexed by [`ProgressState::index`]),
    /// if the hub has seen that WG.
    pub fn wg_state_times(&self, wg: usize) -> Option<[Cycle; PROGRESS_STATES]> {
        self.wgs.get(wg).map(|a| a.time)
    }

    /// Per-WG cycle-attribution totals (indexed by
    /// [`AttributionCause::index`]), if the hub has seen that WG.
    pub fn wg_cause_times(&self, wg: usize) -> Option<[Cycle; ATTRIBUTION_CAUSES]> {
        self.wgs.get(wg).map(|a| a.cause_time)
    }

    /// Machine-wide cycle-attribution totals: the per-cause sums across
    /// every accounted WG. After [`finalize`](Self::finalize) the grand
    /// total equals `wg_count() * end_cycle`.
    pub fn cause_totals(&self) -> [Cycle; ATTRIBUTION_CAUSES] {
        let mut totals = [0; ATTRIBUTION_CAUSES];
        for a in &self.wgs {
            for (t, &c) in totals.iter_mut().zip(a.cause_time.iter()) {
                *t += c;
            }
        }
        totals
    }

    /// Number of WGs the hub has accounted.
    pub fn wg_count(&self) -> usize {
        self.wgs.len()
    }

    /// The hub's private measurement registry (absorb into the run summary
    /// with [`Stats::absorb`]).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Serializes every simulation-visible accumulator for checkpointing.
    ///
    /// The host [`SelfProfile`] is deliberately excluded: wall-clock
    /// attribution belongs to whichever process happens to be running, and
    /// it never feeds the digest trail, Stats report, or CSVs that restore
    /// must reproduce byte-for-byte.
    pub fn save(&self, enc: &mut Enc) {
        let mut stats_enc = Enc::new();
        self.stats.save(&mut stats_enc);
        enc.usize(stats_enc.len());
        enc.raw(stats_enc.bytes());
        enc.usize(self.wgs.len());
        for a in &self.wgs {
            enc.u8(a.state.index() as u8);
            enc.u64(a.since);
            for &t in &a.time {
                enc.u64(t);
            }
            enc.u8(a.cause.index() as u8);
            enc.u64(a.cause_since);
            for &t in &a.cause_time {
                enc.u64(t);
            }
            enc.opt_u64(a.wake_pending);
        }
        enc.opt_u64(self.snapshot_next);
        enc.u64(self.prev_atomics);
        enc.u64(self.prev_swap_outs);
        enc.u64(self.prev_swap_ins);
        enc.usize(self.snapshots.len());
        for s in &self.snapshots {
            enc.u64(s.cycle);
            enc.u64(s.window);
            enc.usize(s.occupancy.len());
            for &o in &s.occupancy {
                enc.u32(o);
            }
            for &c in &s.state_counts {
                enc.u64(c);
            }
            for &c in &s.cause_counts {
                enc.u64(c);
            }
            enc.u64(s.atomics);
            enc.u64(s.swap_outs);
            enc.u64(s.swap_ins);
        }
        enc.u64(self.latest);
        enc.opt_u64(self.end_cycle);
    }

    /// Overlays state serialized by [`TelemetryHub::save`] onto this hub.
    ///
    /// The hub must have been constructed with the same
    /// [`TelemetryConfig`] as the one that was saved; the configuration
    /// itself is identity, not state, and is not serialized.
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let stats_len = dec.count(1)?;
        let stats_bytes = dec.take(stats_len)?;
        let mut stats_dec = Dec::new(stats_bytes);
        self.stats = Stats::load(&mut stats_dec)?;
        stats_dec.finish()?;
        let n = dec.count(1 + 8 + 8 * PROGRESS_STATES + 1 + 8 + 8 * ATTRIBUTION_CAUSES + 1)?;
        self.wgs.clear();
        for _ in 0..n {
            let idx = dec.u8()? as usize;
            let state = *ProgressState::ALL
                .get(idx)
                .ok_or_else(|| CodecError::Invalid(format!("progress state {idx}")))?;
            let since = dec.u64()?;
            let mut time = [0; PROGRESS_STATES];
            for t in time.iter_mut() {
                *t = dec.u64()?;
            }
            let idx = dec.u8()? as usize;
            let cause = *AttributionCause::ALL
                .get(idx)
                .ok_or_else(|| CodecError::Invalid(format!("attribution cause {idx}")))?;
            let cause_since = dec.u64()?;
            let mut cause_time = [0; ATTRIBUTION_CAUSES];
            for t in cause_time.iter_mut() {
                *t = dec.u64()?;
            }
            let wake_pending = dec.opt_u64()?;
            self.wgs.push(WgAccount {
                state,
                since,
                time,
                cause,
                cause_since,
                cause_time,
                wake_pending,
            });
        }
        self.snapshot_next = dec.opt_u64()?;
        self.prev_atomics = dec.u64()?;
        self.prev_swap_outs = dec.u64()?;
        self.prev_swap_ins = dec.u64()?;
        let n = dec.count(8 * (2 + PROGRESS_STATES + ATTRIBUTION_CAUSES + 3) + 8)?;
        self.snapshots.clear();
        for _ in 0..n {
            let cycle = dec.u64()?;
            let window = dec.u64()?;
            let occ_n = dec.count(4)?;
            let mut occupancy = Vec::with_capacity(occ_n);
            for _ in 0..occ_n {
                occupancy.push(dec.u32()?);
            }
            let mut state_counts = [0; PROGRESS_STATES];
            for c in state_counts.iter_mut() {
                *c = dec.u64()?;
            }
            let mut cause_counts = [0; ATTRIBUTION_CAUSES];
            for c in cause_counts.iter_mut() {
                *c = dec.u64()?;
            }
            self.snapshots.push(MetricSnapshot {
                cycle,
                window,
                occupancy,
                state_counts,
                cause_counts,
                atomics: dec.u64()?,
                swap_outs: dec.u64()?,
                swap_ins: dec.u64()?,
            });
        }
        self.latest = dec.u64()?;
        self.end_cycle = dec.opt_u64()?;
        Ok(())
    }
}

/// Chrome-Trace-Format (`trace_event`) JSON builder.
///
/// Produces the JSON-object flavour (`{"traceEvents": [...]}`) that both
/// `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
/// accept. Timestamps are microseconds (fractional values are allowed and
/// used, since one cycle at the paper's 2 GHz clock is 0.0005 µs).
pub mod chrome {
    use crate::json::escape;
    use std::fmt::Write as _;

    /// Incremental builder for a Chrome-Trace-Format JSON document.
    #[derive(Debug, Default)]
    pub struct TraceBuilder {
        events: Vec<String>,
    }

    impl TraceBuilder {
        /// Creates an empty trace.
        pub fn new() -> Self {
            Self::default()
        }

        /// Number of events recorded so far.
        pub fn len(&self) -> usize {
            self.events.len()
        }

        /// Whether no events have been recorded.
        pub fn is_empty(&self) -> bool {
            self.events.is_empty()
        }

        /// Names a process track (`ph:"M"`, `process_name`).
        pub fn process_name(&mut self, pid: u64, name: &str) {
            self.events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape(name)
            ));
        }

        /// Names a thread track (`ph:"M"`, `thread_name`).
        pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
            self.events.push(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape(name)
            ));
        }

        /// Adds a complete slice (`ph:"X"`) with optional string args.
        #[allow(clippy::too_many_arguments)] // mirrors the trace_event fields
        pub fn complete_slice(
            &mut self,
            pid: u64,
            tid: u64,
            name: &str,
            cat: &str,
            ts_us: f64,
            dur_us: f64,
            args: &[(&str, String)],
        ) {
            let mut ev = format!(
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"cat\":{},\
                 \"ts\":{ts_us},\"dur\":{dur_us}",
                escape(name),
                escape(cat),
            );
            push_args(&mut ev, args);
            ev.push('}');
            self.events.push(ev);
        }

        /// Adds a counter sample (`ph:"C"`) with one or more series.
        pub fn counter(&mut self, pid: u64, name: &str, ts_us: f64, series: &[(&str, f64)]) {
            let mut ev = format!(
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"name\":{},\"ts\":{ts_us},\"args\":{{",
                escape(name)
            );
            for (i, (key, value)) in series.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                let _ = write!(ev, "{}:{value}", escape(key));
            }
            ev.push_str("}}");
            self.events.push(ev);
        }

        /// Adds an instant event (`ph:"i"`, thread scope) with optional
        /// string args.
        pub fn instant(
            &mut self,
            pid: u64,
            tid: u64,
            name: &str,
            cat: &str,
            ts_us: f64,
            args: &[(&str, String)],
        ) {
            let mut ev = format!(
                "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":{},\"cat\":{},\
                 \"ts\":{ts_us},\"s\":\"t\"",
                escape(name),
                escape(cat),
            );
            push_args(&mut ev, args);
            ev.push('}');
            self.events.push(ev);
        }

        /// Serializes the trace as a `{"traceEvents": [...]}` document.
        pub fn finish(self) -> String {
            let mut out = String::from("{\"traceEvents\":[\n");
            for (i, ev) in self.events.iter().enumerate() {
                out.push_str(ev);
                if i + 1 < self.events.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
            out
        }
    }

    fn push_args(ev: &mut String, args: &[(&str, String)]) {
        if args.is_empty() {
            return;
        }
        ev.push_str(",\"args\":{");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                ev.push(',');
            }
            let _ = write!(ev, "{}:{}", escape(key), escape(value));
        }
        ev.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn state_times_sum_to_elapsed() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.transition(0, ProgressState::Running, 100);
        hub.transition(0, ProgressState::Stalled, 250);
        hub.transition(0, ProgressState::Running, 400);
        hub.transition(0, ProgressState::Finished, 900);
        hub.transition(1, ProgressState::Running, 50);
        hub.finalize(1000);
        for wg in 0..hub.wg_count() {
            let times = hub.wg_state_times(wg).unwrap();
            let total: Cycle = times.iter().sum();
            assert_eq!(total, 1000, "wg {wg} state times must sum to elapsed");
        }
        let times = hub.wg_state_times(0).unwrap();
        assert_eq!(times[ProgressState::Queued.index()], 100);
        assert_eq!(times[ProgressState::Running.index()], 150 + 500);
        assert_eq!(times[ProgressState::Stalled.index()], 150);
        assert_eq!(times[ProgressState::Finished.index()], 100);
    }

    #[test]
    fn wake_to_resume_latency_is_observed() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.transition(0, ProgressState::Sleeping, 10);
        hub.note_wake(0, 100);
        // A later duplicate wake must not overwrite the earliest one.
        hub.note_wake(0, 150);
        hub.transition(0, ProgressState::Running, 180);
        hub.finalize(200);
        let buckets = hub
            .stats()
            .hist_buckets_by_name("telemetry_wake_to_resume_cycles")
            .unwrap();
        // One observation of 80 cycles → bucket [64, 128).
        assert_eq!(buckets, vec![(64, 1)]);
    }

    #[test]
    fn snapshots_are_window_deltas() {
        let mut hub = TelemetryHub::new(TelemetryConfig {
            snapshot_window: Some(100),
            profiling: false,
        });
        assert_eq!(hub.due_snapshot(99), None);
        assert_eq!(hub.due_snapshot(100), Some(100));
        hub.push_snapshot(SnapshotSample {
            cycle: 100,
            occupancy: vec![2, 1],
            atomics_total: 40,
            swap_outs_total: 1,
            swap_ins_total: 0,
            ..SnapshotSample::default()
        });
        assert_eq!(hub.due_snapshot(150), None);
        assert_eq!(hub.due_snapshot(230), Some(200));
        hub.push_snapshot(SnapshotSample {
            cycle: 200,
            occupancy: vec![2, 2],
            cause_counts: [1, 2, 0, 0, 0, 0, 1],
            atomics_total: 90,
            swap_outs_total: 3,
            swap_ins_total: 2,
            ..SnapshotSample::default()
        });
        let snaps = hub.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].atomics, 40);
        assert_eq!(snaps[1].atomics, 50);
        assert_eq!(snaps[1].swap_outs, 2);
        assert_eq!(snaps[1].swap_ins, 2);
        let line = snaps[1].to_jsonl();
        let parsed = json::parse(&line).expect("snapshot line must be valid JSON");
        assert_eq!(parsed.get("cycle").unwrap().as_f64(), Some(200.0));
        assert_eq!(parsed.get("atomics").unwrap().as_f64(), Some(50.0));
        let states = parsed.get("states").unwrap();
        assert_eq!(states.get("running").unwrap().as_f64(), Some(0.0));
        let attr = parsed.get("attribution").unwrap();
        assert_eq!(attr.get("executing").unwrap().as_f64(), Some(2.0));
        assert_eq!(attr.get("retired").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn cause_times_sum_to_elapsed() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.ensure_wgs(3);
        hub.attribute(0, AttributionCause::Executing, 100);
        hub.attribute(0, AttributionCause::SyncWait, 250);
        hub.attribute(0, AttributionCause::Executing, 400);
        hub.attribute(0, AttributionCause::Retired, 900);
        hub.attribute(1, AttributionCause::Executing, 50);
        hub.attribute(1, AttributionCause::FaultStall, 300);
        // WG 2 never dispatches: all cycles stay Queued.
        hub.finalize(1000);
        for wg in 0..hub.wg_count() {
            let times = hub.wg_cause_times(wg).unwrap();
            let total: Cycle = times.iter().sum();
            assert_eq!(total, 1000, "wg {wg} cause times must sum to elapsed");
        }
        let t0 = hub.wg_cause_times(0).unwrap();
        assert_eq!(t0[AttributionCause::Queued.index()], 100);
        assert_eq!(t0[AttributionCause::Executing.index()], 150 + 500);
        assert_eq!(t0[AttributionCause::SyncWait.index()], 150);
        assert_eq!(t0[AttributionCause::Retired.index()], 100);
        let t1 = hub.wg_cause_times(1).unwrap();
        assert_eq!(t1[AttributionCause::FaultStall.index()], 700);
        let t2 = hub.wg_cause_times(2).unwrap();
        assert_eq!(t2[AttributionCause::Queued.index()], 1000);
        assert_eq!(
            t2[AttributionCause::Executing.index()],
            0,
            "never dispatched"
        );
        let totals = hub.cause_totals();
        assert_eq!(totals.iter().sum::<Cycle>(), 3 * 1000);
        // finalize publishes per-cause distributions.
        assert!(hub
            .stats()
            .dist_summary_by_name("telemetry_wg_attr_executing")
            .is_some());
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.transition(0, ProgressState::Running, 10);
        hub.finalize(100);
        hub.finalize(500);
        let times = hub.wg_state_times(0).unwrap();
        assert_eq!(times.iter().sum::<Cycle>(), 100);
    }

    #[test]
    fn ctx_switch_breakdown_lands_in_stats() {
        let mut hub = TelemetryHub::new(TelemetryConfig::default());
        hub.note_ctx_switch(SwapDir::Out, 120, 30, 5);
        hub.note_ctx_switch(SwapDir::In, 90, 30, 0);
        let s = hub.stats();
        let d = s
            .dist_summary_by_name("telemetry_ctx_out_traffic_cycles")
            .unwrap();
        assert_eq!((d.count, d.sum), (1, 120));
        let d = s
            .dist_summary_by_name("telemetry_ctx_in_fixed_cycles")
            .unwrap();
        assert_eq!((d.count, d.sum), (1, 30));
        assert!(s
            .hist_buckets_by_name("telemetry_ctx_out_total_cycles")
            .is_some());
    }

    #[test]
    fn profile_report_computes_rates() {
        let mut hub = TelemetryHub::new(TelemetryConfig {
            snapshot_window: None,
            profiling: true,
        });
        hub.profile_note(Subsystem::Execute, Duration::from_millis(10));
        hub.profile_note(Subsystem::Wakeup, Duration::from_millis(5));
        let report = hub.profile_report(Duration::from_secs(1), 2_000_000);
        assert_eq!(report.events, 2);
        assert!((report.cycles_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((report.events_per_sec() - 2.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("execute"));
        assert!(text.contains("cycles/s"));
    }

    #[test]
    fn hub_save_load_round_trips_mid_run_state() {
        let config = TelemetryConfig {
            snapshot_window: Some(100),
            profiling: false,
        };
        let mut hub = TelemetryHub::new(config);
        hub.ensure_wgs(3);
        hub.transition(0, ProgressState::Running, 10);
        hub.attribute(0, AttributionCause::Executing, 10);
        hub.note_wake(1, 40);
        hub.note_ctx_switch(SwapDir::Out, 120, 30, 5);
        hub.push_snapshot(SnapshotSample {
            cycle: 100,
            occupancy: vec![2, 1],
            state_counts: [1, 1, 0, 0, 0, 0, 0, 1],
            cause_counts: [2, 1, 0, 0, 0, 0, 0],
            atomics_total: 40,
            swap_outs_total: 1,
            swap_ins_total: 0,
        });

        let mut enc = Enc::new();
        hub.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = TelemetryHub::new(config);
        let mut dec = Dec::new(&bytes);
        restored.load(&mut dec).unwrap();
        dec.finish().unwrap();

        // Continue both identically; outcomes must match exactly.
        for h in [&mut hub, &mut restored] {
            h.transition(1, ProgressState::Running, 130);
            h.attribute(1, AttributionCause::Executing, 130);
            h.push_snapshot(SnapshotSample {
                cycle: 200,
                occupancy: vec![2, 2],
                state_counts: [0, 2, 0, 0, 0, 0, 0, 1],
                cause_counts: [1, 2, 0, 0, 0, 0, 0],
                atomics_total: 90,
                swap_outs_total: 3,
                swap_ins_total: 2,
            });
            h.finalize(250);
        }
        assert_eq!(restored.snapshots(), hub.snapshots());
        assert_eq!(restored.end_cycle(), hub.end_cycle());
        assert_eq!(restored.stats().to_string(), hub.stats().to_string());
        for wg in 0..hub.wg_count() {
            assert_eq!(restored.wg_state_times(wg), hub.wg_state_times(wg));
            assert_eq!(restored.wg_cause_times(wg), hub.wg_cause_times(wg));
        }
        // And the re-encoding is a fixed point.
        let mut e1 = Enc::new();
        hub.save(&mut e1);
        let mut e2 = Enc::new();
        restored.save(&mut e2);
        assert_eq!(e1.bytes(), e2.bytes());
    }

    #[test]
    fn chrome_builder_emits_valid_json() {
        let mut b = chrome::TraceBuilder::new();
        b.process_name(0, "GPU");
        b.thread_name(0, 1, "CU 1");
        b.complete_slice(0, 1, "WG 3", "residency", 0.5, 12.25, &[("wg", "3".into())]);
        b.counter(0, "occupancy cu1", 0.5, &[("resident", 2.0)]);
        b.instant(0, 1, "timeout", "sched", 3.0, &[]);
        assert_eq!(b.len(), 5);
        let doc = b.finish();
        let parsed = json::parse(&doc).expect("chrome trace must parse");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 5);
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("ts").unwrap().as_f64(), Some(0.5));
        assert_eq!(slice.get("dur").unwrap().as_f64(), Some(12.25));
        assert_eq!(slice.get("tid").unwrap().as_f64(), Some(1.0));
    }
}
