//! Small deterministic PRNGs (SplitMix64 and Xoshiro256**).
//!
//! The simulator must be bit-reproducible across runs and platforms, so it
//! carries its own tiny generators instead of depending on thread-local or
//! OS entropy. SplitMix64 seeds Xoshiro256**, the main generator.

/// SplitMix64: a tiny, fast generator used mainly for seeding.
///
/// Reference: Sebastiano Vigna, <https://prng.di.unimi.it/splitmix64.c>.
///
/// ```
/// let mut sm = awg_sim::SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(awg_sim::SplitMix64::new(42).next_u64(), a); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the simulator's general-purpose generator.
///
/// Reference: Blackman & Vigna, <https://prng.di.unimi.it/xoshiro256starstar.c>.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator seeded via SplitMix64 from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // Xoshiro must not be seeded with all zeros; SplitMix64 output of any
        // seed is never four zeros in a row.
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's method with rejection for unbiased sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in the inclusive range
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_value() {
        // First output for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256StarStar::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = Xoshiro256StarStar::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.next_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::new(0).next_below(0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = Xoshiro256StarStar::new(13);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (700..=1300).contains(&b),
                "bucket count {b} outside tolerance"
            );
        }
    }
}
