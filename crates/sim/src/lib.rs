//! Deterministic discrete-event simulation engine for the AWG GPU simulator.
//!
//! This crate is the lowest layer of the reproduction of *Independent Forward
//! Progress of Work-groups* (ISCA 2020). It provides:
//!
//! * [`EventQueue`] — a deterministic, tie-break-stable priority queue of
//!   timed events (the heart of the simulator's main loop),
//! * [`Stats`] — a registry of named counters, distributions and log₂
//!   histograms used by every other crate to record measurements,
//! * [`rng`] — a small, dependency-free deterministic PRNG
//!   (SplitMix64 / Xoshiro256**) so that identical seeds produce
//!   bit-identical simulations,
//! * [`Ewma`] — the exponentially-weighted moving average used by AWG's
//!   stall-time predictor (§IV.B of the paper),
//! * [`Fingerprint64`] — an order-sensitive state hasher for the
//!   machine-layer digests the determinism harness compares,
//! * cycle/time conversion helpers for the paper's 2 GHz baseline clock.
//!
//! # Example
//!
//! ```
//! use awg_sim::EventQueue;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Tock }
//!
//! let mut q = EventQueue::new();
//! q.schedule(10, Ev::Tock);
//! q.schedule(5, Ev::Tick);
//! assert_eq!(q.pop(), Some((5, Ev::Tick)));
//! assert_eq!(q.pop(), Some((10, Ev::Tock)));
//! assert_eq!(q.pop(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod ewma;
pub mod fingerprint;
pub mod json;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use codec::{crc32, CodecError, Dec, Enc};
pub use event::EventQueue;
pub use ewma::Ewma;
pub use fingerprint::{first_divergence, Fingerprint64};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use stats::{CounterId, DistId, DistSummary, HistId, Stats};
pub use telemetry::{
    AttributionCause, MetricSnapshot, ProfileReport, ProgressState, SnapshotSample, Subsystem,
    TelemetryConfig, TelemetryHub, ATTRIBUTION_CAUSES,
};
pub use time::{cycles_to_ns, cycles_to_us, us_to_cycles, Cycle, BASELINE_CLOCK_GHZ};
