//! Order-sensitive state fingerprinting for determinism checks.
//!
//! A [`Fingerprint64`] folds a stream of words into a 64-bit digest
//! (FNV-1a over the little-endian bytes of each word). Two state dumps
//! hash equal iff they pushed the same words in the same order, so the
//! machine layer can digest its architectural state at window boundaries
//! and a harness can compare same-seed runs *window by window* — pointing
//! at the first divergent window instead of a bare "outputs differ".
//!
//! The hash is not cryptographic; it only needs to make accidental
//! collisions between near-identical machine states vanishingly unlikely
//! while staying dependency-free and bit-stable across platforms.

/// Streaming 64-bit FNV-1a hasher over words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint64 {
    state: u64,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fingerprint64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint64 { state: FNV_OFFSET }
    }

    /// Folds one unsigned word into the digest.
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one signed word into the digest.
    pub fn push_i64(&mut self, word: i64) {
        self.push(word as u64);
    }

    /// Folds a length-prefixed byte string into the digest, so adjacent
    /// strings keep their boundary (`"ab" ++ "c"` differs from
    /// `"a" ++ "bc"`). This is what content-addressed job digests use to
    /// hash keys and config dumps.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.push(bytes.len() as u64);
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a length-prefixed sequence of words, so `[1, 2] ++ [3]`
    /// hashes differently from `[1] ++ [2, 3]`.
    pub fn push_seq(&mut self, words: impl ExactSizeIterator<Item = u64>) {
        self.push(words.len() as u64);
        for w in words {
            self.push(w);
        }
    }

    /// The digest of everything pushed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprint64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Compares two per-window digest trails, returning the index of the
/// first window where they disagree (`None` when one is a prefix of the
/// other or they are identical — trail lengths may differ when one run
/// ended earlier).
pub fn first_divergence(a: &[u64], b: &[u64]) -> Option<usize> {
    a.iter().zip(b.iter()).position(|(x, y)| x != y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fingerprint64::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Fingerprint64::new();
        a.push(1);
        a.push(2);
        let mut b = Fingerprint64::new();
        b.push(2);
        b.push(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_across_instances() {
        let digest = |words: &[u64]| {
            let mut f = Fingerprint64::new();
            for &w in words {
                f.push(w);
            }
            f.finish()
        };
        assert_eq!(digest(&[7, 8, 9]), digest(&[7, 8, 9]));
        assert_ne!(digest(&[7, 8, 9]), digest(&[7, 8, 10]));
    }

    #[test]
    fn length_prefix_separates_boundaries() {
        let mut a = Fingerprint64::new();
        a.push_seq([1u64, 2].into_iter());
        a.push_seq([3u64].into_iter());
        let mut b = Fingerprint64::new();
        b.push_seq([1u64].into_iter());
        b.push_seq([2u64, 3].into_iter());
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn signed_words_roundtrip_into_hash() {
        let mut a = Fingerprint64::new();
        a.push_i64(-1);
        let mut b = Fingerprint64::new();
        b.push(u64::MAX);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn byte_strings_keep_their_boundaries() {
        let digest = |parts: &[&str]| {
            let mut f = Fingerprint64::new();
            for p in parts {
                f.push_bytes(p.as_bytes());
            }
            f.finish()
        };
        assert_eq!(digest(&["ab", "c"]), digest(&["ab", "c"]));
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]));
        assert_ne!(digest(&["ab"]), digest(&["ba"]));
    }

    #[test]
    fn divergence_points_at_first_differing_window() {
        assert_eq!(first_divergence(&[1, 2, 3], &[1, 2, 3]), None);
        assert_eq!(first_divergence(&[1, 2, 3], &[1, 9, 3]), Some(1));
        assert_eq!(first_divergence(&[1, 2], &[1, 2, 3]), None);
        assert_eq!(first_divergence(&[], &[5]), None);
    }
}
