//! A small dependency-free JSON reader/writer.
//!
//! The telemetry layer emits machine-readable artifacts (Chrome-Trace-Format
//! timelines, metric-snapshot JSONL) and the harness validates them before
//! upload. The build environment is offline, so this module provides just
//! enough JSON — objects, arrays, strings with escapes, numbers (including
//! floats and negatives), booleans, null — without serde.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes this value to compact JSON text that [`parse`] accepts.
    ///
    /// Numbers use Rust's shortest round-trip `f64` formatting, so any
    /// value that came out of [`parse`] re-serializes to the same number.
    /// Non-finite numbers (which JSON cannot represent) serialize as
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => out.push_str(&escape(s)),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(key));
                    out.push(':');
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes `s` into a double-quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            ch as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_number(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&b| b as char),
            *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {}, found {:?}",
                    *pos,
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ASCII \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point \\u{hex}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 sequence starting at pos.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("number chars are ASCII");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": true}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\none\t\"quoted\" \\ done";
        let escaped = escape(original);
        let back = parse(&escaped).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn control_chars_are_escaped() {
        let escaped = escape("\u{1}");
        assert_eq!(escaped, "\"\\u0001\"");
        assert_eq!(parse(&escaped).unwrap().as_str(), Some("\u{1}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"open",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn serializer_round_trips_through_parse() {
        let text = r#"{"a":[1,{"b":true},null],"c":"x\ny","d":-1.5,"e":1234.5678}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn serializer_writes_integers_without_fraction() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Array(vec![]).to_json(), "[]");
        assert_eq!(Value::Object(vec![]).to_json(), "{}");
    }

    #[test]
    fn floats_survive_fractional_timestamps() {
        // The Chrome exporter emits ts in fractional microseconds.
        let v = parse(r#"{"ts": 1234.5678}"#).unwrap();
        assert!((v.get("ts").unwrap().as_f64().unwrap() - 1234.5678).abs() < 1e-9);
    }
}
