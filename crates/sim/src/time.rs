//! Cycle/time conversion helpers.
//!
//! The paper's baseline GPU (Table 1) runs at 2 GHz, so its oversubscription
//! experiment — "after 50 µs the WGs from one CU are context switched out"
//! (§VI) — corresponds to a cycle count computed by [`us_to_cycles`].

/// A simulated clock cycle count.
///
/// All latencies and timestamps in the simulator are expressed in cycles of
/// the GPU core clock (2 GHz in the paper's baseline).
pub type Cycle = u64;

/// The paper's baseline core clock in GHz (Table 1).
pub const BASELINE_CLOCK_GHZ: f64 = 2.0;

/// Converts microseconds to cycles at the baseline 2 GHz clock.
///
/// ```
/// // The paper removes one CU after 50 µs => 100k cycles at 2 GHz.
/// assert_eq!(awg_sim::us_to_cycles(50.0), 100_000);
/// ```
pub fn us_to_cycles(us: f64) -> Cycle {
    (us * BASELINE_CLOCK_GHZ * 1000.0).round() as Cycle
}

/// Converts cycles to microseconds at the baseline 2 GHz clock.
///
/// ```
/// assert!((awg_sim::cycles_to_us(100_000) - 50.0).abs() < 1e-9);
/// ```
pub fn cycles_to_us(cycles: Cycle) -> f64 {
    cycles as f64 / (BASELINE_CLOCK_GHZ * 1000.0)
}

/// Converts cycles to nanoseconds at the baseline 2 GHz clock.
///
/// ```
/// assert!((awg_sim::cycles_to_ns(2) - 1.0).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 / BASELINE_CLOCK_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_whole_microseconds() {
        for us in [0.0, 1.0, 50.0, 1000.0] {
            let c = us_to_cycles(us);
            assert!((cycles_to_us(c) - us).abs() < 1e-9, "us={us}");
        }
    }

    #[test]
    fn paper_oversubscription_point_is_100k_cycles() {
        assert_eq!(us_to_cycles(50.0), 100_000);
    }

    #[test]
    fn ns_conversion_matches_clock() {
        assert!((cycles_to_ns(2_000_000_000) - 1e9).abs() < 1.0);
    }
}
