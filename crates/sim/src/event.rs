//! A deterministic timed event queue.
//!
//! Events scheduled for the same cycle pop in the order they were scheduled
//! (FIFO tie-break via a monotonically increasing sequence number), which
//! makes the whole simulation reproducible: the same inputs always produce
//! the same interleaving of micro-architectural events.
//!
//! # Implementation
//!
//! The queue is a single-level calendar (timer wheel), not a binary heap.
//! GPU timing events overwhelmingly land a few dozen to a few thousand
//! cycles ahead of the current cycle, so a wheel of [`WHEEL_CYCLES`] flat
//! buckets — one per cycle, addressed by `cycle % WHEEL_CYCLES` — turns
//! both `schedule` and `pop` into O(1) array operations with an occupancy
//! bitmap scan instead of O(log n) sift operations over a pointer-cold
//! heap:
//!
//! * **Wheel** — every pending event whose cycle lies inside the horizon
//!   `[cursor, cursor + WHEEL_CYCLES)` sits in the bucket for its cycle.
//!   Because the horizon is exactly one wheel revolution, a bucket never
//!   mixes cycles; appending to a bucket therefore preserves the FIFO
//!   tie-break for free, with no per-entry comparisons at all.
//! * **Overflow** — events beyond the horizon, and retro events scheduled
//!   behind the cursor (the machine does this when re-arming timeouts at
//!   `max(deadline, now)` boundaries and after restores), go to a sorted
//!   `BTreeMap<Cycle, …>` tier. No migration pass is ever needed: `pop`
//!   compares the wheel's next cycle against the overflow's first key and
//!   drains the earlier one. When both tiers hold the same cycle, the
//!   overflow entries are always older (their seq is smaller — an event
//!   can only reach the overflow while the cycle is outside the horizon,
//!   i.e. strictly before any wheel entry for it could exist), so
//!   overflow-before-wheel preserves FIFO order exactly.
//! * **Arena** — event payloads live in generation-tagged slots with a
//!   free list; buckets and overflow rings store 8-byte slot references,
//!   not boxed events. Popping frees the slot for reuse, so a steady-state
//!   run allocates nothing after warmup, and
//!   [`with_capacity`](EventQueue::with_capacity) pre-sizes the arena from
//!   machine configuration.
//!
//! The public contract — FIFO tie-break, `snapshot`/`restore` wire
//! behaviour, `scheduled_total` monotonicity — is identical to the
//! original `BinaryHeap` implementation; `tests/queue_model.rs` drives
//! both against each other with seeded interleavings to prove it.

use std::collections::{BTreeMap, VecDeque};

use crate::time::Cycle;

/// Width of the calendar wheel in cycles (one bucket per cycle). Must be a
/// power of two so bucket addressing is a mask. 4096 cycles comfortably
/// covers the paper machine's event latencies (issue 4, dispatch 200,
/// context switch 500, memory ~100s); only quiescence watchdogs, long
/// sleep backoffs, and far-future fault injections take the overflow path.
const WHEEL_CYCLES: usize = 4096;
const WHEEL_MASK: u64 = (WHEEL_CYCLES as u64) - 1;

/// A generation-tagged reference into the slot arena.
#[derive(Debug, Clone, Copy)]
struct SlotRef {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<E> {
    /// Bumped every time the slot is freed; a stale [`SlotRef`] can then be
    /// detected instead of silently resolving to a recycled event.
    gen: u32,
    cycle: Cycle,
    seq: u64,
    /// `None` while the slot sits on the free list.
    event: Option<E>,
}

/// One wheel bucket: slot refs in scheduling (= seq) order. `front` marks
/// the consumed prefix while the bucket's cycle is being drained, so a
/// same-cycle burst pops as a pointer walk, not repeated `remove(0)`.
#[derive(Debug, Default)]
struct Bucket {
    items: Vec<SlotRef>,
    front: usize,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.front == self.items.len()
    }
}

/// A deterministic priority queue of `(cycle, event)` pairs.
///
/// Ordering is primarily by cycle, with FIFO tie-break for events scheduled
/// at the same cycle.
///
/// # Example
///
/// ```
/// let mut q = awg_sim::EventQueue::new();
/// q.schedule(7, "late");
/// q.schedule(7, "later"); // same cycle: FIFO order preserved
/// q.schedule(3, "early");
/// assert_eq!(q.pop(), Some((3, "early")));
/// assert_eq!(q.pop(), Some((7, "late")));
/// assert_eq!(q.pop(), Some((7, "later")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    wheel: Vec<Bucket>,
    /// One bit per bucket: set iff the bucket holds unpopped entries.
    occupancy: [u64; WHEEL_CYCLES / 64],
    /// Lower edge of the wheel horizon. Monotone while events pop; every
    /// wheel entry's cycle lies in `[cursor, cursor + WHEEL_CYCLES)`.
    cursor: Cycle,
    /// Events outside the horizon (far future) or behind the cursor
    /// (retro), in FIFO order per cycle.
    overflow: BTreeMap<Cycle, VecDeque<SlotRef>>,
    /// Pending entries on the wheel (`len` minus the overflow population);
    /// lets `pop`/`peek` skip the bitmap scan in overflow-only phases.
    wheel_len: usize,
    len: usize,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with `capacity` arena slots pre-allocated.
    ///
    /// The machine sizes this from its kernel (a few in-flight events per
    /// work-group plus stale-timeout residue) so steady-state runs never
    /// grow the arena mid-flight.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut wheel = Vec::with_capacity(WHEEL_CYCLES);
        wheel.resize_with(WHEEL_CYCLES, Bucket::default);
        EventQueue {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            wheel,
            occupancy: [0; WHEEL_CYCLES / 64],
            cursor: 0,
            overflow: BTreeMap::new(),
            wheel_len: 0,
            len: 0,
            seq: 0,
        }
    }

    fn alloc_slot(&mut self, cycle: Cycle, seq: u64, event: E) -> SlotRef {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.event.is_none(), "free list points at a live slot");
            slot.cycle = cycle;
            slot.seq = seq;
            slot.event = Some(event);
            SlotRef { idx, gen: slot.gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                cycle,
                seq,
                event: Some(event),
            });
            SlotRef { idx, gen: 0 }
        }
    }

    fn free_slot(&mut self, r: SlotRef) -> (Cycle, E) {
        let slot = &mut self.slots[r.idx as usize];
        debug_assert_eq!(slot.gen, r.gen, "stale slot reference");
        let event = slot.event.take().expect("popping an empty slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(r.idx);
        (slot.cycle, event)
    }

    fn bucket_index(&self, at: Cycle) -> usize {
        (at & WHEEL_MASK) as usize
    }

    fn set_bit(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] |= 1 << (bucket % 64);
    }

    fn clear_bit(&mut self, bucket: usize) {
        self.occupancy[bucket / 64] &= !(1 << (bucket % 64));
    }

    /// The earliest cycle with a pending wheel entry, found by a circular
    /// occupancy-bitmap scan starting at the cursor's bucket.
    fn next_wheel_cycle(&self) -> Option<Cycle> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = self.bucket_index(self.cursor);
        let mut word_idx = start / 64;
        // First word: mask off bits below the cursor's position.
        let mut word = self.occupancy[word_idx] & (!0u64 << (start % 64));
        for step in 0..=self.occupancy.len() {
            if word != 0 {
                let bucket = word_idx * 64 + word.trailing_zeros() as usize;
                let distance = (bucket as u64).wrapping_sub(start as u64) & WHEEL_MASK;
                return Some(self.cursor + distance);
            }
            if step == self.occupancy.len() {
                break;
            }
            word_idx = (word_idx + 1) % self.occupancy.len();
            word = self.occupancy[word_idx];
            if word_idx == start / 64 {
                // Wrapped to the start word: only the bits below the cursor
                // remain unexamined (cycles near the top of the horizon).
                word &= !(!0u64 << (start % 64));
            }
        }
        None
    }

    fn insert_ref(&mut self, at: Cycle, r: SlotRef) {
        if at >= self.cursor && at - self.cursor < WHEEL_CYCLES as u64 {
            let bucket = self.bucket_index(at);
            debug_assert!(
                self.wheel[bucket].is_empty()
                    || self.slots[self.wheel[bucket].items[self.wheel[bucket].front].idx as usize]
                        .cycle
                        == at,
                "wheel bucket mixes cycles"
            );
            self.wheel[bucket].items.push(r);
            self.set_bit(bucket);
            self.wheel_len += 1;
        } else {
            self.overflow.entry(at).or_default().push_back(r);
        }
        self.len += 1;
    }

    /// Schedules `event` to fire at absolute cycle `at`.
    ///
    /// Events at the same cycle fire in scheduling order.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let r = self.alloc_slot(at, seq, event);
        self.insert_ref(at, r);
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let wheel_next = self.next_wheel_cycle();
        let overflow_next = self.overflow.keys().next().copied();
        let (cycle, from_overflow) = match (wheel_next, overflow_next) {
            (None, None) => return None,
            (Some(w), None) => (w, false),
            (None, Some(o)) => (o, true),
            // Tie: overflow entries at a cycle are always older than wheel
            // entries at the same cycle (see module docs), so FIFO order
            // demands the overflow drains first.
            (Some(w), Some(o)) => (w.min(o), o <= w),
        };
        let r = if from_overflow {
            let ring = self.overflow.get_mut(&cycle).expect("overflow key");
            let r = ring.pop_front().expect("empty overflow ring");
            if ring.is_empty() {
                self.overflow.remove(&cycle);
            }
            r
        } else {
            let bucket = self.bucket_index(cycle);
            let b = &mut self.wheel[bucket];
            let r = b.items[b.front];
            b.front += 1;
            if b.is_empty() {
                b.items.clear();
                b.front = 0;
                self.clear_bit(bucket);
            }
            self.wheel_len -= 1;
            r
        };
        self.len -= 1;
        self.cursor = self.cursor.max(cycle);
        let (cycle, event) = self.free_slot(r);
        Some((cycle, event))
    }

    /// Returns the cycle of the earliest pending event without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        match (
            self.next_wheel_cycle(),
            self.overflow.keys().next().copied(),
        ) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (Some(w), Some(o)) => Some(w.min(o)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending events in the far-future/retro overflow tier
    /// (observability for checkpoint tests and calendar diagnostics).
    pub fn overflow_len(&self) -> usize {
        self.overflow.values().map(|ring| ring.len()).sum()
    }

    /// `(arena slots, free-list holes)` — observability for checkpoint
    /// tests and calendar diagnostics.
    pub fn arena_stats(&self) -> (usize, usize) {
        (self.slots.len(), self.free.len())
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across clears).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            if slot.event.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
            }
        }
        self.free.clear();
        self.free.extend((0..self.slots.len() as u32).rev());
        for b in &mut self.wheel {
            b.items.clear();
            b.front = 0;
        }
        self.occupancy = [0; WHEEL_CYCLES / 64];
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Visits every pending event in unspecified order (arena order).
    ///
    /// This is an inspection aid for invariant checkers that need to answer
    /// "is any event still scheduled for X?" without draining the queue.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &E)> {
        self.slots
            .iter()
            .filter_map(|s| s.event.as_ref().map(|e| (s.cycle, e)))
    }

    /// Exports every pending event as `(cycle, seq, event)`, sorted by the
    /// pop order `(cycle, seq)`, for checkpointing.
    ///
    /// Unlike [`iter`](Self::iter), the internal FIFO tie-break sequence is
    /// included, so [`restore`](Self::restore) rebuilds a queue that pops in
    /// *exactly* the original order — the property whole-machine snapshots
    /// need for deterministic resume.
    pub fn snapshot(&self) -> Vec<(Cycle, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(Cycle, u64, E)> = self
            .slots
            .iter()
            .filter_map(|s| s.event.clone().map(|e| (s.cycle, s.seq, e)))
            .collect();
        out.sort_unstable_by_key(|&(cycle, seq, _)| (cycle, seq));
        out
    }

    /// Rebuilds a queue from a [`snapshot`](Self::snapshot) export and the
    /// sequence counter to continue from.
    ///
    /// `next_seq` must be the original queue's
    /// [`scheduled_total`](Self::scheduled_total) so that events
    /// scheduled after the restore
    /// keep losing FIFO ties against the restored ones, exactly as they
    /// would have in the uninterrupted run.
    pub fn restore(entries: Vec<(Cycle, u64, E)>, next_seq: u64) -> Self {
        let mut q = Self::with_capacity(entries.len());
        // Rebase the horizon on the earliest restored event so the bulk of
        // the restored calendar lands on the wheel, not in the overflow.
        // The entries arrive sorted by (cycle, seq) — append order along a
        // bucket or overflow ring is therefore seq order, as required.
        q.cursor = entries.first().map_or(0, |&(cycle, _, _)| cycle);
        for (cycle, seq, event) in entries {
            debug_assert!(seq < next_seq, "restored seq beyond the counter");
            let r = q.alloc_slot(cycle, seq, event);
            q.insert_ref(cycle, r);
        }
        q.seq = next_seq;
        q
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(42, ());
        assert_eq!(q.peek_cycle(), Some(42));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((42, ())));
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
    }

    #[test]
    fn clear_preserves_sequence_monotonicity() {
        let mut q = EventQueue::new();
        q.schedule(1, 0);
        q.schedule(1, 1);
        let before = q.scheduled_total();
        q.clear();
        assert!(q.is_empty());
        q.schedule(1, 2);
        assert_eq!(q.scheduled_total(), before + 1);
    }

    #[test]
    fn iter_sees_all_pending_without_draining() {
        let mut q = EventQueue::new();
        q.schedule(3, 'a');
        q.schedule(1, 'b');
        q.schedule(2, 'c');
        let mut seen: Vec<_> = q.iter().map(|(c, &e)| (c, e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 'b'), (2, 'c'), (3, 'a')]);
        assert_eq!(q.len(), 3, "iteration must not consume events");
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(5, 'a');
        q.schedule(3, 'b');
        q.schedule(5, 'c'); // ties with 'a'; FIFO says 'a' first
        q.schedule(1, 'd');
        let snap = q.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut r = EventQueue::restore(snap, q.scheduled_total());
        assert_eq!(r.scheduled_total(), q.scheduled_total());
        let popped: Vec<_> = std::iter::from_fn(|| r.pop()).collect();
        let original: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, original);
    }

    #[test]
    fn restore_keeps_new_events_behind_old_ties() {
        let mut q = EventQueue::new();
        q.schedule(9, "old");
        let mut r = EventQueue::restore(q.snapshot(), q.scheduled_total());
        r.schedule(9, "new");
        assert_eq!(r.pop(), Some((9, "old")));
        assert_eq!(r.pop(), Some((9, "new")));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        assert_eq!(q.pop(), Some((10, "x")));
        q.schedule(5, "y");
        q.schedule(15, "z");
        assert_eq!(q.pop(), Some((5, "y")));
        assert_eq!(q.pop(), Some((15, "z")));
    }

    #[test]
    fn far_future_overflow_pops_in_order() {
        let mut q = EventQueue::new();
        q.schedule(1_000_000, 'q'); // quiescence-style far event
        q.schedule(3, 'a');
        q.schedule(2_000_000, 'r');
        q.schedule(1_000_000, 's'); // same far cycle: FIFO
        assert!(q.overflow_len() >= 3, "far events must take the overflow");
        assert_eq!(q.pop(), Some((3, 'a')));
        assert_eq!(q.pop(), Some((1_000_000, 'q')));
        assert_eq!(q.pop(), Some((1_000_000, 's')));
        assert_eq!(q.pop(), Some((2_000_000, 'r')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_cycle_entering_the_horizon_keeps_fifo_against_new_ties() {
        let mut q = EventQueue::new();
        // 5000 is beyond the fresh horizon [0, 4096): overflow.
        q.schedule(5_000, "overflow-first");
        // Advance the cursor into [905, 5001): 5000 is now wheel-reachable.
        q.schedule(950, "advance");
        assert_eq!(q.pop(), Some((950, "advance")));
        q.schedule(5_000, "wheel-second");
        assert_eq!(q.pop(), Some((5_000, "overflow-first")));
        assert_eq!(q.pop(), Some((5_000, "wheel-second")));
    }

    #[test]
    fn retro_schedule_behind_the_cursor_pops_first() {
        let mut q = EventQueue::new();
        q.schedule(10_000, "late");
        assert_eq!(q.pop(), Some((10_000, "late")));
        // The cursor now sits at 10_000; a retro event must still pop
        // before anything later, exactly as the heap behaved.
        q.schedule(400, "retro");
        q.schedule(10_001, "after");
        assert_eq!(q.peek_cycle(), Some(400));
        assert_eq!(q.pop(), Some((400, "retro")));
        assert_eq!(q.pop(), Some((10_001, "after")));
    }

    #[test]
    fn horizon_edge_cycles_land_correctly() {
        let mut q = EventQueue::new();
        q.schedule(WHEEL_CYCLES as u64 - 1, 'e'); // last wheel bucket
        q.schedule(WHEEL_CYCLES as u64, 'o'); // first overflow cycle
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop(), Some((WHEEL_CYCLES as u64 - 1, 'e')));
        assert_eq!(q.pop(), Some((WHEEL_CYCLES as u64, 'o')));
    }

    #[test]
    fn arena_reuses_freed_slots() {
        let mut q = EventQueue::with_capacity(4);
        for round in 0..10u64 {
            for i in 0..4u64 {
                q.schedule(round * 100 + i, i);
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        let (slots, holes) = q.arena_stats();
        assert_eq!(slots, 4, "steady-state churn must reuse freed slots");
        assert_eq!(holes, 4);
    }

    #[test]
    fn wraparound_keeps_order_across_many_revolutions() {
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for rev in 0..12u64 {
            let cycle = rev * (WHEEL_CYCLES as u64) + (rev * 37) % 1000;
            q.schedule(cycle, rev);
            expect.push((cycle, rev));
        }
        expect.sort_unstable();
        for (cycle, rev) in expect {
            assert_eq!(q.pop(), Some((cycle, rev)));
        }
        assert!(q.is_empty());
    }
}
