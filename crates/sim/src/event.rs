//! A deterministic timed event queue.
//!
//! Events scheduled for the same cycle pop in the order they were scheduled
//! (FIFO tie-break via a monotonically increasing sequence number), which
//! makes the whole simulation reproducible: the same inputs always produce
//! the same interleaving of micro-architectural events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// A deterministic priority queue of `(cycle, event)` pairs.
///
/// Ordering is primarily by cycle, with FIFO tie-break for events scheduled
/// at the same cycle.
///
/// # Example
///
/// ```
/// let mut q = awg_sim::EventQueue::new();
/// q.schedule(7, "late");
/// q.schedule(7, "later"); // same cycle: FIFO order preserved
/// q.schedule(3, "early");
/// assert_eq!(q.pop(), Some((3, "early")));
/// assert_eq!(q.pop(), Some((7, "late")));
/// assert_eq!(q.pop(), Some((7, "later")));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Cycle, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute cycle `at`.
    ///
    /// Events at the same cycle fire in scheduling order.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Returns the cycle of the earliest pending event without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events (the sequence counter keeps advancing so
    /// determinism is preserved across clears).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Visits every pending event in unspecified order (heap order).
    ///
    /// This is an inspection aid for invariant checkers that need to answer
    /// "is any event still scheduled for X?" without draining the queue.
    pub fn iter(&self) -> impl Iterator<Item = (Cycle, &E)> {
        self.heap.iter().map(|e| (e.key.0 .0, &e.event))
    }

    /// Exports every pending event as `(cycle, seq, event)`, sorted by the
    /// pop order `(cycle, seq)`, for checkpointing.
    ///
    /// Unlike [`iter`](Self::iter), the internal FIFO tie-break sequence is
    /// included, so [`restore`](Self::restore) rebuilds a queue that pops in
    /// *exactly* the original order — the property whole-machine snapshots
    /// need for deterministic resume.
    pub fn snapshot(&self) -> Vec<(Cycle, u64, E)>
    where
        E: Clone,
    {
        let mut out: Vec<(Cycle, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.key.0 .0, e.key.0 .1, e.event.clone()))
            .collect();
        out.sort_unstable_by_key(|&(cycle, seq, _)| (cycle, seq));
        out
    }

    /// Rebuilds a queue from a [`snapshot`](Self::snapshot) export and the
    /// sequence counter to continue from.
    ///
    /// `next_seq` must be the original queue's
    /// [`scheduled_total`](Self::scheduled_total) so that events
    /// scheduled after the restore
    /// keep losing FIFO ties against the restored ones, exactly as they
    /// would have in the uninterrupted run.
    pub fn restore(entries: Vec<(Cycle, u64, E)>, next_seq: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (cycle, seq, event) in entries {
            debug_assert!(seq < next_seq, "restored seq beyond the counter");
            heap.push(Entry {
                key: Reverse((cycle, seq)),
                event,
            });
        }
        EventQueue {
            heap,
            seq: next_seq,
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(42, ());
        assert_eq!(q.peek_cycle(), Some(42));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((42, ())));
        assert!(q.is_empty());
        assert_eq!(q.peek_cycle(), None);
    }

    #[test]
    fn clear_preserves_sequence_monotonicity() {
        let mut q = EventQueue::new();
        q.schedule(1, 0);
        q.schedule(1, 1);
        let before = q.scheduled_total();
        q.clear();
        assert!(q.is_empty());
        q.schedule(1, 2);
        assert_eq!(q.scheduled_total(), before + 1);
    }

    #[test]
    fn iter_sees_all_pending_without_draining() {
        let mut q = EventQueue::new();
        q.schedule(3, 'a');
        q.schedule(1, 'b');
        q.schedule(2, 'c');
        let mut seen: Vec<_> = q.iter().map(|(c, &e)| (c, e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 'b'), (2, 'c'), (3, 'a')]);
        assert_eq!(q.len(), 3, "iteration must not consume events");
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_and_ties() {
        let mut q = EventQueue::new();
        q.schedule(5, 'a');
        q.schedule(3, 'b');
        q.schedule(5, 'c'); // ties with 'a'; FIFO says 'a' first
        q.schedule(1, 'd');
        let snap = q.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut r = EventQueue::restore(snap, q.scheduled_total());
        assert_eq!(r.scheduled_total(), q.scheduled_total());
        let popped: Vec<_> = std::iter::from_fn(|| r.pop()).collect();
        let original: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, original);
    }

    #[test]
    fn restore_keeps_new_events_behind_old_ties() {
        let mut q = EventQueue::new();
        q.schedule(9, "old");
        let mut r = EventQueue::restore(q.snapshot(), q.scheduled_total());
        r.schedule(9, "new");
        assert_eq!(r.pop(), Some((9, "old")));
        assert_eq!(r.pop(), Some((9, "new")));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(10, "x");
        assert_eq!(q.pop(), Some((10, "x")));
        q.schedule(5, "y");
        q.schedule(15, "z");
        assert_eq!(q.pop(), Some((5, "y")));
        assert_eq!(q.pop(), Some((15, "z")));
    }
}
