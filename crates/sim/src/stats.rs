//! Measurement registry: counters, distributions, and log₂ histograms.
//!
//! Every crate in the simulator records into a [`Stats`] registry. Handles
//! ([`CounterId`], [`DistId`], [`HistId`]) are cheap indices so the hot path
//! never hashes strings.

use std::collections::HashMap;
use std::fmt;

use crate::codec::{CodecError, Dec, Enc};
use crate::time::Cycle;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(usize);

/// Handle to a registered distribution (min/max/sum/count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DistId(usize);

/// Handle to a registered log₂ histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistId(usize);

/// Summary of a recorded distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Minimum sample (0 when empty).
    pub min: u64,
    /// Maximum sample (0 when empty).
    pub max: u64,
}

impl DistSummary {
    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Dist {
    name: String,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Number of buckets in a log₂ histogram: values up to 2⁶³ land in a bucket.
const HIST_BUCKETS: usize = 65;

#[derive(Debug, Clone)]
struct Hist {
    name: String,
    buckets: [u64; HIST_BUCKETS],
    count: u64,
}

/// A registry of named measurements.
///
/// # Example
///
/// ```
/// let mut stats = awg_sim::Stats::new();
/// let atomics = stats.counter("atomics_executed");
/// stats.inc(atomics);
/// stats.add(atomics, 9);
/// assert_eq!(stats.get(atomics), 10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    dists: Vec<Dist>,
    hists: Vec<Hist>,
    // Name → slot indices so registration (and by-name lookup) is O(1).
    // Policies register per-WG metrics on hot paths; a linear scan makes
    // that quadratic in the number of registered names.
    counter_index: HashMap<String, usize>,
    dist_index: HashMap<String, usize>,
    hist_index: HashMap<String, usize>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter named `name` and returns its handle.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.counter_index.get(name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_owned());
        self.counters.push(0);
        let i = self.counters.len() - 1;
        self.counter_index.insert(name.to_owned(), i);
        CounterId(i)
    }

    /// Registers (or finds) a distribution named `name`.
    pub fn dist(&mut self, name: &str) -> DistId {
        if let Some(&i) = self.dist_index.get(name) {
            return DistId(i);
        }
        self.dists.push(Dist {
            name: name.to_owned(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        });
        let i = self.dists.len() - 1;
        self.dist_index.insert(name.to_owned(), i);
        DistId(i)
    }

    /// Registers (or finds) a log₂ histogram named `name`.
    pub fn hist(&mut self, name: &str) -> HistId {
        if let Some(&i) = self.hist_index.get(name) {
            return HistId(i);
        }
        self.hists.push(Hist {
            name: name.to_owned(),
            buckets: [0; HIST_BUCKETS],
            count: 0,
        });
        let i = self.hists.len() - 1;
        self.hist_index.insert(name.to_owned(), i);
        HistId(i)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Looks up a counter's current value by name, if registered.
    pub fn get_by_name(&self, name: &str) -> Option<u64> {
        self.counter_index.get(name).map(|&i| self.counters[i])
    }

    /// Records a sample into a distribution.
    #[inline]
    pub fn sample(&mut self, id: DistId, value: u64) {
        let d = &mut self.dists[id.0];
        d.count += 1;
        d.sum += value;
        d.min = d.min.min(value);
        d.max = d.max.max(value);
    }

    /// Summary of a distribution.
    pub fn dist_summary(&self, id: DistId) -> DistSummary {
        let d = &self.dists[id.0];
        DistSummary {
            count: d.count,
            sum: d.sum,
            min: if d.count == 0 { 0 } else { d.min },
            max: d.max,
        }
    }

    /// Records a sample into a log₂ histogram.
    #[inline]
    pub fn observe(&mut self, id: HistId, value: Cycle) {
        let h = &mut self.hists[id.0];
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        h.buckets[bucket] += 1;
        h.count += 1;
    }

    /// Returns `(lower_bound, count)` pairs for every non-empty histogram
    /// bucket.
    pub fn hist_buckets(&self, id: HistId) -> Vec<(u64, u64)> {
        let h = &self.hists[id.0];
        h.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }

    /// Looks up a histogram's non-empty buckets by name, if registered.
    pub fn hist_buckets_by_name(&self, name: &str) -> Option<Vec<(u64, u64)>> {
        self.hist_index
            .get(name)
            .map(|&i| self.hist_buckets(HistId(i)))
    }

    /// Looks up a distribution's summary by name, if registered.
    pub fn dist_summary_by_name(&self, name: &str) -> Option<DistSummary> {
        self.dist_index
            .get(name)
            .map(|&i| self.dist_summary(DistId(i)))
    }

    /// Iterates over all `(name, value)` counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
    }

    /// Iterates over all `(name, summary)` distributions in registration
    /// order.
    pub fn dists(&self) -> impl Iterator<Item = (&str, DistSummary)> {
        self.dists.iter().map(|d| {
            (
                d.name.as_str(),
                DistSummary {
                    count: d.count,
                    sum: d.sum,
                    min: if d.count == 0 { 0 } else { d.min },
                    max: d.max,
                },
            )
        })
    }

    /// Iterates over all `(name, non-empty buckets)` histograms in
    /// registration order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, Vec<(u64, u64)>)> {
        (0..self.hists.len()).map(|i| (self.hists[i].name.as_str(), self.hist_buckets(HistId(i))))
    }

    /// Merges another registry into this one by name: counters add,
    /// distributions combine their moments, histograms add bucketwise.
    /// Used to fold a subsystem's private registry (e.g. the telemetry
    /// hub's) into the run-level one at report time, and to aggregate
    /// per-job registries across a parallel sweep campaign.
    ///
    /// Names absent from `self` are registered in **sorted name order**,
    /// not in `other`'s registration order. Parallel campaigns absorb
    /// registries whose registration order depends on which policy ran the
    /// job; sorting makes the merged registry's iteration order (and hence
    /// its `Display` rendering) a function of the merged name *set* only.
    pub fn absorb(&mut self, other: &Stats) {
        let mut counter_names: Vec<&str> = other.counter_names.iter().map(String::as_str).collect();
        counter_names.sort_unstable();
        for name in counter_names {
            let value = other.counters[other.counter_index[name]];
            let c = self.counter(name);
            self.add(c, value);
        }
        let mut dist_slots: Vec<&Dist> = other.dists.iter().collect();
        dist_slots.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        for o in dist_slots {
            let id = self.dist(&o.name);
            let d = &mut self.dists[id.0];
            d.count += o.count;
            d.sum += o.sum;
            d.min = d.min.min(o.min);
            d.max = d.max.max(o.max);
        }
        let mut hist_slots: Vec<&Hist> = other.hists.iter().collect();
        hist_slots.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        for o in hist_slots {
            let id = self.hist(&o.name);
            let h = &mut self.hists[id.0];
            for (b, &c) in h.buckets.iter_mut().zip(o.buckets.iter()) {
                *b += c;
            }
            h.count += o.count;
        }
    }

    /// Restores a distribution's moments wholesale, merging with whatever
    /// the slot already holds. The inverse of [`Stats::dist_summary`]:
    /// journal resume decodes a serialized registry without access to the
    /// original samples, so it cannot rebuild moments through
    /// [`Stats::sample`].
    pub fn restore_dist(&mut self, name: &str, summary: DistSummary) {
        let id = self.dist(name);
        let d = &mut self.dists[id.0];
        d.count += summary.count;
        d.sum += summary.sum;
        if summary.count > 0 {
            d.min = d.min.min(summary.min);
            d.max = d.max.max(summary.max);
        }
    }

    /// Restores `count` observations into the histogram bucket whose lower
    /// bound is `lower_bound` — the inverse of [`Stats::hist_buckets`],
    /// which reports bucket 0 as bound 0 and bucket *i* (*i* ≥ 1) as bound
    /// 2^(i−1). `lower_bound` must be one of those bounds (0 or a power of
    /// two); anything else restores into the bucket covering the value,
    /// same as [`Stats::observe`] would.
    pub fn restore_hist_bucket(&mut self, name: &str, lower_bound: u64, count: u64) {
        let id = self.hist(name);
        let bucket = if lower_bound == 0 {
            0
        } else {
            64 - lower_bound.leading_zeros() as usize
        };
        let h = &mut self.hists[id.0];
        h.buckets[bucket] += count;
        h.count += count;
    }

    /// Serializes the registry exactly — names in registration order, raw
    /// moments (including the `u64::MAX` sentinel min of an empty
    /// distribution) — so [`Stats::load`] rebuilds a registry whose future
    /// samples and `Display` rendering are indistinguishable from the
    /// original's. Unlike the journal's summary codec, this is lossless.
    pub fn save(&self, enc: &mut Enc) {
        enc.usize(self.counters.len());
        for (name, value) in self.counter_names.iter().zip(self.counters.iter()) {
            enc.str(name);
            enc.u64(*value);
        }
        enc.usize(self.dists.len());
        for d in &self.dists {
            enc.str(&d.name);
            enc.u64(d.count);
            enc.u64(d.sum);
            enc.u64(d.min);
            enc.u64(d.max);
        }
        enc.usize(self.hists.len());
        for h in &self.hists {
            enc.str(&h.name);
            enc.u64(h.count);
            for &b in &h.buckets {
                enc.u64(b);
            }
        }
    }

    /// Rebuilds a registry serialized by [`Stats::save`].
    pub fn load(dec: &mut Dec<'_>) -> Result<Stats, CodecError> {
        let mut s = Stats::new();
        let n = dec.count(9)?;
        for _ in 0..n {
            let name = dec.str()?;
            let value = dec.u64()?;
            let id = s.counter(&name);
            s.counters[id.0] = value;
        }
        let n = dec.count(33)?;
        for _ in 0..n {
            let name = dec.str()?;
            let id = s.dist(&name);
            let d = &mut s.dists[id.0];
            d.count = dec.u64()?;
            d.sum = dec.u64()?;
            d.min = dec.u64()?;
            d.max = dec.u64()?;
        }
        let n = dec.count(9 + 8 * HIST_BUCKETS)?;
        for _ in 0..n {
            let name = dec.str()?;
            let id = s.hist(&name);
            let h = &mut s.hists[id.0];
            h.count = dec.u64()?;
            for b in h.buckets.iter_mut() {
                *b = dec.u64()?;
            }
        }
        Ok(s)
    }

    /// Resets all counters, distributions and histograms to zero, keeping
    /// the registered names (so handles remain valid).
    pub fn reset(&mut self) {
        for c in &mut self.counters {
            *c = 0;
        }
        for d in &mut self.dists {
            d.count = 0;
            d.sum = 0;
            d.min = u64::MAX;
            d.max = 0;
        }
        for h in &mut self.hists {
            h.buckets = [0; HIST_BUCKETS];
            h.count = 0;
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.counters() {
            writeln!(f, "{name}: {value}")?;
        }
        for d in &self.dists {
            let s = DistSummary {
                count: d.count,
                sum: d.sum,
                min: if d.count == 0 { 0 } else { d.min },
                max: d.max,
            };
            writeln!(
                f,
                "{}: count={} mean={:.2} min={} max={}",
                d.name,
                s.count,
                s.mean(),
                s.min,
                s.max
            )?;
        }
        for i in 0..self.hists.len() {
            let h = &self.hists[i];
            write!(f, "{}: count={}", h.name, h.count)?;
            for (lo, c) in self.hist_buckets(HistId(i)) {
                write!(f, " | {lo}:{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut s = Stats::new();
        let c = s.counter("x");
        s.inc(c);
        s.add(c, 4);
        assert_eq!(s.get(c), 5);
        assert_eq!(s.get_by_name("x"), Some(5));
        assert_eq!(s.get_by_name("missing"), None);
    }

    #[test]
    fn counter_registration_is_idempotent() {
        let mut s = Stats::new();
        let a = s.counter("same");
        let b = s.counter("same");
        assert_eq!(a, b);
        s.inc(a);
        assert_eq!(s.get(b), 1);
    }

    #[test]
    fn dist_summary_tracks_min_max_mean() {
        let mut s = Stats::new();
        let d = s.dist("lat");
        for v in [10, 20, 30] {
            s.sample(d, v);
        }
        let sum = s.dist_summary(d);
        assert_eq!(sum.count, 3);
        assert_eq!(sum.min, 10);
        assert_eq!(sum.max, 30);
        assert!((sum.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dist_is_zeroed() {
        let mut s = Stats::new();
        let d = s.dist("empty");
        let sum = s.dist_summary(d);
        assert_eq!(sum.count, 0);
        assert_eq!(sum.min, 0);
        assert_eq!(sum.mean(), 0.0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut s = Stats::new();
        let h = s.hist("h");
        s.observe(h, 0);
        s.observe(h, 1);
        s.observe(h, 2);
        s.observe(h, 3);
        s.observe(h, 1024);
        let buckets = s.hist_buckets(h);
        // 0 -> bucket 0; 1 -> bucket [1,2); 2,3 -> bucket [2,4); 1024 -> [1024,2048)
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let mut s = Stats::new();
        let c = s.counter("c");
        let d = s.dist("d");
        s.add(c, 7);
        s.sample(d, 3);
        s.reset();
        assert_eq!(s.get(c), 0);
        assert_eq!(s.dist_summary(d).count, 0);
        s.inc(c);
        assert_eq!(s.get(c), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Stats::new();
        let c = s.counter("visible");
        s.inc(c);
        let text = s.to_string();
        assert!(text.contains("visible: 1"));
    }

    #[test]
    fn absorb_merges_by_name() {
        let mut a = Stats::new();
        let ca = a.counter("atomics");
        a.add(ca, 3);
        let da = a.dist("lat");
        a.sample(da, 10);
        let ha = a.hist("wake");
        a.observe(ha, 4);

        let mut b = Stats::new();
        let cb = b.counter("atomics");
        b.add(cb, 5);
        let db = b.dist("lat");
        b.sample(db, 2);
        let hb = b.hist("wake");
        b.observe(hb, 4);

        a.absorb(&b);
        assert_eq!(a.get_by_name("atomics"), Some(8));
        let lat = a.dist_summary_by_name("lat").unwrap();
        assert_eq!((lat.count, lat.sum, lat.min, lat.max), (2, 12, 2, 10));
        assert_eq!(a.hist_buckets_by_name("wake").unwrap(), vec![(4, 2)]);
    }

    /// Regression: merged registration order must not depend on the order
    /// the absorbed registries registered their names — workers in a
    /// parallel campaign register metrics in policy-dependent order.
    #[test]
    fn absorb_order_is_registration_order_independent() {
        fn registry(names: [&str; 3]) -> Stats {
            let mut s = Stats::new();
            for name in names {
                let c = s.counter(name);
                s.inc(c);
                let d = s.dist(name);
                s.sample(d, 1);
                let h = s.hist(name);
                s.observe(h, 1);
            }
            s
        }
        let forward = registry(["alpha", "beta", "gamma"]);
        let reverse = registry(["gamma", "beta", "alpha"]);
        let mut via_forward = Stats::new();
        via_forward.absorb(&forward);
        via_forward.absorb(&reverse);
        let mut via_reverse = Stats::new();
        via_reverse.absorb(&reverse);
        via_reverse.absorb(&forward);
        let order_f: Vec<_> = via_forward.counters().collect();
        let order_r: Vec<_> = via_reverse.counters().collect();
        assert_eq!(order_f, order_r, "counter order must match");
        assert_eq!(
            via_forward.dists().map(|(n, _)| n).collect::<Vec<_>>(),
            via_reverse.dists().map(|(n, _)| n).collect::<Vec<_>>(),
        );
        assert_eq!(
            via_forward.hists().map(|(n, _)| n).collect::<Vec<_>>(),
            via_reverse.hists().map(|(n, _)| n).collect::<Vec<_>>(),
        );
        assert_eq!(via_forward.to_string(), via_reverse.to_string());
    }

    /// Serializing a registry via its iterators and restoring it through
    /// the `restore_*` APIs must reproduce the same summaries — this is the
    /// contract the harness journal codec builds on.
    #[test]
    fn restore_apis_invert_the_iterators() {
        let mut original = Stats::new();
        let c = original.counter("ops");
        original.add(c, 11);
        let d = original.dist("lat");
        original.sample(d, 4);
        original.sample(d, 40);
        let h = original.hist("wake");
        original.observe(h, 0);
        original.observe(h, 3);
        original.observe(h, 1024);
        original.dist("empty");

        let mut rebuilt = Stats::new();
        for (name, value) in original.counters() {
            let id = rebuilt.counter(name);
            rebuilt.add(id, value);
        }
        for (name, summary) in original.dists() {
            rebuilt.restore_dist(name, summary);
        }
        for (name, buckets) in original.hists() {
            for (lo, count) in buckets {
                rebuilt.restore_hist_bucket(name, lo, count);
            }
        }
        assert_eq!(rebuilt.to_string(), original.to_string());
        assert_eq!(
            rebuilt.dist_summary_by_name("lat"),
            original.dist_summary_by_name("lat")
        );
        assert_eq!(
            rebuilt.hist_buckets_by_name("wake"),
            original.hist_buckets_by_name("wake")
        );
    }

    /// The checkpoint codec must be lossless: registration order, raw
    /// moments, and empty-slot sentinels all survive, and re-encoding the
    /// decoded registry is a byte-level fixed point.
    #[test]
    fn codec_save_load_is_a_fixed_point() {
        let mut original = Stats::new();
        let c = original.counter("zeta_first");
        original.add(c, 11);
        original.counter("alpha_second"); // registration order != sorted order
        let d = original.dist("lat");
        original.sample(d, 4);
        original.dist("empty"); // min sentinel must survive
        let h = original.hist("wake");
        original.observe(h, 0);
        original.observe(h, 1024);

        let mut enc = Enc::new();
        original.save(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let mut rebuilt = Stats::load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(rebuilt.to_string(), original.to_string());
        assert_eq!(
            rebuilt.counters().collect::<Vec<_>>(),
            original.counters().collect::<Vec<_>>()
        );
        // Future samples behave identically (empty-dist min sentinel kept).
        let od = original.dist("empty");
        original.sample(od, 9);
        let rd = rebuilt.dist("empty");
        rebuilt.sample(rd, 9);
        assert_eq!(
            rebuilt.dist_summary_by_name("empty"),
            original.dist_summary_by_name("empty")
        );
        let mut enc2 = Enc::new();
        rebuilt.save(&mut enc2);
        let mut enc1 = Enc::new();
        original.save(&mut enc1);
        assert_eq!(enc1.bytes(), enc2.bytes(), "encode∘decode fixed point");
    }

    #[test]
    fn codec_load_rejects_truncation() {
        let mut s = Stats::new();
        let c = s.counter("ops");
        s.add(c, 3);
        s.hist("h");
        let mut enc = Enc::new();
        s.save(&mut enc);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            let r = Stats::load(&mut dec).and_then(|_| dec.finish());
            assert!(r.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn display_renders_histograms() {
        let mut s = Stats::new();
        let h = s.hist("latency");
        s.observe(h, 0);
        s.observe(h, 1);
        s.observe(h, 3);
        s.observe(h, 3);
        let text = s.to_string();
        // Buckets: 0 -> "0:1", 1 -> "1:1", {3,3} -> "2:2".
        assert!(
            text.contains("latency: count=4 | 0:1 | 1:1 | 2:2"),
            "{text}"
        );
    }
}
