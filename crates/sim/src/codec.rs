//! Hand-rolled binary codec for whole-machine checkpoints.
//!
//! The PR 2 fault-plan codec (JSON) and the PR 5 journal codec (JSONL) are
//! text formats for *small* artifacts; machine snapshots serialize megabytes
//! of DRAM words and event-calendar entries, so they use a compact
//! little-endian binary encoding instead — still serde-free and
//! dependency-free, in the same hand-rolled spirit.
//!
//! The rules that make restore deterministic and fail-closed:
//!
//! * every multi-byte integer is little-endian,
//! * collections are length-prefixed (`u64` count, then elements),
//! * decoding never panics on malformed input: every read returns a
//!   [`CodecError`] the caller converts into a typed corruption error,
//! * encoding the decoded value re-produces the original bytes (the
//!   round-trip fixed point the checkpoint tests assert).

use std::fmt;

/// Why a snapshot byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the value it promised (truncation).
    Truncated,
    /// The bytes decoded but their content is impossible (bad tag, count
    /// beyond the section, non-UTF-8 string, CRC mismatch…).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream truncated"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A little-endian binary encoder appending to an owned buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (little-endian two's complement).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends an optional `u64` (presence byte, then the value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends an optional `u16` (presence byte, then the value).
    pub fn opt_u16(&mut self, v: Option<u16>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u16(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a UTF-8 string (`u64` byte count, then the bytes).
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes verbatim (the caller frames them).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// A little-endian binary decoder over a borrowed byte slice.
///
/// Every read checks bounds and returns [`CodecError::Truncated`] instead
/// of panicking, so a damaged snapshot surfaces as a typed error.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless every byte was consumed (trailing garbage is
    /// corruption, not padding).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(CodecError::Invalid(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    /// Consumes exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize` encoded as `u64`, rejecting values beyond the
    /// platform's address space.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("count {v} overflows usize")))
    }

    /// Reads a length prefix that must be satisfiable by the remaining
    /// bytes at `min_elem_bytes` per element — rejects absurd counts from
    /// bit-flipped length fields before any allocation happens.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if min_elem_bytes > 0 && n > self.remaining() / min_elem_bytes {
            return Err(CodecError::Invalid(format!(
                "count {n} exceeds the bytes remaining in the section"
            )));
        }
        Ok(n)
    }

    /// Reads a `bool`, rejecting bytes other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::Invalid(format!("bool byte {b:#04x}"))),
        }
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads an optional `u16`.
    pub fn opt_u16(&mut self) -> Result<Option<u16>, CodecError> {
        Ok(if self.bool()? {
            Some(self.u16()?)
        } else {
            None
        })
    }

    /// Reads a UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed bitwise.
///
/// A table-free implementation keeps the codec dependency-free; snapshot
/// sections are checksummed once per write, so throughput is irrelevant.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 7);
        e.i64(-42);
        e.usize(123_456);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(99));
        e.opt_u64(None);
        e.opt_u16(Some(7));
        e.str("checkpoint");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 7);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(99));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.opt_u16().unwrap(), Some(7));
        assert_eq!(d.str().unwrap(), "checkpoint");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed_never_a_panic() {
        let mut e = Enc::new();
        e.u64(12345);
        e.str("tail");
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let r = d.u64().and_then(|_| d.str());
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_invalid() {
        let mut d = Dec::new(&[2]);
        assert!(matches!(d.bool(), Err(CodecError::Invalid(_))));
        let mut e = Enc::new();
        e.usize(2);
        e.raw(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.str(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn count_rejects_absurd_lengths() {
        let mut e = Enc::new();
        e.usize(usize::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.count(8), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn trailing_bytes_are_invalid() {
        let d = Dec::new(&[0, 1, 2]);
        assert!(matches!(d.finish(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"snapshot section payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
