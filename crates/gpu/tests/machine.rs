//! Integration tests for the GPU timing machine with the baseline policy.

use awg_gpu::{BusyWaitPolicy, Gpu, GpuConfig, Kernel, RunOutcome, TraceEvent, WgResources};
use awg_isa::{Cond, Operand, ProgramBuilder, Reg, Special};

fn config() -> GpuConfig {
    GpuConfig::isca2020_baseline()
}

fn run(kernel: Kernel) -> (Gpu, RunOutcome) {
    let mut gpu = Gpu::new(config(), kernel, Box::new(BusyWaitPolicy::new()));
    let outcome = gpu.run();
    (gpu, outcome)
}

#[test]
fn single_wg_halts() {
    let mut b = ProgramBuilder::new("nop");
    b.compute(100);
    b.halt();
    let (_, outcome) = run(Kernel::new(b.build().unwrap(), 1, WgResources::default()));
    let summary = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    // Dispatch (200) + compute (100) + issue overheads.
    assert!(summary.cycles >= 300, "cycles = {}", summary.cycles);
    assert!(summary.cycles < 1000, "cycles = {}", summary.cycles);
}

#[test]
fn atomic_counter_sums_all_wgs() {
    let mut b = ProgramBuilder::new("count");
    b.atom_add(Reg::R0, 4096u64, 1i64);
    b.halt();
    let (gpu, outcome) = run(Kernel::new(b.build().unwrap(), 64, WgResources::default()));
    assert!(outcome.is_completed());
    assert_eq!(gpu.backing().load(4096), 64);
    assert_eq!(outcome.summary().atomics, 64);
}

#[test]
fn contended_atomics_serialize_on_the_bank() {
    // 64 WGs hammering one address must take longer than 64 spread lines.
    let hot_loop = |name: &str, spread: bool| {
        let mut b = ProgramBuilder::new(name);
        b.special(Reg::R1, Special::WgId);
        if !spread {
            b.li(Reg::R1, 0);
        }
        b.li(Reg::R2, 0);
        let head = b.new_label();
        b.bind(head);
        b.raw(awg_isa::Inst::Atom {
            op: awg_mem::AtomicOp::Add,
            dst: Reg::R0,
            mem: awg_isa::Mem::indexed(1 << 20, Reg::R1, 64),
            operand: Operand::Imm(1),
            expected: None,
        });
        b.add(Reg::R2, Reg::R2, 1i64);
        b.br(Cond::Lt, Reg::R2, Operand::Imm(32), head);
        b.halt();
        Kernel::new(b.build().unwrap(), 64, WgResources::default())
    };
    let (_, hot) = run(hot_loop("hot", false));
    let (_, cold) = run(hot_loop("cold", true));

    let hot_c = hot.completed_cycles().unwrap();
    let cold_c = cold.completed_cycles().unwrap();
    assert!(
        hot_c > cold_c,
        "hot {hot_c} should exceed spread {cold_c} (bank serialization)"
    );
}

#[test]
fn occupancy_waves_when_oversubscribed() {
    // 160 WGs, 80 slots: two dispatch waves of pure compute.
    let mut b = ProgramBuilder::new("waves");
    b.compute(10_000);
    b.halt();
    let (_, one) = run(Kernel::new(b.build().unwrap(), 80, WgResources::default()));
    let mut b = ProgramBuilder::new("waves2");
    b.compute(10_000);
    b.halt();
    let (_, two) = run(Kernel::new(b.build().unwrap(), 160, WgResources::default()));
    let c1 = one.completed_cycles().unwrap();
    let c2 = two.completed_cycles().unwrap();
    assert!(c2 >= c1 + 10_000, "two waves ({c2}) ≈ 2× one wave ({c1})");
    assert!(c2 <= 3 * c1, "not more than ~2 waves: {c2} vs {c1}");
}

#[test]
fn producer_consumer_busy_wait_completes_when_resident() {
    // WG1 spins on a flag WG0 sets after some compute.
    let flag = 4096u64;
    let mut b = ProgramBuilder::new("prodcons");
    b.special(Reg::R1, Special::WgId);
    let produce = b.new_label();
    let spin = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(0), produce);
    b.bind(spin);
    b.atom_load(Reg::R2, flag);
    b.br(Cond::Ne, Reg::R2, Operand::Imm(1), spin);
    b.jmp(done);
    b.bind(produce);
    b.compute(5_000);
    b.atom_exch(Reg::R0, flag, 1i64);
    b.bind(done);
    b.halt();
    let (gpu, outcome) = run(Kernel::new(b.build().unwrap(), 2, WgResources::default()));
    assert!(outcome.is_completed(), "{outcome:?}");
    assert_eq!(gpu.backing().load(flag), 1);
    // The consumer retried many times while the producer computed.
    assert!(outcome.summary().atomics > 10);
}

#[test]
fn unsatisfiable_spin_deadlocks() {
    let mut b = ProgramBuilder::new("hang");
    let spin = b.new_label();
    b.bind(spin);
    b.atom_load(Reg::R0, 4096u64);
    b.br(Cond::Ne, Reg::R0, Operand::Imm(1), spin);
    b.halt();
    let mut cfg = config();
    cfg.quiescence_cycles = 50_000; // fail fast in tests
    let kernel = Kernel::new(b.build().unwrap(), 1, WgResources::default());
    let mut gpu = Gpu::new(cfg, kernel, Box::new(BusyWaitPolicy::new()));
    let outcome = gpu.run();
    match outcome {
        RunOutcome::Deadlocked { unfinished, .. } => assert_eq!(unfinished, 1),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn oversubscribed_busy_wait_deadlocks_like_the_paper() {
    // One WG per CU (40 wavefronts each). 9 WGs on 8 CUs: the eight resident
    // WGs spin on a flag only WG8 writes, and WG8 can never be dispatched.
    let flag = 4096u64;
    let fat = WgResources {
        wavefronts: 40,
        lds_bytes: 0,
        vgprs_per_wavefront: 8,
    };
    let mut b = ProgramBuilder::new("oversub");
    b.special(Reg::R1, Special::WgId);
    let producer = b.new_label();
    let spin = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(8), producer);
    b.bind(spin);
    b.atom_load(Reg::R2, flag);
    b.br(Cond::Ne, Reg::R2, Operand::Imm(1), spin);
    b.jmp(done);
    b.bind(producer);
    b.atom_exch(Reg::R0, flag, 1i64);
    b.bind(done);
    b.halt();
    let mut cfg = config();
    cfg.quiescence_cycles = 100_000;
    let kernel = Kernel::new(b.build().unwrap(), 9, fat);
    let mut gpu = Gpu::new(cfg, kernel, Box::new(BusyWaitPolicy::new()));
    let outcome = gpu.run();
    match outcome {
        RunOutcome::Deadlocked { unfinished, .. } => assert_eq!(unfinished, 9),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// A busy-wait policy that *can* reschedule preempted WGs (isolates the
/// machine's swap-in path from the Baseline's missing capability).
#[derive(Debug, Default)]
struct ReschedulingBusyWait(BusyWaitPolicy);

impl awg_gpu::SchedPolicy for ReschedulingBusyWait {
    fn name(&self) -> &str {
        "BusyWait+Resched"
    }
    fn style(&self) -> awg_gpu::SyncStyle {
        awg_gpu::SyncStyle::Busy
    }
    fn on_sync_fail(
        &mut self,
        ctx: &mut awg_gpu::PolicyCtx<'_>,
        fail: &awg_gpu::SyncFail,
    ) -> awg_gpu::WaitDirective {
        self.0.on_sync_fail(ctx, fail)
    }
    fn on_monitored_update(
        &mut self,
        ctx: &mut awg_gpu::PolicyCtx<'_>,
        update: &awg_gpu::MonitoredUpdate,
    ) -> Vec<awg_gpu::Wake> {
        self.0.on_monitored_update(ctx, update)
    }
}

#[test]
fn resource_loss_preempts_and_work_completes() {
    // Independent compute WGs; losing a CU mid-run must still complete, with
    // the preempted WGs redispatched elsewhere (the policy supports it).
    let mut b = ProgramBuilder::new("loss");
    b.compute(50_000);
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 8, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(ReschedulingBusyWait::default()));
    gpu.schedule_resource_loss(0, 10_000);
    let outcome = gpu.run();
    let summary = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(summary.switches_out >= 1, "lost CU's WG must swap out");
    assert!(summary.switches_in >= 1, "and swap back in elsewhere");
}

#[test]
fn resource_loss_without_rescheduling_strands_wgs() {
    // Under the Baseline the preempted WGs never return: even pure-compute
    // kernels hang once a CU is lost, which the detector reports.
    let mut b = ProgramBuilder::new("stranded");
    b.compute(50_000);
    b.halt();
    let mut cfg = config();
    cfg.quiescence_cycles = 100_000;
    let kernel = Kernel::new(b.build().unwrap(), 8, WgResources::default());
    let mut gpu = Gpu::new(cfg, kernel, Box::new(BusyWaitPolicy::new()));
    gpu.schedule_resource_loss(0, 10_000);
    match gpu.run() {
        RunOutcome::Deadlocked { unfinished, .. } => assert_eq!(unfinished, 1),
        other => panic!("expected stranded WG, got {other:?}"),
    }
}

#[test]
fn sleep_instruction_stalls_for_requested_cycles() {
    let mut b = ProgramBuilder::new("sleepy");
    b.sleep(20_000i64);
    b.halt();
    let (_, outcome) = run(Kernel::new(b.build().unwrap(), 1, WgResources::default()));
    let s = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(s.cycles >= 20_000);
    assert!(s.waiting_cycles >= 20_000, "sleep counts as waiting");
}

#[test]
fn trace_records_dispatch_and_finish() {
    let mut b = ProgramBuilder::new("traced");
    b.compute(10);
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 2, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(BusyWaitPolicy::new()));
    gpu.enable_trace();
    assert!(gpu.run().is_completed());
    let records = gpu.trace_records();
    let dispatches = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Dispatch { .. }))
        .count();
    let finishes = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Finish))
        .count();
    assert_eq!(dispatches, 2);
    assert_eq!(finishes, 2);
}

#[test]
fn identical_runs_are_deterministic() {
    let build = || {
        let mut b = ProgramBuilder::new("det");
        b.atom_add(Reg::R0, 4096u64, 1i64);
        let spin = b.new_label();
        b.bind(spin);
        b.atom_load(Reg::R1, 4096u64);
        b.br(Cond::Lt, Reg::R1, Operand::Imm(32), spin);
        b.halt();
        Kernel::new(b.build().unwrap(), 32, WgResources::default())
    };
    let (_, a) = run(build());
    let (_, b_) = run(build());
    assert_eq!(a.completed_cycles(), b_.completed_cycles());
    assert_eq!(a.summary().atomics, b_.summary().atomics);
    assert_eq!(a.summary().insts, b_.summary().insts);
}

#[test]
fn barrier_and_store_paths_work() {
    let mut b = ProgramBuilder::new("barst");
    b.barrier();
    b.special(Reg::R1, Special::WgId);
    b.raw(awg_isa::Inst::St(
        awg_isa::Mem::indexed(1 << 20, Reg::R1, 8),
        Operand::Imm(7),
    ));
    b.ld(Reg::R2, (1 << 20) as u64);
    b.halt();
    let (gpu, outcome) = run(Kernel::new(b.build().unwrap(), 4, WgResources::default()));
    assert!(outcome.is_completed());
    for wg in 0..4u64 {
        assert_eq!(gpu.backing().load((1 << 20) + wg * 8), 7);
    }
}
