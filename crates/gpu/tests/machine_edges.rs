//! Edge cases of the timing machine: inline interpretation caps, L1
//! timing, barrier costs, launch-environment registers, and the per-WG
//! breakdown accounting.

use awg_gpu::{BusyWaitPolicy, Gpu, GpuConfig, Kernel, RunOutcome, WgResources};
use awg_isa::{AluOp, Cond, Mem, Operand, ProgramBuilder, Reg, Special};

fn config() -> GpuConfig {
    GpuConfig::isca2020_baseline()
}

fn run_one(kernel: Kernel) -> (Gpu, RunOutcome) {
    let mut gpu = Gpu::new(config(), kernel, Box::new(BusyWaitPolicy::new()));
    let outcome = gpu.run();
    (gpu, outcome)
}

/// Busy-waiting but with the WG-rescheduling capability enabled, to
/// exercise the machine's swap-in paths in isolation.
#[derive(Debug, Default)]
struct ReschedulingBusyWait(BusyWaitPolicy);

impl awg_gpu::SchedPolicy for ReschedulingBusyWait {
    fn name(&self) -> &str {
        "BusyWait+Resched"
    }
    fn style(&self) -> awg_gpu::SyncStyle {
        awg_gpu::SyncStyle::Busy
    }
    fn on_sync_fail(
        &mut self,
        ctx: &mut awg_gpu::PolicyCtx<'_>,
        fail: &awg_gpu::SyncFail,
    ) -> awg_gpu::WaitDirective {
        self.0.on_sync_fail(ctx, fail)
    }
    fn on_monitored_update(
        &mut self,
        ctx: &mut awg_gpu::PolicyCtx<'_>,
        update: &awg_gpu::MonitoredUpdate,
    ) -> Vec<awg_gpu::Wake> {
        self.0.on_monitored_update(ctx, update)
    }
}

#[test]
fn long_alu_only_loops_advance_simulated_time() {
    // A 100k-iteration pure-ALU loop must neither freeze simulated time nor
    // blow the inline-step budget: each instruction costs issue cycles.
    let mut b = ProgramBuilder::new("alu_loop");
    b.li(Reg::R1, 0);
    let head = b.new_label();
    b.bind(head);
    b.add(Reg::R1, Reg::R1, 1i64);
    b.br(Cond::Lt, Reg::R1, Operand::Imm(100_000), head);
    b.halt();
    let (_, outcome) = run_one(Kernel::new(b.build().unwrap(), 1, WgResources::default()));
    let s = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    // ~200k instructions at 4 issue cycles each (the loop is two insts per
    // iteration; the exact figure includes dispatch and the halt).
    assert!(
        s.cycles >= 100_000 * 2 * 4 - 10_000,
        "cycles = {}",
        s.cycles
    );
    assert!(s.insts >= 200_000, "insts = {}", s.insts);
}

#[test]
fn repeated_loads_hit_the_l1() {
    // First load misses to L2/DRAM; subsequent loads of the same line hit
    // the 30-cycle L1. 100 loads must therefore cost far less than 100
    // L2 round trips.
    let mut b = ProgramBuilder::new("l1");
    b.li(Reg::R1, 0);
    let head = b.new_label();
    b.bind(head);
    b.ld(Reg::R2, 4096u64);
    b.add(Reg::R1, Reg::R1, 1i64);
    b.br(Cond::Lt, Reg::R1, Operand::Imm(100), head);
    b.halt();
    let (_, outcome) = run_one(Kernel::new(b.build().unwrap(), 1, WgResources::default()));
    let cycles = outcome.completed_cycles().unwrap();
    // 100 loads * (3 issue + 30 L1) ≈ 3.5k, plus one miss and dispatch.
    assert!(cycles < 10_000, "L1 path too slow: {cycles}");
}

#[test]
fn barrier_cost_scales_with_wavefronts() {
    let run_with_wf = |wavefronts: u32| {
        let mut b = ProgramBuilder::new("bar");
        for _ in 0..50 {
            b.barrier();
        }
        b.halt();
        let res = WgResources {
            wavefronts,
            lds_bytes: 0,
            vgprs_per_wavefront: 4,
        };
        let (_, outcome) = run_one(Kernel::new(b.build().unwrap(), 1, res));
        outcome.completed_cycles().unwrap()
    };
    let narrow = run_with_wf(1);
    let wide = run_with_wf(8);
    assert!(wide > narrow, "8-wavefront joins ({wide}) > 1 ({narrow})");
}

#[test]
fn special_registers_match_launch_environment() {
    let mut b = ProgramBuilder::new("spec");
    b.special(Reg::R1, Special::WgId);
    b.special(Reg::R2, Special::NumWgs);
    b.special(Reg::R3, Special::ClusterId);
    b.special(Reg::R4, Special::WgsPerCluster);
    b.special(Reg::R5, Special::NumClusters);
    // out[wg*5 + k] = value, so the final memory witnesses every WG's view.
    b.alu(AluOp::Mul, Reg::R6, Reg::R1, 5i64);
    for (k, reg) in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]
        .into_iter()
        .enumerate()
    {
        let slot = Reg::R7;
        b.alu(AluOp::Add, slot, Reg::R6, k as i64);
        b.raw(awg_isa::Inst::St(
            Mem::indexed(1 << 20, slot, 8),
            Operand::Reg(reg),
        ));
    }
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 6, WgResources::default()).with_cluster(2);
    let (gpu, outcome) = run_one(kernel);
    assert!(outcome.is_completed());
    for wg in 0..6i64 {
        let base = (1u64 << 20) + (wg as u64) * 5 * 8;
        assert_eq!(gpu.backing().load(base), wg);
        assert_eq!(gpu.backing().load(base + 8), 6);
        assert_eq!(gpu.backing().load(base + 16), wg / 2);
        assert_eq!(gpu.backing().load(base + 24), 2);
        assert_eq!(gpu.backing().load(base + 32), 3);
    }
}

#[test]
fn breakdown_accounts_all_wg_time() {
    // compute + sleep: running ≈ compute share, waiting ≈ sleep share.
    let mut b = ProgramBuilder::new("split");
    b.compute(10_000);
    b.sleep(30_000i64);
    b.compute(10_000);
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 2, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(BusyWaitPolicy::new()));
    let outcome = gpu.run();
    let s = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(
        (s.waiting_cycles as i64 - 60_000).abs() < 2_000,
        "waiting = {}",
        s.waiting_cycles
    );
    assert!(
        s.running_cycles >= 40_000 && s.running_cycles < 50_000,
        "running = {}",
        s.running_cycles
    );
    let breakdown = gpu.wg_breakdown();
    assert_eq!(breakdown.len(), 2);
    let sum: u64 = breakdown.iter().map(|(r, w)| r + w).sum();
    assert_eq!(sum, s.running_cycles + s.waiting_cycles);
}

#[test]
fn resource_loss_on_idle_cu_is_harmless() {
    // Losing a CU that holds nothing must not disturb the rest.
    let mut b = ProgramBuilder::new("idle_loss");
    b.compute(5_000);
    b.halt();
    // 4 WGs fit on the first CU(s); CU 7 is idle.
    let kernel = Kernel::new(b.build().unwrap(), 4, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(BusyWaitPolicy::new()));
    gpu.schedule_resource_loss(7, 1_000);
    assert!(gpu.run().is_completed());
}

#[test]
fn losing_multiple_cus_still_detected_or_completed() {
    // Pure compute with rescheduling-incapable policy: strands the WGs on
    // two CUs, deadlock detected.
    let mut b = ProgramBuilder::new("two_losses");
    b.compute(80_000);
    b.halt();
    let mut cfg = config();
    cfg.quiescence_cycles = 120_000;
    let kernel = Kernel::new(b.build().unwrap(), 16, WgResources::default());
    let mut gpu = Gpu::new(cfg, kernel, Box::new(BusyWaitPolicy::new()));
    gpu.schedule_resource_loss(0, 10_000);
    gpu.schedule_resource_loss(1, 20_000);
    match gpu.run() {
        RunOutcome::Deadlocked { unfinished, .. } => {
            assert!(unfinished >= 2, "stranded WGs: {unfinished}")
        }
        RunOutcome::Completed(_) => panic!("WGs on two lost CUs cannot be rescheduled"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn store_heavy_kernel_is_write_through() {
    // Stores do not block the WG; a store storm should cost ~issue time.
    let mut b = ProgramBuilder::new("stores");
    b.li(Reg::R1, 0);
    let head = b.new_label();
    b.bind(head);
    b.raw(awg_isa::Inst::St(
        Mem::indexed(1 << 20, Reg::R1, 8),
        Operand::Reg(Reg::R1),
    ));
    b.add(Reg::R1, Reg::R1, 1i64);
    b.br(Cond::Lt, Reg::R1, Operand::Imm(200), head);
    b.halt();
    let (gpu, outcome) = run_one(Kernel::new(b.build().unwrap(), 1, WgResources::default()));
    let cycles = outcome.completed_cycles().unwrap();
    assert!(
        cycles < 10_000,
        "write-through stores must not stall: {cycles}"
    );
    assert_eq!(gpu.backing().load((1 << 20) + 8 * 199), 199);
}

#[test]
fn restored_cu_takes_work_again() {
    // Lose a CU mid-run under the Baseline (no WG rescheduling): the
    // preempted WG is stranded… until the CU comes back, when the pending
    // dispatch path is irrelevant but the *stranded ready* WG still cannot
    // return (Baseline). With a rescheduling-capable policy it must return
    // to the restored CU and complete.
    let mut b = ProgramBuilder::new("restore");
    b.compute(60_000);
    b.halt();
    // 16 WGs exactly fill a 2-CU machine slice: force tight occupancy by
    // using 8 CUs but 80 WGs (full machine).
    let kernel = Kernel::new(b.build().unwrap(), 80, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(ReschedulingBusyWait::default()));
    gpu.schedule_resource_loss(3, 10_000);
    // The machine preempts lazily at instruction boundaries: the residents'
    // 60k-cycle compute ends after the loss, so they swap out then; the CU
    // returns shortly after and can take them back.
    gpu.schedule_resource_restore(3, 80_000);
    let outcome = gpu.run();
    let s = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(s.switches_out >= 10, "the lost CU's residents swapped out");
    assert!(s.switches_in >= 1, "some returned after the restore");
}

#[test]
fn baseline_stranded_wgs_return_when_cu_restored_is_still_deadlock() {
    // Without WG rescheduling the stranded WGs cannot use the restored CU:
    // the ready queue never drains under the Baseline.
    let mut b = ProgramBuilder::new("restore_baseline");
    b.compute(60_000);
    b.halt();
    let mut cfg = config();
    cfg.quiescence_cycles = 100_000;
    let kernel = Kernel::new(b.build().unwrap(), 80, WgResources::default());
    let mut gpu = Gpu::new(cfg, kernel, Box::new(BusyWaitPolicy::new()));
    gpu.schedule_resource_loss(3, 10_000);
    // Restore long after the preempted WGs were saved: they are already in
    // the stranded ready queue, which the Baseline can never drain.
    gpu.schedule_resource_restore(3, 200_000);
    match gpu.run() {
        RunOutcome::Deadlocked { unfinished, .. } => assert!(unfinished >= 1),
        other => panic!("Baseline cannot reschedule: {other:?}"),
    }
}

#[test]
fn wait_episode_histogram_is_recorded() {
    // A producer/consumer pair under a waiting policy records the
    // consumer's hardware-wait episode length.
    #[derive(Debug, Default)]
    struct StallUntilWake;
    impl awg_gpu::SchedPolicy for StallUntilWake {
        fn name(&self) -> &str {
            "StallUntilWake"
        }
        fn style(&self) -> awg_gpu::SyncStyle {
            awg_gpu::SyncStyle::WaitingAtomic
        }
        fn on_sync_fail(
            &mut self,
            _: &mut awg_gpu::PolicyCtx<'_>,
            _: &awg_gpu::SyncFail,
        ) -> awg_gpu::WaitDirective {
            awg_gpu::WaitDirective::Wait {
                release: false,
                timeout: Some(5_000),
            }
        }
        fn on_monitored_update(
            &mut self,
            _: &mut awg_gpu::PolicyCtx<'_>,
            _: &awg_gpu::MonitoredUpdate,
        ) -> Vec<awg_gpu::Wake> {
            Vec::new()
        }
    }
    let flag = 4096u64;
    let mut b = ProgramBuilder::new("hist");
    b.special(Reg::R1, Special::WgId);
    let produce = b.new_label();
    let spin = b.new_label();
    let done = b.new_label();
    b.br(Cond::Eq, Reg::R1, Operand::Imm(0), produce);
    b.bind(spin);
    b.atom_cmp_wait(Reg::R2, flag, 1i64);
    b.br(Cond::Ne, Reg::R2, Operand::Imm(1), spin);
    b.jmp(done);
    b.bind(produce);
    b.compute(12_000);
    b.atom_exch(Reg::R0, flag, 1i64);
    b.bind(done);
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 2, WgResources::default());
    let mut gpu = Gpu::new(config(), kernel, Box::new(StallUntilWake));
    let outcome = gpu.run();
    let summary = match outcome {
        RunOutcome::Completed(s) => s,
        other => panic!("{other:?}"),
    };
    let buckets = summary
        .stats
        .hist_buckets_by_name("wait_episode_cycles")
        .expect("histogram registered");
    let episodes: u64 = buckets.iter().map(|&(_, c)| c).sum();
    // The consumer waited across at least two 5k timeouts plus the final
    // wake; each resumption is one recorded episode.
    assert!(
        episodes >= 2,
        "episodes = {episodes}, buckets = {buckets:?}"
    );
}
