//! Mid-run checkpoint/restore determinism at the machine level: a run
//! resumed from a snapshot must produce the same digest trail and summary
//! as the same run left uninterrupted — with and without an active chaos
//! fault plan.

use std::path::{Path, PathBuf};

use awg_gpu::{
    read_checkpoint, restore_into, BusyWaitPolicy, CheckpointSpec, FaultPlan, FaultPlanConfig, Gpu,
    GpuConfig, Kernel, RunOutcome, SimError, WgResources,
};
use awg_isa::{Cond, Operand, ProgramBuilder, Reg, Special};

const DIGEST_WINDOW: u64 = 500;
const IDENTITY: u64 = 0xA110_CA7E;

/// 64 WGs hammering per-WG counters with a contended shared counter mixed
/// in: enough atomic traffic, bank queueing, and retry churn to make a
/// snapshot boundary land mid-flight.
fn kernel() -> Kernel {
    let mut b = ProgramBuilder::new("ckpt-mix");
    b.special(Reg::R1, Special::WgId);
    b.li(Reg::R2, 0);
    let head = b.new_label();
    b.bind(head);
    b.raw(awg_isa::Inst::Atom {
        op: awg_mem::AtomicOp::Add,
        dst: Reg::R0,
        mem: awg_isa::Mem::indexed(1 << 20, Reg::R1, 64),
        operand: Operand::Imm(1),
        expected: None,
    });
    b.atom_add(Reg::R0, 4096u64, 1i64);
    b.add(Reg::R2, Reg::R2, 1i64);
    b.br(Cond::Lt, Reg::R2, Operand::Imm(16), head);
    b.halt();
    Kernel::new(b.build().unwrap(), 64, WgResources::default())
}

fn fresh(chaos: bool) -> Gpu {
    let mut gpu = Gpu::new(
        GpuConfig::isca2020_baseline(),
        kernel(),
        Box::new(BusyWaitPolicy::new()),
    );
    gpu.enable_digest_trail(DIGEST_WINDOW);
    gpu.enable_invariant_oracle();
    if chaos {
        let cfg = FaultPlanConfig::standard(8).resident_safe();
        gpu.install_fault_plan(FaultPlan::generate(11, &cfg));
    }
    gpu
}

fn ckpt_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("awg_ckpt_resume_{}_{name}", std::process::id()));
    p
}

fn spec(path: &Path, every: u64) -> CheckpointSpec {
    CheckpointSpec {
        path: path.to_path_buf(),
        every,
        identity: IDENTITY,
        kill_after: None,
    }
}

fn run_resumed(chaos: bool, every: u64, name: &str) -> (Vec<u64>, u64, Vec<u64>, u64) {
    // Reference: uninterrupted.
    let mut reference = fresh(chaos);
    let ref_outcome = reference.run();
    assert!(ref_outcome.is_completed(), "{ref_outcome:?}");
    let ref_trail = reference.digest_trail().to_vec();
    let ref_cycles = ref_outcome.summary().cycles;

    // Checkpointed run: snapshots must not perturb the simulation.
    let path = ckpt_path(name);
    let mut writer = fresh(chaos);
    writer.set_checkpoint(spec(&path, every));
    let outcome = writer.run();
    assert!(outcome.is_completed(), "{outcome:?}");
    assert!(
        writer.checkpoint_error().is_none(),
        "{:?}",
        writer.checkpoint_error()
    );
    assert!(
        writer.checkpoints_written() >= 2,
        "expected several snapshots, got {}",
        writer.checkpoints_written()
    );
    assert_eq!(writer.digest_trail(), ref_trail.as_slice());
    assert_eq!(outcome.summary().cycles, ref_cycles);

    // Resume from the last snapshot left on disk and run to completion.
    let image = read_checkpoint(&path).unwrap();
    assert!(image.cycle > 0, "snapshot should be mid-run");
    assert!(
        image.cycle < ref_cycles,
        "snapshot should predate completion"
    );
    let mut resumed = fresh(chaos);
    resumed.set_checkpoint(spec(&path, every));
    restore_into(&mut resumed, &image, IDENTITY).unwrap();
    assert_eq!(resumed.now(), image.cycle);
    let outcome = resumed.run();
    assert!(outcome.is_completed(), "{outcome:?}");
    std::fs::remove_file(&path).unwrap();
    (
        ref_trail,
        ref_cycles,
        resumed.digest_trail().to_vec(),
        outcome.summary().cycles,
    )
}

#[test]
fn resumed_run_matches_uninterrupted() {
    let (ref_trail, ref_cycles, trail, cycles) = run_resumed(false, 1_000, "plain");
    assert_eq!(trail, ref_trail, "digest trail diverged after restore");
    assert_eq!(cycles, ref_cycles);
}

#[test]
fn resumed_run_matches_under_active_chaos_plan() {
    let (ref_trail, ref_cycles, trail, cycles) = run_resumed(true, 2_000, "chaos");
    assert_eq!(
        trail, ref_trail,
        "digest trail diverged after chaotic restore"
    );
    assert_eq!(cycles, ref_cycles);
}

#[test]
fn multiple_intervals_agree() {
    for (every, name) in [(700, "i700"), (3_000, "i3000")] {
        let (ref_trail, ref_cycles, trail, cycles) = run_resumed(false, every, name);
        assert_eq!(trail, ref_trail, "interval {every} diverged");
        assert_eq!(cycles, ref_cycles, "interval {every} cycles diverged");
    }
}

#[test]
fn snapshot_from_different_kernel_shape_is_rejected() {
    let path = ckpt_path("shape");
    let mut writer = fresh(false);
    writer.set_checkpoint(spec(&path, 1_000));
    assert!(writer.run().is_completed());
    let image = read_checkpoint(&path).unwrap();

    // Same identity claimed, but a machine with half the WGs: the decoder
    // must reject the shape mismatch rather than resume nonsense.
    let mut b = ProgramBuilder::new("small");
    b.compute(50);
    b.halt();
    let kernel = Kernel::new(b.build().unwrap(), 32, WgResources::default());
    let mut wrong = Gpu::new(
        GpuConfig::isca2020_baseline(),
        kernel,
        Box::new(BusyWaitPolicy::new()),
    );
    let err = restore_into(&mut wrong, &image, IDENTITY).unwrap_err();
    assert!(matches!(err, SimError::CorruptCheckpoint(_)), "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn injected_cu_loss_after_restore_changes_the_future() {
    let path = ckpt_path("whatif");
    let mut reference = fresh(false);
    let outcome = reference.run();
    assert!(outcome.is_completed());
    let ref_trail = reference.digest_trail().to_vec();
    let ref_cycles = outcome.summary().cycles;
    assert!(
        ref_cycles > 4_000,
        "workload too short for a mid-run snapshot"
    );

    // Stop a checkpointing twin early so the snapshot on disk is genuinely
    // mid-run (the drop must land while work is still in flight).
    let mut writer = fresh(false);
    writer.set_checkpoint(spec(&path, 1_000));
    writer.set_watchdog(awg_gpu::Watchdog::new(None, Some(ref_cycles / 2)));
    let _ = writer.run();

    let image = read_checkpoint(&path).unwrap();
    let mut whatif = fresh(false);
    restore_into(&mut whatif, &image, IDENTITY).unwrap();
    let drop_at = image.cycle + 100;
    whatif.inject_resource_loss(2, drop_at).unwrap();
    let outcome = whatif.run();
    // Losing a CU mid-run must show up. Under the busy-wait baseline the
    // dominant effect is the paper's one: preempted WGs are stranded and
    // the run deadlocks instead of completing.
    let diverged = match &outcome {
        RunOutcome::Completed(s) => {
            s.cycles != ref_cycles || whatif.digest_trail() != ref_trail.as_slice()
        }
        _ => true,
    };
    assert!(
        diverged,
        "dropping CU 2 at cycle {drop_at} had no observable effect"
    );

    // Out-of-range CU and past cycle are typed config errors.
    let mut whatif = fresh(false);
    restore_into(&mut whatif, &image, IDENTITY).unwrap();
    assert!(matches!(
        whatif.inject_resource_loss(99, drop_at),
        Err(SimError::Config(_))
    ));
    assert!(matches!(
        whatif.inject_resource_loss(2, image.cycle.saturating_sub(1)),
        Err(SimError::Config(_))
    ));
    std::fs::remove_file(&path).unwrap();
}
