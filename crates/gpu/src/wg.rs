//! Work-group contexts and the WG state machine.

use awg_isa::{RegFile, NUM_REGS};
use awg_mem::Addr;
use awg_sim::{CodecError, Cycle, Dec, Enc};

use crate::policy::{SyncCond, WaitDirective};

/// A work-group identifier (flat index within the grid).
pub type WgId = u32;

/// The WG scheduling states tracked by the CP (§V.A: "stalled, context
/// switching out, waiting, ready, or context switching in").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WgState {
    /// Not yet dispatched.
    Pending,
    /// Resources reserved, dispatch latency in flight.
    Dispatching,
    /// Resident and executing (or blocked on an in-flight memory op).
    Running,
    /// Resident but idle for a software-visible duration (`s_sleep`,
    /// backoff, Timeout's non-oversubscribed stall).
    Sleeping,
    /// Resident, waiting on a synchronization condition while holding its
    /// resources.
    Stalled,
    /// Context save traffic in flight.
    SwappingOut,
    /// Context switched out, still waiting on its condition.
    SwappedWaiting,
    /// Context switched out and eligible to be swapped back in.
    ReadySwapped,
    /// Context restore traffic in flight.
    SwappingIn,
    /// Halted.
    Finished,
}

impl WgState {
    /// All states, in their stable checkpoint-encoding order.
    pub const ALL: [WgState; 10] = [
        WgState::Pending,
        WgState::Dispatching,
        WgState::Running,
        WgState::Sleeping,
        WgState::Stalled,
        WgState::SwappingOut,
        WgState::SwappedWaiting,
        WgState::ReadySwapped,
        WgState::SwappingIn,
        WgState::Finished,
    ];

    fn encode_index(self) -> u8 {
        self.census_index() as u8
    }

    /// This state's position in [`ALL`](Self::ALL) — the row index used by
    /// the machine's struct-of-arrays state census and the checkpoint
    /// encoding. A direct match, not a linear search: the census is
    /// updated on every WG transition, squarely on the wake/dispatch path.
    pub(crate) fn census_index(self) -> usize {
        match self {
            WgState::Pending => 0,
            WgState::Dispatching => 1,
            WgState::Running => 2,
            WgState::Sleeping => 3,
            WgState::Stalled => 4,
            WgState::SwappingOut => 5,
            WgState::SwappedWaiting => 6,
            WgState::ReadySwapped => 7,
            WgState::SwappingIn => 8,
            WgState::Finished => 9,
        }
    }

    /// Whether the WG currently holds CU resources.
    pub fn is_resident(self) -> bool {
        matches!(
            self,
            WgState::Dispatching
                | WgState::Running
                | WgState::Sleeping
                | WgState::Stalled
                | WgState::SwappingOut
        )
    }

    /// Whether the WG counts as *waiting* for the Fig 11 breakdown.
    pub fn is_waiting(self) -> bool {
        matches!(
            self,
            WgState::Sleeping
                | WgState::Stalled
                | WgState::SwappingOut
                | WgState::SwappedWaiting
                | WgState::ReadySwapped
                | WgState::SwappingIn
        )
    }

    /// The telemetry-level accounting class for this state.
    ///
    /// Collapses the CP's internal distinctions into the coarser classes
    /// the telemetry hub reports time-in-state for.
    pub fn progress_class(self) -> awg_sim::telemetry::ProgressState {
        use awg_sim::telemetry::ProgressState;
        match self {
            WgState::Pending | WgState::Dispatching => ProgressState::Queued,
            WgState::Running => ProgressState::Running,
            WgState::Stalled => ProgressState::Stalled,
            WgState::Sleeping => ProgressState::Sleeping,
            WgState::SwappingOut => ProgressState::SwapOut,
            WgState::SwappedWaiting | WgState::ReadySwapped => ProgressState::SwappedOut,
            WgState::SwappingIn => ProgressState::SwapIn,
            WgState::Finished => ProgressState::Finished,
        }
    }
}

/// The response of a completed sync-sensitive operation, parked until the
/// WG is allowed to observe it (Mesa semantics: the program rechecks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkedResponse {
    /// Destination register, if any (`wait` instructions have none).
    pub dst: Option<awg_isa::Reg>,
    /// Value to deliver.
    pub value: i64,
}

/// One work-group's full simulation context.
#[derive(Debug)]
pub struct Wg {
    /// Flat id.
    pub id: WgId,
    /// Scheduling state.
    pub state: WgState,
    /// CU the WG is resident on, when resident.
    pub cu: Option<usize>,
    /// Program counter.
    pub pc: usize,
    /// Architectural registers.
    pub regs: RegFile,
    /// Event-staleness token: bumped whenever the WG changes state so that
    /// in-flight events for the old state are ignored.
    pub token: u64,
    /// Parked response to deliver on wake.
    pub parked: Option<ParkedResponse>,
    /// Condition the WG is waiting on, when waiting.
    pub cond: Option<SyncCond>,
    /// Policy directive to apply when the in-flight sync response arrives.
    pub pending_directive: Option<WaitDirective>,
    /// Absolute deadline of the current fallback timeout, if any (kept so a
    /// forced context switch can re-arm the timeout after the transition).
    pub timeout_at: Option<Cycle>,
    /// A wake arrived while the WG was mid-swap-out; it becomes ready as
    /// soon as the save completes.
    pub woke: bool,
    /// The resource-loss event wants this WG preempted as soon as its
    /// in-flight operation completes.
    pub force_out: bool,
    /// Cycle the WG was first dispatched.
    pub dispatched_at: Option<Cycle>,
    /// Cycle the WG finished.
    pub finished_at: Option<Cycle>,
    /// Cycle the current waiting episode began.
    pub wait_since: Option<Cycle>,
    /// Accumulated cycles in waiting states.
    pub waiting_cycles: u64,
    /// Dynamic instruction count.
    pub insts: u64,
    /// Dynamic atomic instruction count (the Fig 9 metric).
    pub atomics: u64,
    /// Number of context switches out.
    pub switches_out: u32,
    /// A wake was delivered and the next sync check has not yet succeeded
    /// (used to count unnecessary resumes).
    pub wake_pending_check: bool,
    /// Address of the most recent atomic (spin detection for busy-wait
    /// architectures that never declare a wait condition).
    pub last_atomic: Option<Addr>,
    /// Consecutive atomics issued to `last_atomic`.
    pub atomic_streak: u64,
    /// The WG's current off-CU episode was forced by an injected fault
    /// (CU loss) rather than chosen by the scheduler. Cleared on the next
    /// return to `Running`; drives the telemetry attribution ledger's
    /// fault-stall vs. preempted split.
    pub fault_evicted: bool,
}

impl Wg {
    /// Creates a pending WG.
    pub fn new(id: WgId) -> Self {
        Wg {
            id,
            state: WgState::Pending,
            cu: None,
            pc: 0,
            regs: RegFile::new(),
            token: 0,
            parked: None,
            cond: None,
            pending_directive: None,
            timeout_at: None,
            woke: false,
            force_out: false,
            dispatched_at: None,
            finished_at: None,
            wait_since: None,
            waiting_cycles: 0,
            insts: 0,
            atomics: 0,
            switches_out: 0,
            wake_pending_check: false,
            last_atomic: None,
            atomic_streak: 0,
            fault_evicted: false,
        }
    }

    /// Bumps the staleness token and returns the new value.
    pub fn bump_token(&mut self) -> u64 {
        self.token += 1;
        self.token
    }

    /// Transitions to `state`, maintaining the waiting-time accounting.
    pub fn set_state(&mut self, state: WgState, now: Cycle) {
        let was_waiting = self.state.is_waiting();
        let is_waiting = state.is_waiting();
        if !was_waiting && is_waiting {
            self.wait_since = Some(now);
        } else if was_waiting && !is_waiting {
            if let Some(since) = self.wait_since.take() {
                self.waiting_cycles += now - since;
            }
        }
        self.state = state;
    }

    /// Total cycles between dispatch and finish (or `now` if unfinished).
    pub fn lifetime(&self, now: Cycle) -> u64 {
        match (self.dispatched_at, self.finished_at) {
            (Some(d), Some(f)) => f - d,
            (Some(d), None) => now - d,
            _ => 0,
        }
    }

    /// Cycles spent running (lifetime minus waiting).
    pub fn running_cycles(&self, now: Cycle) -> u64 {
        let waiting = self.waiting_cycles + self.wait_since.map_or(0, |s| now.saturating_sub(s));
        self.lifetime(now).saturating_sub(waiting)
    }

    /// Serializes the WG's entire context — scheduling state, PC, registers,
    /// parked responses, wait condition, and accounting — for whole-machine
    /// checkpoints. The id is identity (the grid rebuilds it), not state.
    pub fn save(&self, enc: &mut Enc) {
        enc.u8(self.state.encode_index());
        enc.opt_u64(self.cu.map(|c| c as u64));
        enc.usize(self.pc);
        for &w in self.regs.words() {
            enc.i64(w);
        }
        enc.u64(self.token);
        match self.parked {
            None => enc.bool(false),
            Some(p) => {
                enc.bool(true);
                match p.dst {
                    None => enc.bool(false),
                    Some(r) => {
                        enc.bool(true);
                        enc.u8(r.index() as u8);
                    }
                }
                enc.i64(p.value);
            }
        }
        match self.cond {
            None => enc.bool(false),
            Some(c) => {
                enc.bool(true);
                enc.u64(c.addr);
                enc.i64(c.expected);
            }
        }
        match self.pending_directive {
            None => enc.bool(false),
            Some(d) => {
                enc.bool(true);
                save_directive(enc, d);
            }
        }
        enc.opt_u64(self.timeout_at);
        enc.bool(self.woke);
        enc.bool(self.force_out);
        enc.opt_u64(self.dispatched_at);
        enc.opt_u64(self.finished_at);
        enc.opt_u64(self.wait_since);
        enc.u64(self.waiting_cycles);
        enc.u64(self.insts);
        enc.u64(self.atomics);
        enc.u32(self.switches_out);
        enc.bool(self.wake_pending_check);
        enc.opt_u64(self.last_atomic);
        enc.u64(self.atomic_streak);
        enc.bool(self.fault_evicted);
    }

    /// Overlays state written by [`Wg::save`] onto this WG (id untouched).
    pub fn load(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        let idx = dec.u8()? as usize;
        self.state = *WgState::ALL
            .get(idx)
            .ok_or_else(|| CodecError::Invalid(format!("bad WG state index {idx}")))?;
        self.cu = dec.opt_u64()?.map(|c| c as usize);
        self.pc = dec.usize()?;
        let mut words = [0i64; NUM_REGS];
        for w in &mut words {
            *w = dec.i64()?;
        }
        self.regs.load_words(words);
        self.token = dec.u64()?;
        self.parked = if dec.bool()? {
            let dst = if dec.bool()? {
                let r = dec.u8()?;
                if (r as usize) >= NUM_REGS {
                    return Err(CodecError::Invalid(format!("bad register index {r}")));
                }
                Some(awg_isa::Reg::new(r))
            } else {
                None
            };
            Some(ParkedResponse {
                dst,
                value: dec.i64()?,
            })
        } else {
            None
        };
        self.cond = if dec.bool()? {
            Some(SyncCond {
                addr: dec.u64()?,
                expected: dec.i64()?,
            })
        } else {
            None
        };
        self.pending_directive = if dec.bool()? {
            Some(load_directive(dec)?)
        } else {
            None
        };
        self.timeout_at = dec.opt_u64()?;
        self.woke = dec.bool()?;
        self.force_out = dec.bool()?;
        self.dispatched_at = dec.opt_u64()?;
        self.finished_at = dec.opt_u64()?;
        self.wait_since = dec.opt_u64()?;
        self.waiting_cycles = dec.u64()?;
        self.insts = dec.u64()?;
        self.atomics = dec.u64()?;
        self.switches_out = dec.u32()?;
        self.wake_pending_check = dec.bool()?;
        self.last_atomic = dec.opt_u64()?;
        self.atomic_streak = dec.u64()?;
        self.fault_evicted = dec.bool()?;
        Ok(())
    }
}

fn save_directive(enc: &mut Enc, d: WaitDirective) {
    match d {
        WaitDirective::Retry => enc.u8(0),
        WaitDirective::SleepFor(c) => {
            enc.u8(1);
            enc.u64(c);
        }
        WaitDirective::Wait { release, timeout } => {
            enc.u8(2);
            enc.bool(release);
            enc.opt_u64(timeout);
        }
    }
}

fn load_directive(dec: &mut Dec<'_>) -> Result<WaitDirective, CodecError> {
    match dec.u8()? {
        0 => Ok(WaitDirective::Retry),
        1 => Ok(WaitDirective::SleepFor(dec.u64()?)),
        2 => Ok(WaitDirective::Wait {
            release: dec.bool()?,
            timeout: dec.opt_u64()?,
        }),
        t => Err(CodecError::Invalid(format!("bad wait directive tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_classification() {
        assert!(WgState::Running.is_resident());
        assert!(WgState::Stalled.is_resident());
        assert!(WgState::SwappingOut.is_resident());
        assert!(!WgState::SwappedWaiting.is_resident());
        assert!(!WgState::Pending.is_resident());
        assert!(!WgState::Finished.is_resident());
    }

    #[test]
    fn waiting_classification() {
        assert!(WgState::Stalled.is_waiting());
        assert!(WgState::Sleeping.is_waiting());
        assert!(WgState::SwappedWaiting.is_waiting());
        assert!(!WgState::Running.is_waiting());
        assert!(!WgState::Pending.is_waiting());
    }

    #[test]
    fn waiting_accounting_across_transitions() {
        let mut wg = Wg::new(0);
        wg.dispatched_at = Some(100);
        wg.set_state(WgState::Running, 100);
        wg.set_state(WgState::Stalled, 200);
        wg.set_state(WgState::Running, 500);
        wg.set_state(WgState::Finished, 700);
        wg.finished_at = Some(700);
        assert_eq!(wg.waiting_cycles, 300);
        assert_eq!(wg.lifetime(700), 600);
        assert_eq!(wg.running_cycles(700), 300);
    }

    #[test]
    fn waiting_chain_counts_once() {
        let mut wg = Wg::new(0);
        wg.dispatched_at = Some(0);
        wg.set_state(WgState::Running, 0);
        wg.set_state(WgState::Stalled, 100);
        // Stalled -> SwappingOut -> SwappedWaiting are all waiting states;
        // the episode must be accounted exactly once.
        wg.set_state(WgState::SwappingOut, 150);
        wg.set_state(WgState::SwappedWaiting, 300);
        wg.set_state(WgState::ReadySwapped, 400);
        wg.set_state(WgState::SwappingIn, 450);
        wg.set_state(WgState::Running, 600);
        assert_eq!(wg.waiting_cycles, 500);
    }

    #[test]
    fn token_invalidates_monotonically() {
        let mut wg = Wg::new(0);
        let a = wg.bump_token();
        let b = wg.bump_token();
        assert!(b > a);
    }

    #[test]
    fn unfinished_running_cycles_use_now() {
        let mut wg = Wg::new(0);
        wg.dispatched_at = Some(0);
        wg.set_state(WgState::Running, 0);
        wg.set_state(WgState::Stalled, 60);
        assert_eq!(wg.running_cycles(100), 60);
        assert_eq!(wg.lifetime(100), 100);
    }
}
