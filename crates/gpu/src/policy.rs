//! The scheduling-policy interface between the GPU core and the paper's
//! architecture family.
//!
//! Whenever a WG's synchronization check fails (a waiting atomic's
//! comparison misses, or a `wait` instruction arms the monitor), the machine
//! asks the installed [`SchedPolicy`] what to do. Whenever an atomic commits
//! on a *monitored* L2 line, the policy is notified and may wake waiters.
//! All hardware state a policy needs — SyncMon condition caches, Bloom
//! filters, the Monitor Log — lives inside the policy implementation (crate
//! `awg-core`); the machine only executes its directives.

use awg_mem::{Addr, L2};
use awg_sim::{CodecError, Cycle, Dec, Enc, Stats};

use crate::wg::WgId;

/// A synchronization waiting condition: "resume when `addr` holds
/// `expected`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncCond {
    /// The synchronization variable's address.
    pub addr: Addr,
    /// The value the waiter needs to observe.
    pub expected: i64,
}

/// Which program variant a policy requires (§IV: different architectures
/// use different instructions at the synchronization points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncStyle {
    /// Plain atomics in a busy-wait loop (the paper's Baseline).
    Busy,
    /// Busy-wait with software exponential backoff via `s_sleep` (§IV.C.i).
    Backoff,
    /// Poll with a plain atomic, then arm the monitor with a separate
    /// `wait` instruction (MonRS-All / MonR-All; has the Fig 10 race).
    WaitInst,
    /// Waiting atomics carrying the expected value (Timeout, MonNR-*, AWG).
    WaitingAtomic,
}

/// Details of a failed synchronization check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncFail {
    /// The WG whose check failed.
    pub wg: WgId,
    /// The condition it now waits on.
    pub cond: SyncCond,
    /// The value the atomic actually observed (for `wait` instructions this
    /// is the value at arm time, which real hardware does not examine —
    /// monitor policies must ignore it).
    pub observed: i64,
    /// `true` when the condition arrived via a standalone `wait`
    /// instruction rather than a waiting atomic.
    pub via_wait_inst: bool,
}

/// An atomic or store that committed at the L2. The SyncMon physically
/// observes every bank access; `monitored` says whether the target line's
/// monitored bit was set (the condition-checking policies act only then,
/// but AWG's Bloom filters record update values regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitoredUpdate {
    /// Word address accessed.
    pub addr: Addr,
    /// Value before the operation.
    pub old: i64,
    /// Value after the operation.
    pub new: i64,
    /// Whether memory was modified.
    pub wrote: bool,
    /// Whether the line's monitored bit was set at commit.
    pub monitored: bool,
    /// The WG that performed the access.
    pub by_wg: WgId,
}

/// What a waiting WG should do, decided at the failed check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDirective {
    /// Deliver the failed value immediately; the program's loop retries
    /// (busy-waiting).
    Retry,
    /// Stall resident for exactly this many cycles, then deliver the failed
    /// value (software backoff, Timeout's non-oversubscribed stall).
    SleepFor(Cycle),
    /// Enter the hardware waiting state.
    Wait {
        /// `true`: context switch out, releasing CU resources.
        /// `false`: stall resident.
        release: bool,
        /// Fallback timeout; `None` waits indefinitely for a monitor
        /// notification (dangerous for racy `wait`-instruction policies).
        timeout: Option<Cycle>,
    },
}

/// What to do when a waiting WG's fallback timeout fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Wake the WG; its program rechecks the condition (Mesa semantics).
    Wake,
    /// Keep waiting, but escalate: optionally context switch out now, with
    /// a new fallback timeout (AWG's predicted-stall-then-switch, §IV.B).
    Escalate {
        /// Context switch the WG out if it is still resident.
        release: bool,
        /// New fallback timeout.
        timeout: Option<Cycle>,
    },
}

/// A wake directive issued by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wake {
    /// The WG to resume.
    pub wg: WgId,
    /// Extra delay before the resume signal reaches the WG (the MinResume
    /// oracle staggers wakes with this).
    pub delay: Cycle,
}

impl Wake {
    /// An immediate wake.
    pub fn now(wg: WgId) -> Self {
        Wake { wg, delay: 0 }
    }

    /// A wake delayed by `delay` cycles.
    pub fn after(wg: WgId, delay: Cycle) -> Self {
        Wake { wg, delay }
    }
}

/// A fault injected directly into a policy's hardware structures (SyncMon
/// condition cache, Bloom filters) by the chaos engine. The machine only
/// transports these; policies without monitor hardware ignore them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyFault {
    /// Forcibly evict up to `count` live SyncMon condition entries, as if
    /// capacity pressure had victimized them. Evicted waiters must be
    /// rescued by fallback timeouts — exactly the liveness property under
    /// test.
    EvictConditions {
        /// Maximum entries to evict.
        count: usize,
    },
    /// Pollute the update Bloom filters of every live condition with
    /// `unique_values` synthetic distinct values, forcing false positives
    /// (and, for AWG, pushing the resume-count predictor toward
    /// resume-all storms).
    BloomStorm {
        /// Distinct synthetic values inserted per filter.
        unique_values: usize,
    },
}

/// Which wait structure holds a registered waiter.
///
/// The invariant oracle uses this to prove the superset property: every
/// waiting WG must be reachable by *some* wake path — a SyncMon entry, a
/// spilled Monitor Log record, a policy-private queue, or (failing all of
/// those) a pending fallback timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiterStructure {
    /// Cached in the SyncMon condition table; the waiter's address must
    /// still carry its L2 monitored bit or updates cannot notify it.
    SyncMon,
    /// Spilled to the Monitor Log; the CP's periodic tick rescues it.
    MonitorLog,
    /// Held in a policy-private software structure serviced by the CP.
    PolicyLocal,
}

/// One entry of a policy's waiter registry: which condition a WG waits on
/// and which structure is responsible for waking it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaiterRecord {
    /// The condition the WG is parked on.
    pub cond: SyncCond,
    /// The structure that will deliver its wake.
    pub structure: WaiterStructure,
}

/// A point-in-time view of one live monitor (SyncMon) condition entry,
/// exported for forensic hang reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorEntrySnapshot {
    /// The monitored synchronization address.
    pub addr: Addr,
    /// The value the entry waits for.
    pub expected: i64,
    /// Number of WGs parked on this entry.
    pub waiters: usize,
}

/// Machine state a policy may inspect and (for its own hardware structures)
/// mutate while making decisions.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current cycle.
    pub now: Cycle,
    /// The shared L2 (monitored bits, timed condition-check reads, Monitor
    /// Log traffic).
    pub l2: &'a mut L2,
    /// The run's statistics registry.
    pub stats: &'a mut Stats,
    /// WGs that have never been dispatched.
    pub pending_wgs: usize,
    /// Swapped-out WGs that are ready to be swapped back in.
    pub ready_wgs: usize,
    /// Swapped-out WGs still waiting on conditions.
    pub swapped_waiting_wgs: usize,
    /// Total WGs in the kernel.
    pub total_wgs: u64,
}

impl PolicyCtx<'_> {
    /// Whether yielding resources would let other WGs make progress — the
    /// paper's rule: "we context switch out a WG only if there are other
    /// WGs ready to be resumed or started" (§IV.B).
    pub fn oversubscribed(&self) -> bool {
        self.pending_wgs + self.ready_wgs > 0
    }
}

/// A work-group scheduling policy (one member of the paper's architecture
/// family).
pub trait SchedPolicy {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &str;

    /// Which program variant this policy requires at sync points.
    fn style(&self) -> SyncStyle;

    /// Whether the architecture can redispatch WGs that were context
    /// switched out (the WG-granularity rescheduling capability AWG adds).
    /// The paper's Baseline and Sleep lack it: when the kernel-level
    /// scheduler preempts a CU's WGs (§VI), those WGs never return, so the
    /// oversubscribed scenario deadlocks (Fig 15).
    fn supports_wg_rescheduling(&self) -> bool {
        true
    }

    /// A WG's synchronization check failed; decide how it waits.
    fn on_sync_fail(&mut self, ctx: &mut PolicyCtx<'_>, fail: &SyncFail) -> WaitDirective;

    /// An access committed on a monitored line; return the WGs to wake.
    fn on_monitored_update(
        &mut self,
        ctx: &mut PolicyCtx<'_>,
        update: &MonitoredUpdate,
    ) -> Vec<Wake>;

    /// A waiting WG's fallback timeout fired.
    fn on_wait_timeout(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _wg: WgId,
        _cond: &SyncCond,
    ) -> TimeoutAction {
        TimeoutAction::Wake
    }

    /// A previously-issued wake has been delivered to `wg` (its parked
    /// response released). Policies use this to drop bookkeeping.
    fn on_wake_delivered(&mut self, _ctx: &mut PolicyCtx<'_>, _wg: WgId, _cond: &SyncCond) {}

    /// A WG finished; drop any registrations it still holds.
    fn on_wg_finished(&mut self, _ctx: &mut PolicyCtx<'_>, _wg: WgId) {}

    /// Period of the CP's firmware tick, if this policy uses one.
    fn cp_tick_period(&self) -> Option<Cycle> {
        None
    }

    /// The CP's periodic firmware work (Monitor Log draining, spilled
    /// condition checks). Returns WGs to wake.
    fn on_cp_tick(&mut self, _ctx: &mut PolicyCtx<'_>) -> Vec<Wake> {
        Vec::new()
    }

    /// The chaos engine injected a fault into this policy's hardware
    /// structures. Returns WGs the policy chooses to wake in response
    /// (e.g. waiters it can no longer track). Policies without monitor
    /// hardware ignore faults.
    fn on_fault(&mut self, _ctx: &mut PolicyCtx<'_>, _fault: &PolicyFault) -> Vec<Wake> {
        Vec::new()
    }

    /// Point-in-time view of the policy's live monitor entries, for
    /// forensic hang reports. Policies without monitor hardware return
    /// nothing.
    fn monitor_snapshot(&self) -> Vec<MonitorEntrySnapshot> {
        Vec::new()
    }

    /// Every waiter this policy currently holds a registration for, sorted
    /// by WG id, exactly one record per WG. The invariant oracle cross
    /// checks this against machine state (no waiter registered twice, no
    /// waiting WG unreachable by every wake path). Policies whose waiters
    /// are rescued purely by machine-level timeouts return nothing.
    fn waiter_registry(&self) -> Vec<(WgId, WaiterRecord)> {
        Vec::new()
    }

    /// Dump policy-internal measurements into the run statistics.
    fn report(&self, _stats: &mut Stats) {}

    /// Serializes every piece of mutable policy state (SyncMon tables,
    /// Bloom filters, predictors, counters) for whole-machine checkpoints.
    /// Configuration knobs are identity, not state: [`Self::load_state`]
    /// overlays onto a policy constructed with the same configuration.
    /// The default covers stateless policies.
    fn save_state(&self, _enc: &mut Enc) {}

    /// Overlays state written by [`Self::save_state`] onto this policy.
    /// A restored policy must behave *exactly* as the original would have —
    /// deterministic resume depends on it.
    fn load_state(&mut self, _dec: &mut Dec<'_>) -> Result<(), CodecError> {
        Ok(())
    }
}

/// The paper's **Baseline**: software busy-waiting, no hardware support.
/// Every failed check retries immediately; in oversubscribed scenarios this
/// deadlocks (Fig 15), which the machine's detector reports.
#[derive(Debug, Clone, Default)]
pub struct BusyWaitPolicy {
    fails: u64,
}

impl BusyWaitPolicy {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedPolicy for BusyWaitPolicy {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn style(&self) -> SyncStyle {
        SyncStyle::Busy
    }

    fn supports_wg_rescheduling(&self) -> bool {
        false
    }

    fn on_sync_fail(&mut self, _ctx: &mut PolicyCtx<'_>, _fail: &SyncFail) -> WaitDirective {
        self.fails += 1;
        WaitDirective::Retry
    }

    fn on_monitored_update(
        &mut self,
        _ctx: &mut PolicyCtx<'_>,
        _update: &MonitoredUpdate,
    ) -> Vec<Wake> {
        Vec::new()
    }

    fn report(&self, stats: &mut Stats) {
        let c = stats.counter("policy_sync_fails");
        stats.add(c, self.fails);
    }

    fn save_state(&self, enc: &mut Enc) {
        enc.u64(self.fails);
    }

    fn load_state(&mut self, dec: &mut Dec<'_>) -> Result<(), CodecError> {
        self.fails = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awg_mem::L2Config;

    #[test]
    fn oversubscription_rule() {
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 0,
            ready_wgs: 0,
            swapped_waiting_wgs: 3,
            total_wgs: 8,
        };
        // Swapped-waiting WGs don't need resources yet.
        assert!(!ctx.oversubscribed());

        let ctx = PolicyCtx {
            pending_wgs: 1,
            ..ctx
        };
        assert!(ctx.oversubscribed());
    }

    #[test]
    fn busy_wait_always_retries() {
        let mut p = BusyWaitPolicy::new();
        let mut l2 = L2::new(L2Config::isca2020());
        let mut stats = Stats::new();
        let mut ctx = PolicyCtx {
            now: 0,
            l2: &mut l2,
            stats: &mut stats,
            pending_wgs: 5,
            ready_wgs: 0,
            swapped_waiting_wgs: 0,
            total_wgs: 8,
        };
        let fail = SyncFail {
            wg: 0,
            cond: SyncCond {
                addr: 64,
                expected: 1,
            },
            observed: 0,
            via_wait_inst: false,
        };
        assert_eq!(p.on_sync_fail(&mut ctx, &fail), WaitDirective::Retry);
        assert!(p
            .on_monitored_update(
                &mut ctx,
                &MonitoredUpdate {
                    addr: 64,
                    old: 0,
                    new: 1,
                    wrote: true,
                    monitored: true,
                    by_wg: 1
                }
            )
            .is_empty());
        let mut stats = Stats::new();
        p.report(&mut stats);
        assert_eq!(stats.get_by_name("policy_sync_fails"), Some(1));
    }

    #[test]
    fn wake_constructors() {
        assert_eq!(Wake::now(3), Wake { wg: 3, delay: 0 });
        assert_eq!(Wake::after(3, 10), Wake { wg: 3, delay: 10 });
    }
}
